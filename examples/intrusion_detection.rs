//! End-to-end network intrusion detection (the paper's NID task): train a
//! binarized detector on synthetic UNSW-NB15-shaped data, extract FFCL
//! with NullaNet-style ISF minimization, compile onto the logic
//! processor, and measure accuracy + throughput.
//!
//! ```sh
//! cargo run --release -p lbnn --example intrusion_detection
//! ```
//!
//! A doc-tested miniature of this program lives in the
//! `lbnn::examples` module docs (section `intrusion_detection` / `jet_classification`) and runs
//! under `cargo test --doc`, so the API sequence shown here cannot
//! silently rot.

use lbnn::models::dataset::synthetic_nid;
use lbnn::netlist::Lanes;
use lbnn::nullanet::extract::{layer_netlist, ExtractMode};
use lbnn::nullanet::train::{SteMlp, TrainConfig};
use lbnn::{CompiledModel, FlowOptions, LayerSpec, LpuConfig, ServingMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== network intrusion detection on the logic processor ==\n");

    // 593 binary features after the preprocessing of Murovic et al.
    let data = synthetic_nid(42, 600);
    let (train, test) = data.split(0.8);
    println!(
        "dataset: {} train / {} test samples, {} features, {} classes",
        train.len(),
        test.len(),
        data.dim(),
        data.classes
    );

    // Binarized MLP with straight-through-estimator training.
    let mut mlp = SteMlp::new(&[593, 48, 2], 3);
    let train_acc = mlp.train(
        &train.xs,
        &train.ys,
        &TrainConfig {
            epochs: 15,
            ..Default::default()
        },
    );
    let bnn = mlp.to_bnn();
    println!(
        "BNN: train accuracy {train_acc:.3}, test accuracy {:.3}",
        bnn.accuracy(&test.xs, &test.ys)
    );

    // NullaNet extraction: hidden layer as ISF from training data,
    // output layer as exact popcount logic.
    let layers = bnn.layers();
    let hidden = layer_netlist(&layers[0], ExtractMode::Sampled, Some(&train.xs))?;
    let output = layer_netlist(&layers[1], ExtractMode::Popcount, None)?;
    println!(
        "FFCL: hidden block {} gates (depth pre-balance), output block {} gates",
        hidden.gate_count(),
        output.gate_count()
    );

    // Compile the whole detector — both blocks — into one serving
    // artifact for the paper's LPU (m = 64, n = 16).
    let config = LpuConfig::paper_default();
    let detector = CompiledModel::compile(
        "nid",
        vec![
            LayerSpec::block("hidden", hidden),
            LayerSpec::block("output", output),
        ],
        &config,
        &FlowOptions::default(),
    )?;
    for layer in detector.layers() {
        let stats = layer.stats();
        println!(
            "  {}: {} gates, depth {}, MFGs {} -> {}, latency {} clk, II {} clk",
            layer.name(),
            stats.gates,
            stats.depth,
            stats.mfgs_before_merge,
            stats.mfgs,
            stats.clock_cycles,
            stats.steady_clock_cycles
        );
    }

    // Run the test set in one whole-model inference: features across
    // lanes, the hidden block's outputs chained into the head.
    let inputs: Vec<Lanes> = (0..data.dim())
        .map(|f| Lanes::from_bools(&test.xs.iter().map(|x| x[f]).collect::<Vec<_>>()))
        .collect();
    let inference = detector.infer(&inputs)?;
    let logits = inference.outputs();

    let mut correct = 0usize;
    for (i, &y) in test.ys.iter().enumerate() {
        let pred = match (logits[0].get(i), logits[1].get(i)) {
            (true, false) => 0,
            (false, true) => 1,
            (_, c1) => usize::from(c1),
        };
        if pred == y {
            correct += 1;
        }
    }
    println!(
        "\nLPU accuracy on the test set: {:.3} ({} / {})",
        correct as f64 / test.len() as f64,
        correct,
        test.len()
    );

    let report = detector.throughput();
    println!(
        "steady-state throughput at {:.0} MHz: {:.2} M samples/s \
         ({} lanes per pass, {:.0} clk per image, single-stream {:.2} K samples/s)",
        report.freq_mhz,
        report.fps / 1e6,
        report.batch,
        detector.cycles_per_image(ServingMode::Throughput),
        detector.fps(ServingMode::Latency) / 1e3
    );
    Ok(())
}
