//! End-to-end network intrusion detection (the paper's NID task): train a
//! binarized detector on synthetic UNSW-NB15-shaped data, extract FFCL
//! with NullaNet-style ISF minimization, compile onto the logic
//! processor, and measure accuracy + throughput.
//!
//! ```sh
//! cargo run --release -p lbnn-bench --example intrusion_detection
//! ```

use lbnn_core::flow::{Flow, FlowOptions};
use lbnn_core::lpu::LpuConfig;
use lbnn_models::dataset::synthetic_nid;
use lbnn_netlist::Lanes;
use lbnn_nullanet::extract::{layer_netlist, ExtractMode};
use lbnn_nullanet::train::{SteMlp, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== network intrusion detection on the logic processor ==\n");

    // 593 binary features after the preprocessing of Murovic et al.
    let data = synthetic_nid(42, 600);
    let (train, test) = data.split(0.8);
    println!(
        "dataset: {} train / {} test samples, {} features, {} classes",
        train.len(),
        test.len(),
        data.dim(),
        data.classes
    );

    // Binarized MLP with straight-through-estimator training.
    let mut mlp = SteMlp::new(&[593, 48, 2], 3);
    let train_acc = mlp.train(
        &train.xs,
        &train.ys,
        &TrainConfig {
            epochs: 15,
            ..Default::default()
        },
    );
    let bnn = mlp.to_bnn();
    println!("BNN: train accuracy {train_acc:.3}, test accuracy {:.3}", bnn.accuracy(&test.xs, &test.ys));

    // NullaNet extraction: hidden layer as ISF from training data,
    // output layer as exact popcount logic.
    let layers = bnn.layers();
    let hidden = layer_netlist(&layers[0], ExtractMode::Sampled, Some(&train.xs))?;
    let output = layer_netlist(&layers[1], ExtractMode::Popcount, None)?;
    println!(
        "FFCL: hidden block {} gates (depth pre-balance), output block {} gates",
        hidden.gate_count(),
        output.gate_count()
    );

    // Compile for the paper's LPU (m = 64, n = 16).
    let config = LpuConfig::paper_default();
    let opts = FlowOptions::default();
    let hidden_flow = Flow::compile(&hidden, &config, &opts)?;
    let output_flow = Flow::compile(&output, &config, &opts)?;
    for (name, flow) in [("hidden", &hidden_flow), ("output", &output_flow)] {
        println!(
            "  {name}: {} gates, depth {}, MFGs {} -> {}, latency {} clk, II {} clk",
            flow.stats.gates,
            flow.stats.depth,
            flow.stats.mfgs_before_merge,
            flow.stats.mfgs,
            flow.stats.clock_cycles,
            flow.stats.steady_clock_cycles
        );
    }

    // Run the test set: features across lanes.
    let inputs: Vec<Lanes> = (0..data.dim())
        .map(|f| Lanes::from_bools(&test.xs.iter().map(|x| x[f]).collect::<Vec<_>>()))
        .collect();
    let hidden_out = hidden_flow.simulate(&inputs)?;
    let logits = output_flow.simulate(&hidden_out.outputs)?;

    let mut correct = 0usize;
    for (i, &y) in test.ys.iter().enumerate() {
        let pred = match (logits.outputs[0].get(i), logits.outputs[1].get(i)) {
            (true, false) => 0,
            (false, true) => 1,
            (_, c1) => usize::from(c1),
        };
        if pred == y {
            correct += 1;
        }
    }
    println!(
        "\nLPU accuracy on the test set: {:.3} ({} / {})",
        correct as f64 / test.len() as f64,
        correct,
        test.len()
    );

    let total_ii = hidden_flow.stats.steady_clock_cycles + output_flow.stats.steady_clock_cycles;
    let fps = config.freq_mhz * 1e6 * config.operand_bits() as f64 / total_ii as f64;
    println!(
        "steady-state throughput at {:.0} MHz: {:.2} M samples/s ({} lanes per pass, {} clk II)",
        config.freq_mhz,
        fps / 1e6,
        config.operand_bits(),
        total_ii
    );
    Ok(())
}
