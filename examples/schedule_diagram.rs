//! Reconstructs the paper's illustrative figures: an MFG partition of a
//! Boolean network (Fig 4) and the time-space schedule on the LPVs
//! (Fig 5), printed as ASCII diagrams.
//!
//! ```sh
//! cargo run --release -p lbnn --example schedule_diagram
//! ```
//!
//! A doc-tested miniature of this program lives in the
//! `lbnn::examples` module docs (section `schedule_diagram`) and runs
//! under `cargo test --doc`, so the API sequence shown here cannot
//! silently rot.

use lbnn::core::compiler::merge::merge_mfgs;
use lbnn::core::compiler::partition::{partition, PartitionOptions};
use lbnn::core::compiler::schedule::{lpv_of_level, schedule_spacetime};
use lbnn::netlist::random::RandomDag;
use lbnn::netlist::Levels;

fn main() {
    // A deep network in the spirit of Fig 4 (Lmax = 10) on a small LPU.
    let netlist = RandomDag::strict(12, 10, 8).outputs(3).generate(7);
    let levels = Levels::compute(&netlist);
    let (m, n) = (4usize, 12usize);

    let raw = partition(&netlist, &levels, m, PartitionOptions::default()).unwrap();
    let (part, stats) = merge_mfgs(&raw, m);
    println!(
        "partitioned Lmax = {} network into {} MFGs ({} before merging)",
        levels.depth(),
        part.mfg_count(),
        stats.before
    );
    println!();

    // Fig 4-style: per-MFG level ranges.
    println!("MFG inventory (letters as in the paper's Fig 4):");
    for (i, mfg) in part.mfgs.iter().enumerate() {
        let letter = (b'A' + (i % 26) as u8) as char;
        println!(
            "  {letter}: levels [{:>2}, {:>2}]  widths {:?}  inputs {}",
            mfg.bottom(),
            mfg.top(),
            mfg.levels().iter().map(Vec::len).collect::<Vec<_>>(),
            mfg.inputs().len()
        );
    }
    println!();

    // Fig 5-style time-space diagram: rows = LPVs, columns = compute
    // cycles, cells = the MFG whose level executes there.
    let schedule = schedule_spacetime(&part, n, m).unwrap();
    let cycles = schedule.total_cycles;
    let mut grid = vec![vec![' '; cycles]; n];
    for (i, mfg) in part.mfgs.iter().enumerate() {
        let letter = (b'A' + (i % 26) as u8) as char;
        for &start in &schedule.executions[i] {
            for d in 0..mfg.depth() {
                let lpv = lpv_of_level(mfg.bottom() + d as u32, n);
                grid[lpv][start + d] = letter;
            }
        }
    }
    println!("time-space schedule (rows = LPVs, cols = compute cycles C0..):");
    print!("       ");
    for c in 0..cycles {
        print!("{:>2}", c % 100);
    }
    println!();
    for (lpv, row) in grid.iter().enumerate() {
        print!("LPV{lpv:<2}  ");
        for &c in row {
            print!(" {c}");
        }
        println!();
    }
    println!();
    println!(
        "queue depth (memLoc count) = {}, total compute cycles = {}",
        schedule.queue_depth, schedule.total_cycles
    );

    // Fig 6-style: the instruction-queue memory locations.
    println!();
    println!("instruction-queue addresses (rows = LPVs, `.` = empty):");
    let mut q = vec![vec!['.'; schedule.queue_depth]; n];
    for (i, mfg) in part.mfgs.iter().enumerate() {
        let letter = (b'A' + (i % 26) as u8) as char;
        for &start in &schedule.executions[i] {
            for d in 0..mfg.depth() {
                let lpv = lpv_of_level(mfg.bottom() + d as u32, n);
                let addr = start + d - lpv;
                q[lpv][addr] = letter;
            }
        }
    }
    print!("       ");
    for a in 0..schedule.queue_depth {
        print!("{:>2}", a % 100);
    }
    println!();
    for (lpv, row) in q.iter().enumerate() {
        print!("LPV{lpv:<2}  ");
        for &c in row {
            print!(" {c}");
        }
        println!();
    }
}
