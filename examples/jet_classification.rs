//! Jet substructure classification (the paper's JSC task): a 5-class
//! physics trigger at extreme throughput, with the LogicNets comparison
//! of Table III.
//!
//! ```sh
//! cargo run --release -p lbnn --example jet_classification
//! ```
//!
//! A doc-tested miniature of this program lives in the
//! `lbnn::examples` module docs (section `intrusion_detection` / `jet_classification`) and runs
//! under `cargo test --doc`, so the API sequence shown here cannot
//! silently rot.

use lbnn::baselines::LogicNets;
use lbnn::models::dataset::synthetic_jsc;
use lbnn::models::zoo;
use lbnn::netlist::Lanes;
use lbnn::nullanet::extract::{layer_netlist, ExtractMode};
use lbnn::nullanet::train::{SteMlp, TrainConfig};
use lbnn::{CompiledModel, FlowOptions, LayerSpec, LpuConfig, ServingMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== jet substructure classification on the logic processor ==\n");

    // 16 physics features quantized to 4 bits -> 64 binary inputs.
    let data = synthetic_jsc(11, 800);
    let (train, test) = data.split(0.8);
    println!(
        "dataset: {} train / {} test, {} binary features, {} jet classes",
        train.len(),
        test.len(),
        data.dim(),
        data.classes
    );

    let mut mlp = SteMlp::new(&[64, 32, 5], 2);
    let train_acc = mlp.train(
        &train.xs,
        &train.ys,
        &TrainConfig {
            epochs: 25,
            ..Default::default()
        },
    );
    let bnn = mlp.to_bnn();
    let bnn_acc = bnn.accuracy(&test.xs, &test.ys);
    println!("BNN: train accuracy {train_acc:.3}, test accuracy {bnn_acc:.3}");

    // Extract both layers (ISF for the wide hidden layer, popcount for
    // the 5-way head so its scores stay exact).
    let layers = bnn.layers();
    let hidden = layer_netlist(&layers[0], ExtractMode::Sampled, Some(&train.xs))?;
    let head = layer_netlist(&layers[1], ExtractMode::Popcount, None)?;

    let config = LpuConfig::paper_default();
    let classifier = CompiledModel::compile(
        "jsc",
        vec![
            LayerSpec::block("hidden", hidden),
            LayerSpec::block("head", head),
        ],
        &config,
        &FlowOptions::default(),
    )?;
    let (hs, ts) = (
        classifier.layers()[0].stats(),
        classifier.layers()[1].stats(),
    );
    println!(
        "FFCL blocks: hidden {} gates (MFGs {} -> {}), head {} gates (MFGs {} -> {})",
        hs.gates, hs.mfgs_before_merge, hs.mfgs, ts.gates, ts.mfgs_before_merge, ts.mfgs
    );

    // Classify the test set on the machine in one whole-model inference
    // (head outputs are 5 threshold bits; ties resolved by first set bit).
    let inputs: Vec<Lanes> = (0..data.dim())
        .map(|f| Lanes::from_bools(&test.xs.iter().map(|x| x[f]).collect::<Vec<_>>()))
        .collect();
    let inference = classifier.infer(&inputs)?;
    let (hid, out) = (&inference.layer_outputs[0], &inference.layer_outputs[1]);

    // Two head options: (a) fully on-fabric threshold bits (first set bit
    // wins — loses tie information), and (b) the usual deployment where
    // the tiny 5-way argmax comparator stays off-fabric and scores the
    // machine-produced hidden bits (NullaNet keeps the final argmax in
    // plain logic/software too).
    let mut correct_bits = 0usize;
    let mut correct_argmax = 0usize;
    for (i, &y) in test.ys.iter().enumerate() {
        let pred_bits = (0..5).find(|&c| out[c].get(i)).unwrap_or(0);
        if pred_bits == y {
            correct_bits += 1;
        }
        let hidden_bits: Vec<bool> = hid.iter().map(|l| l.get(i)).collect();
        let head = &layers[1];
        let pred_argmax = (0..head.out_dim())
            .map(|j| head.agreement(j, &hidden_bits) as i32 - head.threshold_of(j))
            .enumerate()
            .max_by_key(|&(_, s)| s)
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred_argmax == y {
            correct_argmax += 1;
        }
    }
    println!(
        "LPU accuracy: {:.3} with on-fabric threshold head, {:.3} with off-fabric argmax head (BNN reference {:.3})",
        correct_bits as f64 / test.len() as f64,
        correct_argmax as f64 / test.len() as f64,
        bnn_acc
    );

    // The Table III trade-off: single-event latency vs a hardened pipeline.
    let latency_clk = classifier.cycles_per_image(ServingMode::Latency) as u64;
    let latency_us = latency_clk as f64 / (config.freq_mhz * 1e6) * 1e6;
    let lpu_fps = 1e6 / latency_us;
    let ln_fps = LogicNets::default().fps(&zoo::jsc_m());
    println!(
        "\nsingle-event latency: {latency_clk} clk = {latency_us:.3} us -> {:.2} K events/s",
        lpu_fps / 1e3
    );
    println!(
        "LogicNets-style hardened pipeline: {:.0} M events/s — {:.0}x faster, but frozen at synthesis;\nthe LPU reloads its instruction queues for any new model (the paper's programmability argument).",
        ln_fps / 1e6,
        ln_fps / lpu_fps
    );
    Ok(())
}
