//! VGG16 convolutional layers 2-13 on the logic processor — the paper's
//! headline workload, with the Fig 7 merging comparison for each layer.
//!
//! ```sh
//! cargo run --release -p lbnn --example vgg16_layers
//! ```
//!
//! A doc-tested miniature of this program lives in the
//! `lbnn::examples` module docs (section `vgg16_layers`) and runs
//! under `cargo test --doc`, so the API sequence shown here cannot
//! silently rot.

use lbnn::bench::{bench_workload_options, compile_model, fmt_fps, ModelReport};
use lbnn::{LpuConfig, ServingMode};
use lbnn_models::zoo;

fn main() {
    let config = LpuConfig::paper_default();
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();

    println!(
        "== VGG16 layers [2:13] on the LPU (m = {}, n = {}) ==\n",
        config.m, config.n
    );
    let merged = ModelReport::from_compiled(
        &compile_model(&model, &config, &wl, true),
        ServingMode::Throughput,
    );
    let unmerged = ModelReport::from_compiled(
        &compile_model(&model, &config, &wl, false),
        ServingMode::Throughput,
    );

    println!(
        "{:<6} {:>7} {:>6} {:>11} {:>11} {:>13} {:>13}",
        "layer", "gates", "depth", "MFGs (off)", "MFGs (on)", "Kcyc (off)", "Kcyc (on)"
    );
    for (u, m) in unmerged.layers.iter().zip(&merged.layers) {
        println!(
            "{:<6} {:>7} {:>6} {:>11} {:>11} {:>13.1} {:>13.1}",
            m.name,
            m.gates,
            m.depth,
            u.mfgs_after,
            m.mfgs_after,
            u.cycles_per_image / 1e3,
            m.cycles_per_image / 1e3
        );
    }
    println!();
    println!(
        "throughput: {} without merging -> {} with merging ({:.1}x)",
        fmt_fps(unmerged.fps),
        fmt_fps(merged.fps),
        merged.fps / unmerged.fps
    );
    println!(
        "paper's Table II row: LPU 103.99K FPS; XNOR baseline 0.83K; our LPU/XNOR shape holds at {}",
        fmt_fps(merged.fps)
    );
}
