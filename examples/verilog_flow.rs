//! The paper's Fig 1 flow driven from a Verilog netlist: parse, optimize,
//! balance, partition, merge, schedule, generate instructions, simulate.
//!
//! ```sh
//! cargo run --release -p lbnn --example verilog_flow
//! ```
//!
//! A doc-tested miniature of this program lives in the
//! `lbnn::examples` module docs (section `verilog_flow`) and runs
//! under `cargo test --doc`, so the API sequence shown here cannot
//! silently rot.

use lbnn::core::lpu::resource::estimate_with_depth;
use lbnn::netlist::verilog::{parse_verilog, write_verilog};
use lbnn::{Flow, LpuConfig};

const FFCL: &str = r#"
// A NullaNet-style FFCL block: two neurons over 6 shared literals.
module neuron_pair (x, y0, y1);
  input [5:0] x;
  output y0, y1;
  wire a, b, c, d, e;
  and  (a, x[0], x[1]);
  nand (b, x[2], x[3]);
  xor  (c, x[4], x[5]);
  or   (d, a, b);
  assign e = (x[1] & ~x[4]) | c;
  and  (y0, d, c);
  nor  (y1, e, a);
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Verilog -> logic processor flow ==\n");
    println!("input module:\n{FFCL}");

    let netlist = parse_verilog(FFCL)?;
    println!(
        "parsed: {} inputs, {} outputs, {} gates",
        netlist.inputs().len(),
        netlist.outputs().len(),
        netlist.gate_count()
    );

    let config = LpuConfig::new(8, 4);
    let flow = Flow::builder(&netlist).config(config).compile()?;
    println!("\nafter synthesis + full path balancing:");
    println!(
        "  {} gates ({} balance buffers), depth {}",
        flow.stats.gates, flow.stats.balance_buffers, flow.stats.depth
    );
    println!(
        "  {} MFGs ({} before merging), queue depth {}",
        flow.stats.mfgs, flow.stats.mfgs_before_merge, flow.stats.queue_depth
    );
    println!(
        "  program: {} instructions, {} LPE ops per pass",
        flow.program.instruction_count(),
        flow.program.lpe_op_count()
    );

    let report = flow.verify_against_netlist(5)?;
    println!(
        "\nbit-exact against the source netlist on {} lanes",
        report.lanes_checked
    );

    // Emit the mapped netlist back as Verilog (the testbench artifact of
    // Fig 1) and the estimated FPGA cost of this tiny machine.
    let emitted = write_verilog(&flow.netlist);
    println!("\nmapped netlist (first lines):");
    for line in emitted.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");
    let r = estimate_with_depth(&config, flow.stats.queue_depth);
    println!(
        "\nestimated FPGA cost of an m={}, n={} LPU: {} FF, {} LUT, {} Kb BRAM @ {:.0} MHz",
        config.m, config.n, r.ff, r.lut, r.bram_kb, r.freq_mhz
    );
    Ok(())
}
