//! Quickstart: build a small FFCL block, compile it once with the
//! builder API, then serve batches from a resident [`Engine`] and check
//! the results against direct evaluation.
//!
//! ```sh
//! cargo run --release -p lbnn --example quickstart
//! ```
//!
//! A doc-tested miniature of this program lives in the
//! `lbnn::examples` module docs (section `quickstart`) and runs
//! under `cargo test --doc`, so the API sequence shown here cannot
//! silently rot.

use lbnn::netlist::{Lanes, Netlist, Op};
use lbnn::{Flow, LpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a fixed-function combinational logic block: a 4-bit
    //    "exactly two bits set" detector.
    let mut nl = Netlist::new("two_of_four");
    let x: Vec<_> = (0..4).map(|i| nl.add_input(format!("x{i}"))).collect();
    // Pairwise ANDs for each of the 6 pairs, then "some pair" AND "no triple".
    let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let mut any_pair = None;
    for &(a, b) in &pairs {
        let p = nl.add_gate2(Op::And, x[a], x[b]);
        any_pair = Some(match any_pair {
            None => p,
            Some(acc) => nl.add_gate2(Op::Or, acc, p),
        });
    }
    // A triple exists iff two disjoint-ish pairs overlap: detect via
    // (x0&x1&x2) | (x0&x1&x3) | (x0&x2&x3) | (x1&x2&x3).
    let mut any_triple = None;
    for t in [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)] {
        let ab = nl.add_gate2(Op::And, x[t.0], x[t.1]);
        let abc = nl.add_gate2(Op::And, ab, x[t.2]);
        any_triple = Some(match any_triple {
            None => abc,
            Some(acc) => nl.add_gate2(Op::Or, acc, abc),
        });
    }
    let no_triple = nl.add_gate1(Op::Not, any_triple.unwrap());
    let y = nl.add_gate2(Op::And, any_pair.unwrap(), no_triple);
    nl.add_output(y, "exactly_two");

    // 2. Compile for a small logic processor: 4 LPEs per LPV, 4 LPVs.
    let config = LpuConfig::new(4, 4);
    let flow = Flow::builder(&nl).config(config).compile()?;
    println!("compiled `{}`:", nl.name());
    println!(
        "  gates (after synthesis + balancing): {}",
        flow.stats.gates
    );
    println!(
        "  logic depth:                          {}",
        flow.stats.depth
    );
    println!(
        "  MFGs: {} -> {} after merging",
        flow.stats.mfgs_before_merge, flow.stats.mfgs
    );
    println!(
        "  one pass: {} clock cycles (tc = {}), steady-state II {} cycles",
        flow.stats.clock_cycles,
        config.tc(),
        flow.stats.steady_clock_cycles
    );

    // 3. The oracle check on the compiled artifact.
    let report = flow.verify_against_netlist(99)?;
    println!(
        "\nverified against direct evaluation on {} lanes x {} outputs",
        report.lanes_checked, report.outputs_checked
    );

    // 4. Hand the program to a resident engine and serve: all 16 input
    //    combinations as 16 parallel lanes, replayed batch after batch
    //    with zero per-call setup.
    let mut engine = flow.into_engine()?;
    let inputs: Vec<Lanes> = (0..4)
        .map(|bit| {
            let bits: Vec<bool> = (0..16u32).map(|m| m >> bit & 1 != 0).collect();
            Lanes::from_bools(&bits)
        })
        .collect();
    let result = engine.run_batch(&inputs)?;
    println!("\n  input  -> exactly-two-bits-set?");
    for m in 0..16u32 {
        println!("  {m:04b}   -> {}", result.outputs[0].get(m as usize));
        assert_eq!(
            result.outputs[0].get(m as usize),
            m.count_ones() == 2,
            "the LPU must agree with arithmetic"
        );
    }

    // Steady state: the same batch served again is bit-identical.
    let again = engine.run_batch(&inputs)?;
    assert_eq!(again.outputs, result.outputs);
    println!(
        "\nserved {} batches; steady-state interval {} clocks/batch",
        engine.batches_served(),
        engine.steady_clock_cycles_per_batch()
    );
    Ok(())
}
