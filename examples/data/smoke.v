// Smoke-test FFCL block for the lbnnc artifact workflow:
// an 8-input parity tree plus a 2-level majority/compare slice,
// small enough to compile in milliseconds, deep enough to exercise
// partitioning, merging and scheduling.
module smoke (a0, a1, a2, a3, a4, a5, a6, a7, parity, maj, any_hi, all_lo);
  input a0, a1, a2, a3, a4, a5, a6, a7;
  output parity, maj, any_hi, all_lo;
  wire p01, p23, p45, p67, p03, p47;
  wire m01, m23, m0123;
  wire o01, o23, o0123;

  // Parity tree.
  xor g0 (p01, a0, a1);
  xor g1 (p23, a2, a3);
  xor g2 (p45, a4, a5);
  xor g3 (p67, a6, a7);
  xor g4 (p03, p01, p23);
  xor g5 (p47, p45, p67);
  xor g6 (parity, p03, p47);

  // Majority-ish slice over the low nibble.
  and g7 (m01, a0, a1);
  and g8 (m23, a2, a3);
  or  g9 (m0123, m01, m23);
  assign maj = m0123 | (a0 & a3);

  // Wide OR / NOR.
  or  g10 (o01, a0, a1);
  or  g11 (o23, a2, a3);
  or  g12 (o0123, o01, o23);
  assign any_hi = o0123 | (a4 | a5) | (a6 | a7);
  assign all_lo = ~any_hi;
endmodule
