//! Full path balancing (FPB, §II/§IV of the paper).
//!
//! FPB equalizes the logic depth of all propagation paths from primary
//! inputs to primary outputs by inserting `BUFFER` nodes, so that every
//! PI→PO path crosses the same number of gates. After balancing, no data
//! dependency exists between two non-adjacent logic levels, which is what
//! lets the compiler map one logic level per logic processing vector.

use crate::cell::Op;
use crate::levelize::Levels;
use crate::netlist::{Netlist, NodeId};

/// Statistics reported by [`balance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BalanceStats {
    /// Number of buffer nodes inserted on internal edges.
    pub edge_buffers: usize,
    /// Number of buffer nodes inserted to lift primary outputs to `Lmax`.
    pub output_buffers: usize,
}

impl BalanceStats {
    /// Total buffers inserted.
    pub fn total(&self) -> usize {
        self.edge_buffers + self.output_buffers
    }
}

/// Fully path-balances a netlist, returning the balanced netlist and
/// insertion statistics.
///
/// Buffer chains are shared: if node `u` at level 2 feeds consumers at
/// levels 5 and 7, the chain `u→b3→b4` is built once and the level-7
/// consumer continues `b4→b5→b6`.
///
/// The result satisfies [`Levels::is_fully_balanced`].
pub fn balance(netlist: &Netlist) -> (Netlist, BalanceStats) {
    let levels = Levels::compute(netlist);
    let lmax = levels.max_level();
    let mut out = Netlist::new(netlist.name().to_string());
    let mut stats = BalanceStats::default();

    // For each original node: the chain of buffered copies, indexed by level
    // offset. `copies[id][k]` is the new node carrying the value of `id` at
    // level `level(id) + k`.
    let mut copies: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.len()];

    for (id, node) in netlist.iter() {
        let new_id = if node.op() == Op::Input {
            out.add_input(netlist.node_name(id).unwrap_or("in").to_string())
        } else {
            let target = levels.level(id);
            let f: Vec<NodeId> = node
                .fanins()
                .iter()
                .map(|&f| lift(&mut out, &mut copies, &levels, f, target - 1, &mut stats))
                .collect();
            let nid = out.add_node(node.op(), &f).expect("topo order preserved");
            if let Some(n) = netlist.node_name(id) {
                out.set_node_name(nid, n.to_string());
            }
            nid
        };
        copies[id.index()].push(new_id);
    }

    for o in netlist.outputs() {
        let before = stats.edge_buffers;
        let lifted = lift(&mut out, &mut copies, &levels, o.node, lmax, &mut stats);
        stats.output_buffers += stats.edge_buffers - before;
        stats.edge_buffers = before;
        out.add_output(lifted, o.name.clone());
    }

    (out, stats)
}

/// Returns the copy of `id` at level `target`, building buffers as needed.
fn lift(
    out: &mut Netlist,
    copies: &mut [Vec<NodeId>],
    levels: &Levels,
    id: NodeId,
    target: u32,
    stats: &mut BalanceStats,
) -> NodeId {
    let base = levels.level(id);
    debug_assert!(target >= base, "cannot lower a node below its ASAP level");
    let offset = (target - base) as usize;
    while copies[id.index()].len() <= offset {
        let prev = *copies[id.index()].last().expect("base copy exists");
        let buf = out.add_gate1(Op::Buf, prev);
        copies[id.index()].push(buf);
        stats.edge_buffers += 1;
    }
    copies[id.index()][offset]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_skewed_and_tree() {
        // y = ((a & b) & c) & d — a maximally skewed tree.
        let mut nl = Netlist::new("skew");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let t0 = nl.add_gate2(Op::And, a, b);
        let t1 = nl.add_gate2(Op::And, t0, c);
        let t2 = nl.add_gate2(Op::And, t1, d);
        nl.add_output(t2, "y");

        let (bal, stats) = balance(&nl);
        let lv = Levels::compute(&bal);
        assert!(lv.is_fully_balanced(&bal));
        assert_eq!(lv.depth(), 3);
        // c needs 1 buffer (level 0 -> 1), d needs 2 (level 0 -> 2).
        assert_eq!(stats.edge_buffers, 3);
        assert_eq!(stats.output_buffers, 0);

        // Function is preserved.
        for bits in 0u8..16 {
            let ins: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_bools(&ins), bal.eval_bools(&ins));
        }
    }

    #[test]
    fn balance_lifts_shallow_outputs() {
        // Two outputs at different depths.
        let mut nl = Netlist::new("two");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let shallow = nl.add_gate2(Op::And, a, b);
        let deep0 = nl.add_gate2(Op::Or, a, c);
        let deep = nl.add_gate2(Op::Xor, deep0, shallow);
        nl.add_output(shallow, "s");
        nl.add_output(deep, "d");

        let (bal, stats) = balance(&nl);
        let lv = Levels::compute(&bal);
        assert!(lv.is_fully_balanced(&bal));
        assert_eq!(stats.output_buffers, 1); // `s` lifted 1 -> 2
        for bits in 0u8..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_bools(&ins), bal.eval_bools(&ins));
        }
    }

    #[test]
    fn buffer_chains_are_shared() {
        // One node feeds consumers at levels 2 and 3; the level-1 buffer
        // must be shared, giving 2 buffers instead of 3.
        let mut nl = Netlist::new("share");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let l1 = nl.add_gate2(Op::And, a, b);
        let l2 = nl.add_gate2(Op::Or, l1, c); // c used at level 2
        let l3 = nl.add_gate2(Op::Xor, l2, c); // c used at level 3
        nl.add_output(l3, "y");

        let (bal, stats) = balance(&nl);
        // c needs copies at levels 1 and 2; the level-1 copy is shared, so
        // only 2 buffers are inserted rather than 3.
        assert_eq!(stats.edge_buffers, 2);
        let lv = Levels::compute(&bal);
        assert!(lv.is_fully_balanced(&bal));
    }

    #[test]
    fn already_balanced_is_untouched() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate2(Op::And, a, b);
        nl.add_output(y, "y");
        let (bal, stats) = balance(&nl);
        assert_eq!(stats.total(), 0);
        assert_eq!(bal.len(), nl.len());
    }

    #[test]
    fn pass_through_output_gets_buffered() {
        // PO directly wired to a PI alongside a deep cone: PI must be lifted.
        let mut nl = Netlist::new("wirepo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate2(Op::And, a, b);
        nl.add_output(g, "y");
        nl.add_output(a, "a_copy");
        let (bal, _) = balance(&nl);
        let lv = Levels::compute(&bal);
        assert!(lv.is_fully_balanced(&bal));
        for bits in 0u8..4 {
            let ins: Vec<bool> = (0..2).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_bools(&ins), bal.eval_bools(&ins));
        }
    }
}
