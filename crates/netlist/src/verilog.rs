//! Structural Verilog reader and writer.
//!
//! The paper's design flow takes "a description of an FFCL block in the
//! Verilog language" (Fig 1) — gate-level netlists as produced by
//! NullaNet/Yosys/ABC. This module implements the structural subset those
//! tools emit:
//!
//! * non-ANSI module headers with `input`/`output`/`wire` declarations,
//!   scalar or vector (`input [7:0] x;`, expanded to `x[7]`…`x[0]`),
//! * primitive gate instantiations (`and g1 (y, a, b);`), n-ary forms are
//!   decomposed into chains of two-input gates,
//! * `assign` statements over `~ & ^ |`, parentheses, bit-selects and the
//!   constants `1'b0`/`1'b1`,
//! * `//` and `/* */` comments.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::{Netlist, NodeId};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    /// `1'b0` / `1'b1`
    Const(bool),
    LParen,
    RParen,
    LBrack,
    RBrack,
    Comma,
    Semi,
    Colon,
    Eq,
    Tilde,
    Amp,
    Pipe,
    Caret,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> NetlistError {
        NetlistError::Syntax {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), NetlistError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_tok(&mut self) -> Result<(Tok, usize), NetlistError> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line));
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'[' => {
                self.bump();
                Tok::LBrack
            }
            b']' => {
                self.bump();
                Tok::RBrack
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'~' => {
                self.bump();
                Tok::Tilde
            }
            b'&' => {
                self.bump();
                Tok::Amp
            }
            b'|' => {
                self.bump();
                Tok::Pipe
            }
            b'^' => {
                self.bump();
                Tok::Caret
            }
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while let Some(d @ b'0'..=b'9') = self.peek() {
                    self.bump();
                    n = n * 10 + u64::from(d - b'0');
                }
                if self.peek() == Some(b'\'') {
                    // based literal: width 'b digits (we accept b/d/h with value 0/1)
                    self.bump();
                    let base = self.bump().ok_or_else(|| self.err("truncated literal"))?;
                    let mut digits = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_alphanumeric() || d == b'_' {
                            digits.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let radix = match base.to_ascii_lowercase() {
                        b'b' => 2,
                        b'd' => 10,
                        b'h' => 16,
                        _ => return Err(self.err("unsupported literal base")),
                    };
                    let value = u64::from_str_radix(&digits.replace('_', ""), radix)
                        .map_err(|_| self.err("bad literal digits"))?;
                    match value {
                        0 => Tok::Const(false),
                        1 => Tok::Const(true),
                        _ => return Err(self.err("only 1-bit constants are supported")),
                    }
                } else {
                    Tok::Int(n)
                }
            }
            c if c == b'_' || c == b'\\' || c.is_ascii_alphabetic() => {
                let escaped = c == b'\\';
                if escaped {
                    self.bump();
                }
                let mut s = String::new();
                while let Some(d) = self.peek() {
                    let ok = if escaped {
                        !d.is_ascii_whitespace()
                    } else {
                        d == b'_' || d == b'$' || d.is_ascii_alphanumeric()
                    };
                    if ok {
                        s.push(d as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(s)
            }
            other => return Err(self.err(format!("unexpected character `{}`", other as char))),
        };
        Ok((tok, line))
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

type SigId = usize;

#[derive(Debug, Clone)]
enum Drive {
    Input,
    Const(bool),
    Gate(Op, Vec<SigId>),
}

struct Builder {
    by_name: HashMap<String, SigId>,
    names: Vec<String>,
    drive: Vec<Option<Drive>>,
    inputs: Vec<SigId>,
    outputs: Vec<SigId>,
    temp: usize,
}

impl Builder {
    fn new() -> Self {
        Builder {
            by_name: HashMap::new(),
            names: Vec::new(),
            drive: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            temp: 0,
        }
    }

    fn sig(&mut self, name: &str) -> SigId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.drive.push(None);
        id
    }

    fn fresh(&mut self) -> SigId {
        loop {
            self.temp += 1;
            let name = format!("__t{}", self.temp);
            if !self.by_name.contains_key(&name) {
                return self.sig(&name);
            }
        }
    }

    fn set_drive(&mut self, id: SigId, d: Drive, line: usize) -> Result<(), NetlistError> {
        if self.drive[id].is_some() {
            return Err(NetlistError::Syntax {
                line,
                msg: format!("signal `{}` has multiple drivers", self.names[id]),
            });
        }
        self.drive[id] = Some(d);
        Ok(())
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    b: Builder,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, NetlistError> {
        let mut lexer = Lexer::new(src);
        let (tok, line) = lexer.next_tok()?;
        Ok(Parser {
            lexer,
            tok,
            line,
            b: Builder::new(),
        })
    }

    fn err(&self, msg: impl Into<String>) -> NetlistError {
        NetlistError::Syntax {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn advance(&mut self) -> Result<Tok, NetlistError> {
        let (next, line) = self.lexer.next_tok()?;
        self.line = line;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), NetlistError> {
        if &self.tok == want {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.tok)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, NetlistError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Parses a signal reference: `name` or `name[index]`.
    fn signal_ref(&mut self) -> Result<SigId, NetlistError> {
        let base = self.expect_ident("signal name")?;
        if self.tok == Tok::LBrack {
            self.advance()?;
            let idx = match self.advance()? {
                Tok::Int(i) => i,
                other => return Err(self.err(format!("expected bit index, found {other:?}"))),
            };
            self.expect(&Tok::RBrack, "`]`")?;
            Ok(self.b.sig(&format!("{base}[{idx}]")))
        } else {
            Ok(self.b.sig(&base))
        }
    }

    /// Parses a declaration range `[msb:lsb]` if present.
    fn range(&mut self) -> Result<Option<(u64, u64)>, NetlistError> {
        if self.tok != Tok::LBrack {
            return Ok(None);
        }
        self.advance()?;
        let msb = match self.advance()? {
            Tok::Int(i) => i,
            other => return Err(self.err(format!("expected msb, found {other:?}"))),
        };
        self.expect(&Tok::Colon, "`:`")?;
        let lsb = match self.advance()? {
            Tok::Int(i) => i,
            other => return Err(self.err(format!("expected lsb, found {other:?}"))),
        };
        self.expect(&Tok::RBrack, "`]`")?;
        Ok(Some((msb, lsb)))
    }

    fn declared_names(&mut self, range: Option<(u64, u64)>, base: &str) -> Vec<String> {
        match range {
            None => vec![base.to_string()],
            Some((msb, lsb)) => {
                let (hi, lo) = (msb.max(lsb), msb.min(lsb));
                // Expand msb-first, matching the header port order convention.
                let mut v: Vec<String> = (lo..=hi).rev().map(|i| format!("{base}[{i}]")).collect();
                if msb < lsb {
                    v.reverse();
                }
                v
            }
        }
    }

    fn parse_module(mut self) -> Result<Netlist, NetlistError> {
        loop {
            match &self.tok {
                Tok::Ident(k) if k == "module" => break,
                Tok::Eof => return Err(self.err("no `module` found")),
                _ => {
                    self.advance()?;
                }
            }
        }
        self.advance()?; // consume `module`
        let module_name = self.expect_ident("module name")?;
        // Header port list (names only; directions come from declarations).
        if self.tok == Tok::LParen {
            self.advance()?;
            while self.tok != Tok::RParen {
                match self.advance()? {
                    Tok::Ident(_) | Tok::Comma => {}
                    // tolerate ANSI-style `input`/`output`/ranges in header
                    Tok::LBrack => {
                        while self.tok != Tok::RBrack {
                            self.advance()?;
                        }
                        self.advance()?;
                    }
                    other => {
                        return Err(self.err(format!("unexpected token in port list: {other:?}")))
                    }
                }
            }
            self.advance()?; // `)`
        }
        self.expect(&Tok::Semi, "`;` after module header")?;

        loop {
            let Tok::Ident(kw) = self.tok.clone() else {
                return Err(self.err(format!("expected statement, found {:?}", self.tok)));
            };
            match kw.as_str() {
                "endmodule" => break,
                "input" | "output" | "wire" => {
                    self.advance()?;
                    let range = self.range()?;
                    loop {
                        let base = self.expect_ident("signal name")?;
                        for name in self.declared_names(range, &base) {
                            let id = self.b.sig(&name);
                            match kw.as_str() {
                                "input" => {
                                    let line = self.line;
                                    self.b.inputs.push(id);
                                    self.b.set_drive(id, Drive::Input, line)?;
                                }
                                "output" => self.b.outputs.push(id),
                                _ => {}
                            }
                        }
                        if self.tok == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                    self.expect(&Tok::Semi, "`;` after declaration")?;
                }
                "assign" => {
                    self.advance()?;
                    let lhs = self.signal_ref()?;
                    self.expect(&Tok::Eq, "`=`")?;
                    let rhs = self.expr()?;
                    let line = self.line;
                    self.expect(&Tok::Semi, "`;` after assign")?;
                    // Alias the rhs through a buffer to keep one driver per signal.
                    self.b
                        .set_drive(lhs, Drive::Gate(Op::Buf, vec![rhs]), line)?;
                }
                prim if matches!(
                    prim,
                    "and" | "or" | "xor" | "xnor" | "nand" | "nor" | "not" | "buf"
                ) =>
                {
                    let op: Op = prim.parse()?;
                    self.advance()?;
                    // Optional instance name.
                    if matches!(self.tok, Tok::Ident(_)) {
                        self.advance()?;
                    }
                    self.expect(&Tok::LParen, "`(`")?;
                    let out = self.signal_ref()?;
                    let mut ins = Vec::new();
                    while self.tok == Tok::Comma {
                        self.advance()?;
                        if let Tok::Const(v) = self.tok {
                            self.advance()?;
                            let c = self.b.fresh();
                            let line = self.line;
                            self.b.set_drive(c, Drive::Const(v), line)?;
                            ins.push(c);
                        } else {
                            ins.push(self.signal_ref()?);
                        }
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                    let line = self.line;
                    self.expect(&Tok::Semi, "`;` after gate")?;
                    self.lower_gate(op, out, ins, line)?;
                }
                other => return Err(self.err(format!("unsupported statement `{other}`"))),
            }
        }

        self.finish(module_name)
    }

    /// Lowers a (possibly n-ary) primitive instantiation to 2-input drives.
    fn lower_gate(
        &mut self,
        op: Op,
        out: SigId,
        ins: Vec<SigId>,
        line: usize,
    ) -> Result<(), NetlistError> {
        match op {
            Op::Not | Op::Buf => {
                if ins.len() != 1 {
                    return Err(NetlistError::Syntax {
                        line,
                        msg: format!("{op} expects 1 input, got {}", ins.len()),
                    });
                }
                self.b.set_drive(out, Drive::Gate(op, ins), line)
            }
            _ => {
                if ins.len() < 2 {
                    return Err(NetlistError::Syntax {
                        line,
                        msg: format!("{op} expects at least 2 inputs, got {}", ins.len()),
                    });
                }
                if ins.len() == 2 {
                    // The cell library has native 2-input nand/nor/xnor.
                    return self.b.set_drive(out, Drive::Gate(op, ins), line);
                }
                // n-ary gates: fold with the *base* op, apply negation last.
                let (base, negate) = match op {
                    Op::Nand => (Op::And, true),
                    Op::Nor => (Op::Or, true),
                    Op::Xnor => (Op::Xor, true),
                    other => (other, false),
                };
                let mut acc = ins[0];
                for (i, &next) in ins[1..].iter().enumerate() {
                    let last = i == ins.len() - 2;
                    let target = if last && !negate { out } else { self.b.fresh() };
                    self.b
                        .set_drive(target, Drive::Gate(base, vec![acc, next]), line)?;
                    acc = target;
                }
                if negate {
                    self.b
                        .set_drive(out, Drive::Gate(Op::Not, vec![acc]), line)?;
                }
                Ok(())
            }
        }
    }

    // Expression grammar: or := xor ('|' xor)*, xor := and ('^' and)*,
    // and := unary ('&' unary)*, unary := '~' unary | primary.
    fn expr(&mut self) -> Result<SigId, NetlistError> {
        self.binary(0)
    }

    fn binary(&mut self, level: u8) -> Result<SigId, NetlistError> {
        if level == 3 {
            return self.unary();
        }
        let (tok, op) = match level {
            0 => (Tok::Pipe, Op::Or),
            1 => (Tok::Caret, Op::Xor),
            _ => (Tok::Amp, Op::And),
        };
        let mut lhs = self.binary(level + 1)?;
        while self.tok == tok {
            self.advance()?;
            let rhs = self.binary(level + 1)?;
            let t = self.b.fresh();
            let line = self.line;
            self.b.set_drive(t, Drive::Gate(op, vec![lhs, rhs]), line)?;
            lhs = t;
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<SigId, NetlistError> {
        match self.tok.clone() {
            Tok::Tilde => {
                self.advance()?;
                let inner = self.unary()?;
                let t = self.b.fresh();
                let line = self.line;
                self.b
                    .set_drive(t, Drive::Gate(Op::Not, vec![inner]), line)?;
                Ok(t)
            }
            Tok::LParen => {
                self.advance()?;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Const(v) => {
                self.advance()?;
                let t = self.b.fresh();
                let line = self.line;
                self.b.set_drive(t, Drive::Const(v), line)?;
                Ok(t)
            }
            Tok::Ident(_) => self.signal_ref(),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    /// Topologically emits the builder's driver graph into a [`Netlist`].
    fn finish(self, module_name: String) -> Result<Netlist, NetlistError> {
        let b = self.b;
        let n = b.names.len();
        let mut nl = Netlist::new(module_name);
        let mut node_of: Vec<Option<NodeId>> = vec![None; n];

        // Inputs first, in declaration order.
        for &id in &b.inputs {
            node_of[id] = Some(nl.add_input(b.names[id].clone()));
        }

        // Iterative DFS with cycle detection over the remaining drivers.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark = vec![Mark::White; n];
        for root in 0..n {
            if node_of[root].is_some() {
                continue;
            }
            let mut stack: Vec<(SigId, bool)> = vec![(root, false)];
            while let Some((sig, expanded)) = stack.pop() {
                if node_of[sig].is_some() || mark[sig] == Mark::Black {
                    continue;
                }
                let drive = b.drive[sig]
                    .as_ref()
                    .ok_or_else(|| NetlistError::UndefinedSignal {
                        name: b.names[sig].clone(),
                    })?;
                if expanded {
                    mark[sig] = Mark::Black;
                    let node = match drive {
                        Drive::Input => unreachable!("inputs were pre-assigned"),
                        Drive::Const(v) => nl.add_const(*v),
                        Drive::Gate(op, ins) => {
                            let f: Vec<NodeId> = ins
                                .iter()
                                .map(|&i| node_of[i].expect("dfs order"))
                                .collect();
                            nl.add_node(*op, &f).expect("arity checked at parse time")
                        }
                    };
                    if !b.names[sig].starts_with("__t") {
                        nl.set_node_name(node, b.names[sig].clone());
                    }
                    node_of[sig] = Some(node);
                } else {
                    if mark[sig] == Mark::Grey {
                        return Err(NetlistError::Cyclic {
                            on: NodeId::new(sig as u32),
                        });
                    }
                    mark[sig] = Mark::Grey;
                    stack.push((sig, true));
                    if let Drive::Gate(_, ins) = drive {
                        for &i in ins {
                            if node_of[i].is_none() {
                                if mark[i] == Mark::Grey {
                                    return Err(NetlistError::Cyclic {
                                        on: NodeId::new(i as u32),
                                    });
                                }
                                stack.push((i, false));
                            }
                        }
                    }
                }
            }
        }

        for &o in &b.outputs {
            let node = node_of[o].ok_or_else(|| NetlistError::UndefinedSignal {
                name: b.names[o].clone(),
            })?;
            nl.add_output(node, b.names[o].clone());
        }
        nl.validate()?;
        Ok(nl)
    }
}

/// Parses the first `module` in `src` into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] for malformed input,
/// [`NetlistError::UndefinedSignal`] / [`NetlistError::Cyclic`] for
/// structurally invalid netlists, and [`NetlistError::NoOutputs`] when the
/// module declares no outputs.
///
/// # Example
///
/// ```
/// let src = "module f (a, b, y); input a, b; output y; and (y, a, b); endmodule";
/// let nl = lbnn_netlist::verilog::parse_verilog(src)?;
/// assert_eq!(nl.eval_bools(&[true, true]), vec![true]);
/// # Ok::<(), lbnn_netlist::NetlistError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<Netlist, NetlistError> {
    Parser::new(src)?.parse_module()
}

/// Writes a netlist as structural Verilog accepted by [`parse_verilog`].
///
/// Port and net names are sanitized to plain identifiers (`x[3]` becomes
/// `x_3_`); gate nets are named `n<id>`.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut used: HashMap<String, usize> = HashMap::new();
    let mut sanitize = |raw: &str| -> String {
        let mut s: String = raw
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
            s.insert(0, '_');
        }
        let count = used.entry(s.clone()).or_insert(0);
        *count += 1;
        if *count > 1 {
            s = format!("{s}_{}", *count - 1);
        }
        s
    };

    let mut pi_name: HashMap<NodeId, String> = HashMap::new();
    for &pi in netlist.inputs() {
        let raw = netlist.node_name(pi).unwrap_or("in").to_string();
        pi_name.insert(pi, sanitize(&raw));
    }
    let po_names: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|o| sanitize(&o.name))
        .collect();

    let net = |id: NodeId| -> String {
        pi_name
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("n{}", id.index()))
    };

    let mut s = String::new();
    let module = if netlist.name().is_empty() {
        "ffcl"
    } else {
        netlist.name()
    };
    let ports: Vec<String> = netlist
        .inputs()
        .iter()
        .map(|&pi| pi_name[&pi].clone())
        .chain(po_names.iter().cloned())
        .collect();
    let _ = writeln!(s, "module {module} ({});", ports.join(", "));
    for &pi in netlist.inputs() {
        let _ = writeln!(s, "  input {};", pi_name[&pi]);
    }
    for name in &po_names {
        let _ = writeln!(s, "  output {name};");
    }
    for (id, node) in netlist.iter() {
        if node.op() != Op::Input {
            let _ = writeln!(s, "  wire n{};", id.index());
        }
    }
    for (id, node) in netlist.iter() {
        match node.op() {
            Op::Input => {}
            Op::Const0 => {
                let _ = writeln!(s, "  buf g{} (n{}, 1'b0);", id.index(), id.index());
            }
            Op::Const1 => {
                let _ = writeln!(s, "  buf g{} (n{}, 1'b1);", id.index(), id.index());
            }
            op => {
                let prim = op.verilog_primitive().expect("gate op");
                let ins: Vec<String> = node.fanins().iter().map(|&f| net(f)).collect();
                let _ = writeln!(
                    s,
                    "  {prim} g{} (n{}, {});",
                    id.index(),
                    id.index(),
                    ins.join(", ")
                );
            }
        }
    }
    for (o, name) in netlist.outputs().iter().zip(&po_names) {
        let _ = writeln!(s, "  assign {name} = {};", net(o.node));
    }
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_gates() {
        let src = r#"
            // full adder sum
            module fa (a, b, cin, s);
              input a, b, cin;
              output s;
              wire t;
              xor g0 (t, a, b);
              xor g1 (s, t, cin);
            endmodule
        "#;
        let nl = parse_verilog(src).unwrap();
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        for bits in 0u8..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(nl.eval_bools(&[a, b, c])[0], a ^ b ^ c);
        }
    }

    #[test]
    fn parse_nary_and_negated_gates() {
        let src = "module m (a, b, c, y, z); input a, b, c; output y, z;\
                   and (y, a, b, c); nor (z, a, b, c); endmodule";
        let nl = parse_verilog(src).unwrap();
        for bits in 0u8..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let out = nl.eval_bools(&[a, b, c]);
            assert_eq!(out[0], a && b && c);
            assert_eq!(out[1], !(a || b || c));
        }
    }

    #[test]
    fn parse_assign_expressions() {
        let src = "module m (a, b, c, y); input a, b, c; output y;\
                   assign y = ~(a & b) ^ (c | 1'b0); endmodule";
        let nl = parse_verilog(src).unwrap();
        for bits in 0u8..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(nl.eval_bools(&[a, b, c])[0], !(a && b) ^ c);
        }
    }

    #[test]
    fn parse_vectors_and_bit_selects() {
        let src = "module m (x, y); input [2:0] x; output y;\
                   assign y = x[0] & x[1] & x[2]; endmodule";
        let nl = parse_verilog(src).unwrap();
        assert_eq!(nl.inputs().len(), 3);
        // Declaration order is msb-first: x[2], x[1], x[0].
        assert_eq!(nl.node_name(nl.inputs()[0]), Some("x[2]"));
        assert_eq!(nl.eval_bools(&[true, true, true]), vec![true]);
        assert_eq!(nl.eval_bools(&[true, true, false]), vec![false]);
    }

    #[test]
    fn operator_precedence() {
        // `a | b & c` must parse as `a | (b & c)`.
        let src = "module m (a, b, c, y); input a, b, c; output y;\
                   assign y = a | b & c; endmodule";
        let nl = parse_verilog(src).unwrap();
        assert_eq!(nl.eval_bools(&[true, false, false]), vec![true]);
        assert_eq!(nl.eval_bools(&[false, true, false]), vec![false]);
    }

    #[test]
    fn undefined_signal_rejected() {
        let src = "module m (a, y); input a; output y; and (y, a, ghost); endmodule";
        assert!(matches!(
            parse_verilog(src),
            Err(NetlistError::UndefinedSignal { name }) if name == "ghost"
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let src = "module m (a, b, y); input a, b; output y;\
                   and (y, a, b); or (y, a, b); endmodule";
        assert!(matches!(
            parse_verilog(src),
            Err(NetlistError::Syntax { .. })
        ));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let src = "module m (a, y); input a; output y; wire w;\
                   and (w, a, y); buf (y, w); endmodule";
        assert!(matches!(
            parse_verilog(src),
            Err(NetlistError::Cyclic { .. })
        ));
    }

    #[test]
    fn syntax_error_carries_line() {
        let src = "module m (a, y);\ninput a;\noutput y;\nand (y a);\nendmodule";
        match parse_verilog(src) {
            Err(NetlistError::Syntax { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn write_then_parse_round_trip() {
        let src = "module m (a, b, c, y, z); input a, b, c; output y, z;\
                   wire t; xnor (t, a, b); assign y = t | ~c; nand (z, t, c, a); endmodule";
        let nl = parse_verilog(src).unwrap();
        let text = write_verilog(&nl);
        let nl2 = parse_verilog(&text).unwrap();
        assert_eq!(nl2.inputs().len(), nl.inputs().len());
        assert_eq!(nl2.outputs().len(), nl.outputs().len());
        for bits in 0u8..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_bools(&ins), nl2.eval_bools(&ins));
        }
    }

    #[test]
    fn writer_sanitizes_vector_names() {
        let src = "module m (x, y); input [1:0] x; output y; and (y, x[0], x[1]); endmodule";
        let nl = parse_verilog(src).unwrap();
        let text = write_verilog(&nl);
        assert!(
            text.contains("x_1_"),
            "vector bits become plain identifiers"
        );
        let nl2 = parse_verilog(&text).unwrap();
        for bits in 0u8..4 {
            let ins: Vec<bool> = (0..2).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(nl.eval_bools(&ins), nl2.eval_bools(&ins));
        }
    }

    #[test]
    fn block_comments_and_junk_before_module() {
        let src = "/* header\n spanning lines */ timescale junk ; module m (a,y);\
                   input a; output y; buf (y, a); endmodule";
        // Unknown tokens before `module` are skipped.
        let nl = parse_verilog(src).unwrap();
        assert_eq!(nl.eval_bools(&[true]), vec![true]);
    }
}
