//! Seeded random netlist generators for tests and benchmarks.
//!
//! Two flavors:
//!
//! * [`RandomDag::strict`] — *strictly leveled* graphs where every gate reads
//!   only the previous level; these are fully path balanced by construction
//!   and drive the partitioner/scheduler benchmarks directly.
//! * [`RandomDag::loose`] — gates may read any earlier node, producing the
//!   unbalanced netlists a synthesis front-end would hand to the compiler.
//!
//! All generation is deterministic in the seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::cell::Op;
use crate::netlist::{Netlist, NodeId};

/// Configuration for random DAG generation (builder-style).
///
/// # Example
///
/// ```
/// use lbnn_netlist::random::RandomDag;
/// let nl = RandomDag::strict(8, 5, 4).generate(42);
/// assert_eq!(nl.inputs().len(), 8);
/// let same = RandomDag::strict(8, 5, 4).generate(42);
/// assert_eq!(nl, same, "generation is deterministic in the seed");
/// ```
#[derive(Debug, Clone)]
pub struct RandomDag {
    inputs: usize,
    levels: usize,
    width: usize,
    width_jitter: usize,
    strict: bool,
    outputs: Option<usize>,
    ops: Vec<Op>,
}

impl RandomDag {
    /// A strictly leveled DAG: `levels` levels of about `width` gates, each
    /// reading only the previous level. Fully path balanced by construction.
    pub fn strict(inputs: usize, levels: usize, width: usize) -> Self {
        RandomDag {
            inputs,
            levels,
            width,
            width_jitter: 0,
            strict: true,
            outputs: None,
            ops: vec![Op::And, Op::Or, Op::Xor, Op::Xnor, Op::Nand, Op::Nor],
        }
    }

    /// A loose DAG: gates read any earlier node, so paths have uneven
    /// lengths and the netlist needs full path balancing before mapping.
    pub fn loose(inputs: usize, levels: usize, width: usize) -> Self {
        RandomDag {
            strict: false,
            ..RandomDag::strict(inputs, levels, width)
        }
    }

    /// Varies each level's width uniformly in `width ± jitter` (clamped to 1).
    pub fn width_jitter(mut self, jitter: usize) -> Self {
        self.width_jitter = jitter;
        self
    }

    /// Number of primary outputs (default: all nodes of the last level).
    pub fn outputs(mut self, count: usize) -> Self {
        self.outputs = Some(count);
        self
    }

    /// Restricts the gate operation pool.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty or contains a non-two-input operation.
    pub fn ops(mut self, ops: &[Op]) -> Self {
        assert!(!ops.is_empty(), "operation pool must be non-empty");
        assert!(
            ops.iter().all(|o| o.is_gate2()),
            "operation pool must contain only two-input gates"
        );
        self.ops = ops.to_vec();
        self
    }

    /// Generates the netlist; identical seeds yield identical netlists.
    ///
    /// # Panics
    ///
    /// Panics if `inputs == 0` or `levels == 0`.
    pub fn generate(&self, seed: u64) -> Netlist {
        assert!(self.inputs > 0, "need at least one input");
        assert!(self.levels > 0, "need at least one level");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nl = Netlist::new(format!("rand_{seed}"));

        let mut prev: Vec<NodeId> = (0..self.inputs)
            .map(|i| nl.add_input(format!("x{i}")))
            .collect();
        let mut all: Vec<NodeId> = prev.clone();

        let mut last = Vec::new();
        for _level in 0..self.levels {
            let w = if self.width_jitter == 0 {
                self.width
            } else {
                let lo = self.width.saturating_sub(self.width_jitter).max(1);
                let hi = self.width + self.width_jitter;
                rng.random_range(lo..=hi)
            };
            let mut cur = Vec::with_capacity(w);
            for _ in 0..w {
                let op = self.ops[rng.random_range(0..self.ops.len())];
                let pool: &[NodeId] = if self.strict { &prev } else { &all };
                let a = pool[rng.random_range(0..pool.len())];
                let b = pool[rng.random_range(0..pool.len())];
                cur.push(nl.add_gate2(op, a, b));
            }
            all.extend_from_slice(&cur);
            last = cur.clone();
            prev = cur;
        }

        let out_count = self.outputs.unwrap_or(last.len()).max(1);
        for i in 0..out_count {
            let node = if i < last.len() {
                last[i]
            } else {
                last[rng.random_range(0..last.len())]
            };
            nl.add_output(node, format!("y{i}"));
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelize::Levels;

    #[test]
    fn strict_is_fully_balanced() {
        let nl = RandomDag::strict(16, 6, 8).generate(7);
        let lv = Levels::compute(&nl);
        assert!(lv.is_fully_balanced(&nl));
        assert_eq!(lv.depth(), 6);
        assert_eq!(lv.max_width(&nl), 8);
        nl.validate().unwrap();
    }

    #[test]
    fn loose_needs_balancing() {
        // With many levels over a loose pool, some edge will skip a level.
        let nl = RandomDag::loose(8, 8, 6).generate(3);
        let lv = Levels::compute(&nl);
        assert!(!lv.is_fully_balanced(&nl));
        nl.validate().unwrap();
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = RandomDag::strict(8, 4, 4).generate(1);
        let b = RandomDag::strict(8, 4, 4).generate(1);
        let c = RandomDag::strict(8, 4, 4).generate(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn jitter_and_output_count() {
        let nl = RandomDag::strict(8, 5, 6)
            .width_jitter(3)
            .outputs(4)
            .generate(11);
        assert_eq!(nl.outputs().len(), 4);
        let lv = Levels::compute(&nl);
        assert_eq!(lv.depth(), 5);
    }

    #[test]
    #[should_panic(expected = "two-input")]
    fn ops_rejects_siso() {
        let _ = RandomDag::strict(4, 2, 2).ops(&[Op::Not]);
    }
}
