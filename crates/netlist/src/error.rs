//! Error type shared by all netlist operations.

use std::error::Error;
use std::fmt;

use crate::netlist::NodeId;

/// Errors produced while building, parsing or transforming a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate operation name was not part of the cell library.
    UnknownOp {
        /// The offending operation name.
        op: String,
    },
    /// A node id referenced a node that does not exist in the arena.
    InvalidNode {
        /// The offending id.
        id: NodeId,
    },
    /// The netlist contains a combinational cycle.
    Cyclic {
        /// A node known to lie on the cycle.
        on: NodeId,
    },
    /// A signal name was used before being defined (Verilog parsing).
    UndefinedSignal {
        /// The undefined signal name.
        name: String,
    },
    /// A signal was driven by more than one gate (Verilog parsing).
    MultipleDrivers {
        /// The multiply-driven signal name.
        name: String,
    },
    /// A Verilog syntax error with a line number and message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        msg: String,
    },
    /// The netlist has no primary outputs (nothing to compute).
    NoOutputs,
    /// An evaluation was given the wrong number of input values.
    InputArity {
        /// Number of primary inputs of the netlist.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A serialized netlist image is truncated or structurally invalid
    /// (binary deserialization, [`crate::serdes`]).
    Malformed {
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// A live patch targeted a cell it cannot legally rewrite
    /// ([`crate::PatchSet::validate`]).
    BadPatch {
        /// The targeted node.
        id: NodeId,
        /// Why the replacement is not allowed.
        reason: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownOp { op } => write!(f, "unknown cell-library operation `{op}`"),
            NetlistError::InvalidNode { id } => write!(f, "invalid node id {id:?}"),
            NetlistError::Cyclic { on } => {
                write!(f, "netlist contains a combinational cycle through {on:?}")
            }
            NetlistError::UndefinedSignal { name } => {
                write!(f, "signal `{name}` is used but never defined")
            }
            NetlistError::MultipleDrivers { name } => {
                write!(f, "signal `{name}` has multiple drivers")
            }
            NetlistError::Syntax { line, msg } => write!(f, "syntax error on line {line}: {msg}"),
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::InputArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::Malformed { reason } => {
                write!(f, "malformed netlist image: {reason}")
            }
            NetlistError::BadPatch { id, reason } => {
                write!(f, "cannot patch node {id:?}: {reason}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NetlistError::UnknownOp { op: "maj".into() },
            NetlistError::InvalidNode { id: NodeId::new(3) },
            NetlistError::Cyclic { on: NodeId::new(0) },
            NetlistError::UndefinedSignal { name: "w".into() },
            NetlistError::MultipleDrivers { name: "w".into() },
            NetlistError::Syntax {
                line: 7,
                msg: "expected `;`".into(),
            },
            NetlistError::NoOutputs,
            NetlistError::InputArity {
                expected: 2,
                got: 3,
            },
            NetlistError::Malformed {
                reason: "truncated".into(),
            },
            NetlistError::BadPatch {
                id: NodeId::new(4),
                reason: "arity mismatch".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
