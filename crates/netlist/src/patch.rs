//! Live truth-table patches: rebind a cell's logic function without
//! touching its wiring.
//!
//! The compiled evaluators in this workspace all share one invariant:
//! a cell's *structure* (its fanin wiring, level, and schedule slot) is
//! decided once at compile time, while its *function* is carried as
//! data — the four ANF masks returned by [`Op::anf_masks`]. A
//! [`PatchSet`] exploits that split. It names cells by their stable
//! [`NodeId`] (node ids are dense and survive compilation: the
//! bit-sliced tape addresses slots by node index, and the LPU program
//! tags every instruction with its source `NodeId`) and maps each one
//! to a replacement [`Op`] of the same arity. Applying a patch set
//! therefore never re-synthesises, re-levelizes, or re-schedules
//! anything — downstream layers only swap mask words.
//!
//! What a patch may do is deliberately narrow:
//!
//! * the target node must exist and be an executable cell — primary
//!   inputs carry no function to replace;
//! * constant cells (arity 0) are off limits: compilers fold constant
//!   fanins into immediate operands, so a constant's "function" has
//!   already been copied into its consumers by the time a patch could
//!   run;
//! * the replacement op must be executable and have the **same arity**
//!   as the op it replaces, so the existing wiring remains valid.
//!
//! Violations surface as [`NetlistError::BadPatch`].

use std::collections::BTreeMap;

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::{Netlist, NodeId};

/// An ordered set of per-cell function replacements, keyed by stable
/// node id.
///
/// Later [`set`](PatchSet::set) calls on the same id overwrite earlier
/// ones — a `PatchSet` describes the *final* function of each touched
/// cell, not a sequence of edits. Iteration order is ascending by node
/// id, which keeps serialized deltas and test failures deterministic.
///
/// ```
/// use lbnn_netlist::{Netlist, Op, PatchSet};
///
/// let mut nl = Netlist::new("n");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate2(Op::And, a, b);
/// nl.add_output(g, "g");
///
/// let mut patch = PatchSet::new();
/// patch.set(g, Op::Xor);
/// patch.validate(&nl).unwrap();
///
/// let mut patched = nl.clone();
/// patched.apply_patches(&patch).unwrap();
/// assert_eq!(patched.node(g).op(), Op::Xor);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchSet {
    changes: BTreeMap<NodeId, Op>,
}

impl PatchSet {
    /// An empty patch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that cell `id` should compute `op`. Overwrites any
    /// earlier entry for the same id.
    pub fn set(&mut self, id: NodeId, op: Op) -> &mut Self {
        self.changes.insert(id, op);
        self
    }

    /// The replacement op recorded for `id`, if any.
    pub fn get(&self, id: NodeId) -> Option<Op> {
        self.changes.get(&id).copied()
    }

    /// Number of cells touched.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when no cells are touched.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Iterate `(id, new_op)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Op)> + '_ {
        self.changes.iter().map(|(&id, &op)| (id, op))
    }

    /// Check every entry against `netlist` without modifying anything.
    ///
    /// Verifies that each target exists, is an executable non-constant
    /// cell, and that the replacement op is executable with matching
    /// arity. Returns the first violation as
    /// [`NetlistError::BadPatch`] (or [`NetlistError::InvalidNode`]
    /// for ids outside the netlist).
    pub fn validate(&self, netlist: &Netlist) -> Result<(), NetlistError> {
        for (id, op) in self.iter() {
            if id.index() >= netlist.len() {
                return Err(NetlistError::InvalidNode { id });
            }
            let old = netlist.node(id).op();
            if !old.is_executable() {
                return Err(NetlistError::BadPatch {
                    id,
                    reason: "primary inputs carry no patchable function".into(),
                });
            }
            if old.arity() == 0 {
                return Err(NetlistError::BadPatch {
                    id,
                    reason: "constant cells are folded into operands at compile time".into(),
                });
            }
            if !op.is_executable() {
                return Err(NetlistError::BadPatch {
                    id,
                    reason: format!("replacement op {op} is not an executable cell function"),
                });
            }
            if op.arity() != old.arity() {
                return Err(NetlistError::BadPatch {
                    id,
                    reason: format!(
                        "arity mismatch: cell computes {old} ({} inputs), patch wants {op} ({} inputs)",
                        old.arity(),
                        op.arity()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<(NodeId, Op)> for PatchSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, Op)>>(iter: T) -> Self {
        Self {
            changes: iter.into_iter().collect(),
        }
    }
}

impl Netlist {
    /// Apply every replacement in `patches` to this netlist.
    ///
    /// Validates the whole set first, so on error the netlist is
    /// unchanged. Wiring, names, inputs, and outputs are untouched —
    /// only the op of each targeted node changes.
    pub fn apply_patches(&mut self, patches: &PatchSet) -> Result<(), NetlistError> {
        patches.validate(self)?;
        for (id, op) in patches.iter() {
            self.replace_op(id, op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> (Netlist, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new("mux");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ns = nl.add_gate1(Op::Not, s);
        let t0 = nl.add_gate2(Op::And, ns, a);
        let t1 = nl.add_gate2(Op::And, s, b);
        let y = nl.add_gate2(Op::Or, t0, t1);
        nl.add_output(y, "y");
        (nl, ns, t1, y)
    }

    #[test]
    fn set_get_iter_and_overwrite() {
        let mut p = PatchSet::new();
        assert!(p.is_empty());
        let id = NodeId::new(3);
        p.set(id, Op::And);
        p.set(id, Op::Xor);
        p.set(NodeId::new(1), Op::Nor);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(id), Some(Op::Xor));
        assert_eq!(p.get(NodeId::new(9)), None);
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs, vec![(NodeId::new(1), Op::Nor), (id, Op::Xor)]);
    }

    #[test]
    fn validate_accepts_same_arity_gate_swaps() {
        let (nl, ns, t1, y) = mux();
        let mut p = PatchSet::new();
        p.set(ns, Op::Buf).set(t1, Op::Nand).set(y, Op::Xnor);
        p.validate(&nl).unwrap();
    }

    #[test]
    fn validate_rejects_bad_targets_and_ops() {
        let (nl, ns, t1, _) = mux();

        let mut out_of_range = PatchSet::new();
        out_of_range.set(NodeId::new(99), Op::And);
        assert!(matches!(
            out_of_range.validate(&nl),
            Err(NetlistError::InvalidNode { .. })
        ));

        let mut on_input = PatchSet::new();
        on_input.set(NodeId::new(0), Op::And);
        assert!(matches!(
            on_input.validate(&nl),
            Err(NetlistError::BadPatch { .. })
        ));

        let mut arity_mismatch = PatchSet::new();
        arity_mismatch.set(t1, Op::Not);
        assert!(matches!(
            arity_mismatch.validate(&nl),
            Err(NetlistError::BadPatch { .. })
        ));

        let mut to_input = PatchSet::new();
        to_input.set(ns, Op::Input);
        assert!(matches!(
            to_input.validate(&nl),
            Err(NetlistError::BadPatch { .. })
        ));

        let mut to_const = PatchSet::new();
        to_const.set(t1, Op::Const1);
        assert!(matches!(
            to_const.validate(&nl),
            Err(NetlistError::BadPatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_const_targets() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let c = nl.add_const(true);
        let g = nl.add_gate2(Op::And, a, c);
        nl.add_output(g, "g");
        let mut p = PatchSet::new();
        p.set(c, Op::Const0);
        assert!(matches!(
            p.validate(&nl),
            Err(NetlistError::BadPatch { .. })
        ));
    }

    #[test]
    fn apply_patches_changes_semantics_and_keeps_wiring() {
        let (nl, _, _, y) = mux();
        let mut patched = nl.clone();
        let mut p = PatchSet::new();
        p.set(y, Op::Nor);
        patched.apply_patches(&p).unwrap();
        assert_eq!(patched.node(y).op(), Op::Nor);
        assert_eq!(patched.node(y).fanins(), nl.node(y).fanins());
        assert_eq!(patched.len(), nl.len());
        // mux(s=0, a=1, b=0) = 1; with the Or replaced by Nor it flips.
        let base = nl.eval_bools(&[false, true, false]);
        let after = patched.eval_bools(&[false, true, false]);
        assert_eq!(base, vec![true]);
        assert_eq!(after, vec![false]);
    }

    #[test]
    fn apply_patches_is_atomic_on_error() {
        let (nl, ns, _, y) = mux();
        let mut patched = nl.clone();
        let mut p = PatchSet::new();
        p.set(y, Op::Xor).set(ns, Op::And); // second entry is invalid
        assert!(patched.apply_patches(&p).is_err());
        assert_eq!(patched.node(y).op(), Op::Or);
    }
}
