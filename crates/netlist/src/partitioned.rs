//! Partitioned multi-engine execution of a bit-sliced kernel tape.
//!
//! The paper's LPU assemblies partition one netlist across processing
//! units with explicit inter-partition routing. This module is the
//! software analogue: a [`PartitionedEngine`] compiles a netlist into N
//! per-partition kernel tapes — each with its **own** locality-optimized
//! slot space, allocated by the same liveness allocator the single-tape
//! [`BitSliceEvaluator`](crate::BitSliceEvaluator) uses — plus a
//! compile-time [`ExchangeSchedule`]: the `(src_partition, src_slot) →
//! (dst_partition, dst_slot)` word copies that move every
//! cross-partition net, grouped by netlist level.
//!
//! Execution is level-synchronous: every partition replays its level-`l`
//! tape segment over its own [`SliceFrame`], then the level's exchange
//! copies run, then level `l + 1` starts. On a multi-core host the N
//! partitions run on N worker threads with a barrier either side of each
//! non-empty exchange (a partition only ever touches a foreign frame
//! inside that window); on a single core — or for small batches, where
//! thread spawn would dominate — the same schedule replays sequentially
//! with bit-identical results.
//!
//! Why this helps even without extra cores: the per-partition frames are
//! a fraction of the single-engine frame, so each partition fits a wider
//! cache-budget tile ([`TapeOptions::cache_budget`]) and replays its
//! tape fewer times per block. A netlist whose single-engine frame
//! exceeds the budget pays one full tape stream per tile; partitioned,
//! each (smaller) tape streams once.
//!
//! Slot-safety invariant the allocator maintains: at each level
//! boundary, **import slots are allocated before export slots are
//! released**, so a copy's destination can never alias a slot another
//! copy still reads — the exchange is order-independent within a level,
//! which is also what makes the threaded copies race-free.
//!
//! The construction is deterministic and purely structural (level and
//! arena order, never gate kinds), so [`PartitionedEngine::patched`] is
//! a pure ANF-mask rewrite, exactly like the single-tape evaluator.

use crate::cell::Op;
use crate::error::NetlistError;
use crate::eval::{replay_tape, Lanes, SimdLevel, SliceFrame, SliceInstr, SlotPool, TapeOptions};
use crate::netlist::{Netlist, NodeId};
use crate::patch::PatchSet;
use crate::serdes::{ByteReader, ByteWriter};

/// Hard ceiling on the partition count: consumer bitmasks are one
/// `u64`, and more partitions than cores (or L2 slices) never helps.
pub const MAX_PARTITIONS: usize = 64;

/// Sentinel for "no position / no slot" in the compile-time tables.
const NONE: u32 = u32::MAX;

/// Input accessor the block loops pull packed lane columns through:
/// maps a primary-input index to its full `lanes.div_ceil(64)`-word
/// column.
type InputWords<'a> = dyn Fn(usize) -> &'a [u64] + Sync + 'a;

fn malformed(reason: impl Into<String>) -> NetlistError {
    NetlistError::Malformed {
        reason: reason.into(),
    }
}

/// A node → partition map driving [`PartitionedEngine::compile_with`].
///
/// The default ([`PartitionAssignment::contiguous`]) splits every
/// netlist level into `parts` contiguous arena-order chunks — the
/// level-synchronous analogue of partitioning a layer's neurons into
/// blocks, and the assignment that keeps banded netlists' cuts small.
/// Arbitrary maps ([`PartitionAssignment::from_map`]) exist for tests
/// that probe the exchange scheduler with adversarial assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionAssignment {
    parts: usize,
    of: Vec<u32>,
}

impl PartitionAssignment {
    /// Splits each level of `netlist` into `parts` contiguous
    /// arena-order chunks (primary inputs are chunked the same way;
    /// their partition only matters as the *home* of an input that is
    /// also a primary output).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] when `parts` is 0 or exceeds
    /// [`MAX_PARTITIONS`].
    pub fn contiguous(netlist: &Netlist, parts: usize) -> Result<Self, NetlistError> {
        check_parts(parts)?;
        let n = netlist.len();
        let level = node_levels(netlist);
        let num_levels = level.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_levels + 1];
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                buckets[0].push(id.index() as u32);
            } else {
                buckets[level[id.index()] as usize + 1].push(id.index() as u32);
            }
        }
        let mut of = vec![0u32; n];
        for bucket in &buckets {
            for (j, &id) in bucket.iter().enumerate() {
                of[id as usize] = (j * parts / bucket.len()) as u32;
            }
        }
        Ok(PartitionAssignment { parts, of })
    }

    /// An arbitrary node → partition map: `of[i]` is the partition of
    /// arena node `i` (inputs included).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] when `parts` is out of range or any
    /// entry names a partition `>= parts`.
    pub fn from_map(parts: usize, of: Vec<u32>) -> Result<Self, NetlistError> {
        check_parts(parts)?;
        if let Some(&bad) = of.iter().find(|&&p| p as usize >= parts) {
            return Err(malformed(format!(
                "assignment names partition {bad} but there are only {parts}"
            )));
        }
        Ok(PartitionAssignment { parts, of })
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The partition of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range of the map.
    pub fn of(&self, id: NodeId) -> usize {
        self.of[id.index()] as usize
    }
}

fn check_parts(parts: usize) -> Result<(), NetlistError> {
    if parts == 0 || parts > MAX_PARTITIONS {
        return Err(malformed(format!(
            "partition count {parts} is outside the supported 1..={MAX_PARTITIONS}"
        )));
    }
    Ok(())
}

/// Gate levels as the tape compilers define them: inputs and constants
/// at 0, every gate one past its deepest fanin.
fn node_levels(netlist: &Netlist) -> Vec<u32> {
    let mut level = vec![0u32; netlist.len()];
    for (id, node) in netlist.iter() {
        if node.op() == Op::Input {
            continue;
        }
        level[id.index()] = node
            .fanins()
            .iter()
            .map(|f| level[f.index()])
            .max()
            .map_or(0, |m| m + 1);
    }
    level
}

/// One compile-time word copy of the exchange schedule: after the
/// source partition's level segment completes, the `words_per_net` span
/// of `src_slot` in `src_part`'s frame is copied to `dst_slot` in
/// `dst_part`'s frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeCopy {
    /// Partition that computed the value.
    pub src_part: u32,
    /// Its slot in the source partition's frame.
    pub src_slot: u32,
    /// Partition that will read the value at a later level.
    pub dst_part: u32,
    /// The import slot in the destination partition's frame.
    pub dst_slot: u32,
}

/// The compile-time cross-partition routing plan: `levels[l]` holds the
/// copies to run after every partition finishes its level-`l` segment
/// (and before any level-`l + 1` instruction runs). Copies within a
/// level write pairwise-distinct destination slots, none of which alias
/// a source slot still to be read at that level — they can run in any
/// order, or concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExchangeSchedule {
    /// Per-level copy groups, aligned with the tape level segments.
    pub levels: Vec<Vec<ExchangeCopy>>,
}

impl ExchangeSchedule {
    /// Total copies across all levels.
    pub fn num_copies(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// What partitioning did to the tape
/// ([`PartitionedEngine::partition_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of partitions.
    pub partitions: usize,
    /// Level segments every partition's tape is divided into.
    pub levels: usize,
    /// Distinct nets computed in one partition and read in another —
    /// the cut size.
    pub cut_nets: usize,
    /// Exchange copies (≥ `cut_nets`: one per consuming partition).
    pub cut_copies: usize,
    /// Live slots of the largest per-partition frame (each frame adds
    /// one accumulator scratch slot on top).
    pub max_frame_slots: usize,
    /// Live slots summed over all partitions.
    pub total_frame_slots: usize,
    /// Kernel instructions summed over all partitions (equals the
    /// single-tape length: partitioning never duplicates work).
    pub tape_len: usize,
}

impl PartitionStats {
    /// Words the exchange moves per block at `words_per_net` words per
    /// net — the per-block exchange overhead.
    pub fn exchange_words(&self, words_per_net: usize) -> usize {
        self.cut_copies * words_per_net
    }
}

/// One partition's share of the compiled netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PartTape {
    /// This partition's kernel instructions, level-major.
    tape: Vec<SliceInstr>,
    /// Netlist node behind each instruction (patch addressing).
    cells: Vec<u32>,
    /// `tape[seg_ends[l - 1] .. seg_ends[l]]` is the level-`l` segment.
    seg_ends: Vec<u32>,
    /// `(primary input index, slot)` for every input this partition
    /// loads directly — inputs are never exchanged.
    inputs: Vec<(u32, u32)>,
    /// `(primary output index, slot)` for every output this partition
    /// owns.
    outputs: Vec<(u32, u32)>,
    /// Per level: the schedule copies whose destination is this
    /// partition (what this partition's worker executes).
    imports: Vec<Vec<ExchangeCopy>>,
    /// Live data slots; the frame adds one accumulator slot on top.
    frame_slots: usize,
    /// Cache-budget tile cap for this partition's (smaller) frame.
    tile_cap: usize,
}

/// The widest tile from `{16, 8, 4, 2, 1}` whose frame slice fits
/// `budget` bytes (0 = unlimited) — [`crate::TapeStats::tile_words`]
/// for a per-partition frame.
fn tile_cap_for(frame_slots: usize, budget: usize) -> usize {
    if budget == 0 {
        return 16;
    }
    for t in [16usize, 8, 4, 2] {
        if frame_slots * t * 8 <= budget {
            return t;
        }
    }
    1
}

/// A netlist compiled into N per-partition kernel tapes plus the
/// exchange schedule that routes every cross-partition net — the
/// multi-engine counterpart of
/// [`BitSliceEvaluator`](crate::BitSliceEvaluator), with identical
/// [`Lanes`] I/O semantics and bit-identical results at every frame
/// width and partition count.
///
/// # Example
///
/// ```
/// use lbnn_netlist::eval::evaluate;
/// use lbnn_netlist::partitioned::PartitionedEngine;
/// use lbnn_netlist::{Lanes, Netlist, Op};
/// let mut nl = Netlist::new("f");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::Nand, a, b);
/// nl.add_output(y, "y");
/// let inputs = [
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ];
/// let engine = PartitionedEngine::compile(&nl, 2).unwrap();
/// assert_eq!(
///     engine.evaluate(&inputs).unwrap(),
///     evaluate(&nl, &inputs).unwrap(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedEngine {
    parts: Vec<PartTape>,
    schedule: ExchangeSchedule,
    num_inputs: usize,
    num_outputs: usize,
    /// Netlist arena size the tapes were compiled from (patch-index
    /// bound).
    num_cells: usize,
    cache_budget: usize,
    simd: SimdLevel,
    stats: PartitionStats,
}

impl PartitionedEngine {
    /// Compiles `netlist` into `parts` partition tapes with the default
    /// contiguous per-level assignment and
    /// [`TapeOptions::from_env`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] for a partition count outside
    /// `1..=`[`MAX_PARTITIONS`].
    pub fn compile(netlist: &Netlist, parts: usize) -> Result<Self, NetlistError> {
        let assignment = PartitionAssignment::contiguous(netlist, parts)?;
        PartitionedEngine::compile_with(netlist, &assignment, TapeOptions::from_env())
    }

    /// Compiles `netlist` against an explicit [`PartitionAssignment`]
    /// and locality options. [`TapeOptions::fuse`] is ignored —
    /// single-fanout chains span levels, and partition tapes must break
    /// at every level boundary for the exchange — while `reuse`,
    /// `cache_budget` and `simd` apply per partition.
    ///
    /// Deterministic and purely structural: two compiles of the same
    /// netlist with the same assignment and options are equal, and
    /// patching never changes the schedule
    /// ([`PartitionedEngine::patched`]).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] when the assignment does not cover
    /// exactly this netlist's nodes.
    pub fn compile_with(
        netlist: &Netlist,
        assignment: &PartitionAssignment,
        options: TapeOptions,
    ) -> Result<Self, NetlistError> {
        let n = netlist.len();
        let parts = assignment.parts;
        if assignment.of.len() != n {
            return Err(malformed(format!(
                "assignment covers {} nodes but the netlist has {n}",
                assignment.of.len()
            )));
        }
        let pof = &assignment.of;
        let level = node_levels(netlist);
        let num_levels = netlist
            .iter()
            .filter(|(_, node)| node.op() != Op::Input)
            .map(|(id, _)| level[id.index()] as usize + 1)
            .max()
            .unwrap_or(0);

        // Executable nodes grouped by level, arena order within each —
        // the global tape order every per-partition order is a
        // subsequence of.
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); num_levels];
        for (id, node) in netlist.iter() {
            if node.op() != Op::Input {
                by_level[level[id.index()] as usize].push(id.index() as u32);
            }
        }

        // Which partitions read each node from a frame (bitmask), and
        // which partition pins it as a primary output.
        let mut read_mask = vec![0u64; n];
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            for &f in node.fanins() {
                read_mask[f.index()] |= 1u64 << pof[id.index()];
            }
        }
        let mut pin_mask = vec![0u64; n];
        for o in netlist.outputs() {
            pin_mask[o.node.index()] |= 1u64 << pof[o.node.index()];
        }

        // Cross-partition consumer mask of each executable node: the
        // partitions that import it. Inputs never appear — every
        // partition loads the primary inputs it reads directly.
        let mut cross_mask = vec![0u64; n];
        let mut cut_nets = 0usize;
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            let i = id.index();
            let m = read_mask[i] & !(1u64 << pof[i]);
            cross_mask[i] = m;
            if m != 0 {
                cut_nets += 1;
            }
        }

        // Per-partition slot assignment. Event order within a
        // partition: level-l instructions (arena order), then the
        // level-l exchange — import allocations FIRST, export releases
        // SECOND, so an import destination can never alias a source
        // slot still being read at this exchange.
        let mut slot_of: Vec<Vec<u32>> = Vec::with_capacity(parts);
        let mut frame_slots: Vec<usize> = Vec::with_capacity(parts);
        for p in 0..parts {
            let pbit = 1u64 << p;
            // Instruction and exchange positions in this partition's
            // event order.
            let mut ipos = vec![NONE; n];
            let mut xpos = vec![NONE; num_levels];
            let mut pos = 0u32;
            for (l, ids) in by_level.iter().enumerate() {
                for &y in ids {
                    if pof[y as usize] == p as u32 {
                        ipos[y as usize] = pos;
                        pos += 1;
                    }
                }
                xpos[l] = pos;
                pos += 1;
            }
            // Last frame read of each value present in this partition.
            let mut last_read = vec![NONE; n];
            for ids in &by_level {
                for &y in ids {
                    let yi = y as usize;
                    if pof[yi] != p as u32 {
                        continue;
                    }
                    for &f in netlist.node(NodeId::new(y)).fanins() {
                        last_read[f.index()] = ipos[yi];
                    }
                }
            }
            for ids in &by_level {
                for &y in ids {
                    let yi = y as usize;
                    if pof[yi] == p as u32 && cross_mask[yi] != 0 {
                        let x = xpos[level[yi] as usize];
                        if last_read[yi] == NONE || last_read[yi] < x {
                            last_read[yi] = x;
                        }
                    }
                }
            }
            let mut pool = SlotPool {
                free: Vec::new(),
                high: 0,
                reuse: options.reuse,
            };
            let mut slots = vec![NONE; n];
            for &i in netlist.inputs() {
                let ii = i.index();
                if read_mask[ii] & pbit != 0 || pin_mask[ii] & pbit != 0 {
                    slots[ii] = pool.alloc();
                }
            }
            for (l, ids) in by_level.iter().enumerate() {
                for &y in ids {
                    let yi = y as usize;
                    if pof[yi] != p as u32 {
                        continue;
                    }
                    let fan = netlist.node(NodeId::new(y)).fanins();
                    let mut released = [NONE; 2];
                    let mut nr = 0;
                    for &f in fan {
                        let fi = f.index();
                        if last_read[fi] == ipos[yi]
                            && pin_mask[fi] & pbit == 0
                            && released[..nr].iter().all(|&r| r != fi as u32)
                        {
                            pool.release(slots[fi]);
                            released[nr] = fi as u32;
                            nr += 1;
                        }
                    }
                    slots[yi] = pool.alloc();
                    if last_read[yi] == NONE && pin_mask[yi] & pbit == 0 {
                        pool.release(slots[yi]);
                    }
                }
                // Exchange boundary: imports in, then dead exports out.
                for &y in ids {
                    let yi = y as usize;
                    if cross_mask[yi] & pbit != 0 {
                        slots[yi] = pool.alloc();
                    }
                }
                for &y in ids {
                    let yi = y as usize;
                    if pof[yi] == p as u32
                        && cross_mask[yi] != 0
                        && last_read[yi] == xpos[l]
                        && pin_mask[yi] & pbit == 0
                    {
                        pool.release(slots[yi]);
                    }
                }
            }
            frame_slots.push(pool.high as usize);
            slot_of.push(slots);
        }

        // The exchange schedule: every cross net, routed at its
        // production level, one copy per consuming partition — arena
        // order within a level, partitions ascending. Deterministic.
        let mut schedule = ExchangeSchedule {
            levels: vec![Vec::new(); num_levels],
        };
        for (l, ids) in by_level.iter().enumerate() {
            for &y in ids {
                let yi = y as usize;
                let src = pof[yi];
                let mut m = cross_mask[yi];
                while m != 0 {
                    let q = m.trailing_zeros() as usize;
                    m &= m - 1;
                    schedule.levels[l].push(ExchangeCopy {
                        src_part: src,
                        src_slot: slot_of[src as usize][yi],
                        dst_part: q as u32,
                        dst_slot: slot_of[q][yi],
                    });
                }
            }
        }

        // Emit the per-partition tapes.
        let mut parts_out: Vec<PartTape> = Vec::with_capacity(parts);
        for p in 0..parts {
            let acc = frame_slots[p] as u32;
            let slots = &slot_of[p];
            let mut tape = Vec::new();
            let mut cells = Vec::new();
            let mut seg_ends = Vec::with_capacity(num_levels);
            for ids in &by_level {
                for &y in ids {
                    let yi = y as usize;
                    if pof[yi] != p as u32 {
                        continue;
                    }
                    let node = netlist.node(NodeId::new(y));
                    let fan = node.fanins();
                    let (a, b) = match fan.len() {
                        0 => (acc, acc),
                        1 => (slots[fan[0].index()], slots[fan[0].index()]),
                        _ => (slots[fan[0].index()], slots[fan[1].index()]),
                    };
                    tape.push(SliceInstr {
                        a,
                        b,
                        out: slots[yi],
                        k: node.op().anf_masks(),
                    });
                    cells.push(y);
                }
                seg_ends.push(tape.len() as u32);
            }
            let inputs = netlist
                .inputs()
                .iter()
                .enumerate()
                .filter(|(_, i)| slots[i.index()] != NONE)
                .map(|(pi, i)| (pi as u32, slots[i.index()]))
                .collect();
            let outputs = netlist
                .outputs()
                .iter()
                .enumerate()
                .filter(|(_, o)| pof[o.node.index()] == p as u32)
                .map(|(po, o)| (po as u32, slots[o.node.index()]))
                .collect();
            let imports = schedule
                .levels
                .iter()
                .map(|copies| {
                    copies
                        .iter()
                        .filter(|c| c.dst_part == p as u32)
                        .copied()
                        .collect()
                })
                .collect();
            parts_out.push(PartTape {
                tape,
                cells,
                seg_ends,
                inputs,
                outputs,
                imports,
                frame_slots: frame_slots[p],
                tile_cap: tile_cap_for(frame_slots[p], options.cache_budget),
            });
        }

        let stats = PartitionStats {
            partitions: parts,
            levels: num_levels,
            cut_nets,
            cut_copies: schedule.num_copies(),
            max_frame_slots: frame_slots.iter().copied().max().unwrap_or(0),
            total_frame_slots: frame_slots.iter().sum(),
            tape_len: parts_out.iter().map(|p| p.tape.len()).sum(),
        };
        Ok(PartitionedEngine {
            parts: parts_out,
            schedule,
            num_inputs: netlist.inputs().len(),
            num_outputs: netlist.outputs().len(),
            num_cells: n,
            cache_budget: options.cache_budget,
            simd: options.simd.resolve(),
            stats,
        })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Number of primary inputs the engine expects.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs the engine produces.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Cut sizes, per-partition frame footprints, copy counts
    /// ([`PartitionStats`]).
    pub fn partition_stats(&self) -> PartitionStats {
        self.stats
    }

    /// The compile-time exchange schedule.
    pub fn schedule(&self) -> &ExchangeSchedule {
        &self.schedule
    }

    /// The SIMD dispatch level the partition tapes execute with.
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// One frame per partition at `words_per_net` words
    /// (`64 × words_per_net` lanes) per block, each sized for its
    /// partition's live slots plus the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn frames_with_words(&self, words_per_net: usize) -> Vec<SliceFrame> {
        self.parts
            .iter()
            .map(|p| SliceFrame::with_width(p.frame_slots + 1, words_per_net))
            .collect()
    }

    /// Resizes `frames` to one correctly-shaped frame per partition at
    /// the width they already have (or `per` when empty), preserving
    /// allocations across batches.
    fn prepare_frames(&self, frames: &mut Vec<SliceFrame>, per: usize) {
        frames.resize_with(self.parts.len(), SliceFrame::default);
        for (frame, part) in frames.iter_mut().zip(&self.parts) {
            frame.set_width(per);
            frame.reshape(part.frame_slots + 1);
        }
    }

    /// Evaluates the whole batch — the partitioned counterpart of
    /// [`BitSliceEvaluator::evaluate_with`](crate::BitSliceEvaluator::evaluate_with),
    /// with identical semantics (partial final blocks zero-filled and
    /// tail-masked; `lanes` overrides the width for no-input netlists).
    /// `frames` is per-partition scratch, resized as needed; the block
    /// width is the frames' current width (64 lanes after a fresh
    /// `Vec::new()`).
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts.
    pub fn evaluate_with(
        &self,
        inputs: &[Lanes],
        lanes: usize,
        frames: &mut Vec<SliceFrame>,
    ) -> Result<Vec<Lanes>, NetlistError> {
        if inputs.len() != self.num_inputs {
            return Err(NetlistError::InputArity {
                expected: self.num_inputs,
                got: inputs.len(),
            });
        }
        for l in inputs {
            assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
        }
        Ok(self.eval_blocks(lanes, frames, &|i| inputs[i].words()))
    }

    /// [`PartitionedEngine::evaluate_with`] over a flat pre-packed
    /// input buffer (the [`Lanes::pack_rows_into`] layout): input `i`'s
    /// lane column occupies `packed[i * stride .. (i + 1) * stride]`
    /// with `stride = lanes.div_ceil(64)`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != num_inputs * lanes.div_ceil(64)`.
    pub fn evaluate_packed_with(
        &self,
        packed: &[u64],
        num_inputs: usize,
        lanes: usize,
        frames: &mut Vec<SliceFrame>,
    ) -> Result<Vec<Lanes>, NetlistError> {
        if num_inputs != self.num_inputs {
            return Err(NetlistError::InputArity {
                expected: self.num_inputs,
                got: num_inputs,
            });
        }
        let stride = lanes.div_ceil(64);
        assert_eq!(
            packed.len(),
            num_inputs * stride,
            "packed buffer does not hold {num_inputs} columns of {stride} words"
        );
        Ok(self.eval_blocks(lanes, frames, &|i| &packed[i * stride..(i + 1) * stride]))
    }

    /// Evaluates at 64 lanes per block with fresh frames — the
    /// convenience entry mirroring
    /// [`BitSliceEvaluator::evaluate`](crate::BitSliceEvaluator::evaluate).
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputArity`] on an input-count mismatch.
    pub fn evaluate(&self, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
        let lanes = inputs.first().map_or(0, Lanes::len);
        self.evaluate_with(inputs, lanes, &mut self.frames_with_words(1))
    }

    /// The shared block loop. Picks the threaded executor when there
    /// are multiple partitions, multiple cores, and enough work to
    /// amortize thread spawn; otherwise replays the same schedule
    /// sequentially. Both paths are bit-identical.
    fn eval_blocks(
        &self,
        lanes: usize,
        frames: &mut Vec<SliceFrame>,
        input_words: &InputWords<'_>,
    ) -> Vec<Lanes> {
        let per = frames.first().map_or(1, SliceFrame::words_per_net).max(1);
        self.prepare_frames(frames, per);
        let total_words = lanes.div_ceil(64);
        let blocks = lanes.div_ceil(64 * per);
        let mut out = vec![0u64; self.num_outputs * total_words];
        if blocks > 0 {
            // Thread spawn costs ~10s of µs per worker; only go wide
            // when the per-batch kernel work clearly dominates that.
            let work = self.stats.tape_len * per * blocks;
            let wide = self.parts.len() > 1
                && match exec_mode() {
                    ExecMode::Sequential => false,
                    ExecMode::Parallel => true,
                    ExecMode::Auto => available_workers() > 1 && work >= 1 << 16,
                };
            if wide {
                self.run_batch_parallel(frames, per, total_words, blocks, &mut out, input_words);
            } else {
                self.run_batch_sequential(frames, per, total_words, blocks, &mut out, input_words);
            }
        }
        (0..self.num_outputs)
            .map(|po| {
                Lanes::from_words(
                    out[po * total_words..(po + 1) * total_words].to_vec(),
                    lanes,
                )
            })
            .collect()
    }

    /// Loads one block's input spans into `frame` (zero-filling the
    /// words past `avail`) for one partition.
    fn load_inputs(
        part: &PartTape,
        frame: &mut SliceFrame,
        per: usize,
        base: usize,
        avail: usize,
        input_words: &InputWords<'_>,
    ) {
        for &(pi, slot) in &part.inputs {
            let span = slot as usize * per;
            let in_words = &input_words(pi as usize)[base..base + avail];
            frame.words[span..span + avail].copy_from_slice(in_words);
            frame.words[span + avail..span + per].fill(0);
        }
    }

    /// Reference executor: the exact schedule the threaded path runs,
    /// replayed on the calling thread.
    fn run_batch_sequential(
        &self,
        frames: &mut [SliceFrame],
        per: usize,
        total_words: usize,
        blocks: usize,
        out: &mut [u64],
        input_words: &InputWords<'_>,
    ) {
        for block in 0..blocks {
            let base = block * per;
            let avail = (total_words - base).min(per);
            for (part, frame) in self.parts.iter().zip(frames.iter_mut()) {
                Self::load_inputs(part, frame, per, base, avail, input_words);
            }
            let mut seg_starts = vec![0usize; self.parts.len()];
            for (l, copies) in self.schedule.levels.iter().enumerate() {
                for (p, (part, frame)) in self.parts.iter().zip(frames.iter_mut()).enumerate() {
                    let end = part.seg_ends[l] as usize;
                    replay_tape(
                        &part.tape[seg_starts[p]..end],
                        self.simd,
                        part.tile_cap,
                        &mut frame.words,
                        per,
                    );
                    seg_starts[p] = end;
                }
                for c in copies {
                    // Copies never alias (distinct destination slots,
                    // sources disjoint from destinations by the
                    // import-alloc-before-export-release rule), so a
                    // word-level move per copy is exact.
                    for w in 0..per {
                        let v = frames[c.src_part as usize].words[c.src_slot as usize * per + w];
                        frames[c.dst_part as usize].words[c.dst_slot as usize * per + w] = v;
                    }
                }
            }
            for (part, frame) in self.parts.iter().zip(frames.iter()) {
                for &(po, slot) in &part.outputs {
                    let span = slot as usize * per;
                    out[po as usize * total_words + base..po as usize * total_words + base + avail]
                        .copy_from_slice(&frame.words[span..span + avail]);
                }
            }
        }
    }

    /// Threaded executor: one worker per partition, `std::sync::Barrier`
    /// either side of every non-empty exchange. Outside the exchange
    /// window a worker only touches its own frame; inside it, it writes
    /// only its own import slots and reads only foreign export slots —
    /// all pairwise disjoint by construction — so the raw-pointer
    /// traffic below is race-free.
    fn run_batch_parallel(
        &self,
        frames: &mut [SliceFrame],
        per: usize,
        total_words: usize,
        blocks: usize,
        out: &mut [u64],
        input_words: &InputWords<'_>,
    ) {
        /// A raw frame-buffer pointer shareable across the scoped
        /// workers. Safety rests on the phase protocol documented on
        /// [`PartitionedEngine::run_batch_parallel`].
        #[derive(Clone, Copy)]
        struct Raw(*mut u64, usize);
        unsafe impl Send for Raw {}
        unsafe impl Sync for Raw {}

        let bases: Vec<Raw> = frames
            .iter_mut()
            .map(|f| Raw(f.words.as_mut_ptr(), f.words.len()))
            .collect();
        let out_base = Raw(out.as_mut_ptr(), out.len());
        let barrier = std::sync::Barrier::new(self.parts.len());
        let worker = |p: usize| {
            // Capture the whole `Raw` (not its `*mut` field, which the
            // compiler's disjoint capture would otherwise pick and
            // which is not `Sync`) — the rebinding is load-bearing.
            #[allow(clippy::redundant_locals)]
            let out_base = out_base;
            let part = &self.parts[p];
            let Raw(base, len) = bases[p];
            for block in 0..blocks {
                let wbase = block * per;
                let avail = (total_words - wbase).min(per);
                {
                    // SAFETY: outside the exchange window below, worker
                    // `p` is the only thread touching frame `p`.
                    let words = unsafe { std::slice::from_raw_parts_mut(base, len) };
                    for &(pi, slot) in &part.inputs {
                        let span = slot as usize * per;
                        let in_words = &input_words(pi as usize)[wbase..wbase + avail];
                        words[span..span + avail].copy_from_slice(in_words);
                        words[span + avail..span + per].fill(0);
                    }
                }
                let mut seg_start = 0usize;
                for l in 0..self.schedule.levels.len() {
                    let end = part.seg_ends[l] as usize;
                    {
                        // SAFETY: compute phase — own frame only.
                        let words = unsafe { std::slice::from_raw_parts_mut(base, len) };
                        replay_tape(
                            &part.tape[seg_start..end],
                            self.simd,
                            part.tile_cap,
                            words,
                            per,
                        );
                    }
                    seg_start = end;
                    // Every worker sees the same schedule, so all of
                    // them agree on which levels rendezvous.
                    if !self.schedule.levels[l].is_empty() {
                        barrier.wait();
                        for c in &part.imports[l] {
                            let Raw(src, src_len) = bases[c.src_part as usize];
                            let s = c.src_slot as usize * per;
                            let d = c.dst_slot as usize * per;
                            debug_assert!(s + per <= src_len && d + per <= len);
                            // SAFETY: exchange phase — this worker
                            // writes only its own import slots; the
                            // source worker neither writes nor reads
                            // its exported span until the closing
                            // barrier; import and export slot sets are
                            // disjoint within every frame.
                            unsafe {
                                std::ptr::copy_nonoverlapping(src.add(s), base.add(d), per);
                            }
                        }
                        barrier.wait();
                    }
                }
                {
                    // SAFETY: own frame read, plus writes to this
                    // partition's own outputs' rows of the shared out
                    // buffer — output ownership is a partition of the
                    // output set, so rows never overlap across workers.
                    let words = unsafe { std::slice::from_raw_parts(base, len) };
                    for &(po, slot) in &part.outputs {
                        let span = slot as usize * per;
                        let dst = po as usize * total_words + wbase;
                        debug_assert!(dst + avail <= out_base.1);
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                words[span..].as_ptr(),
                                out_base.0.add(dst),
                                avail,
                            );
                        }
                    }
                }
            }
        };
        std::thread::scope(|s| {
            for p in 1..self.parts.len() {
                s.spawn(move || worker(p));
            }
            worker(0);
        });
    }

    /// A copy of this engine with the ANF masks of every patched cell
    /// replaced in whichever partition tape holds it — structure
    /// (assignment, slots, schedule) untouched, bit-identical to a
    /// fresh compile of the patched netlist (the same invariant as
    /// [`BitSliceEvaluator::patched`](crate::BitSliceEvaluator::patched)).
    ///
    /// # Errors
    ///
    /// [`NetlistError::InvalidNode`] if a patched id has no instruction
    /// in any partition — out of range, or a primary input.
    pub fn patched(&self, patches: &PatchSet) -> Result<PartitionedEngine, NetlistError> {
        let mut index = vec![(NONE, NONE); self.num_cells];
        for (p, part) in self.parts.iter().enumerate() {
            for (pos, &cell) in part.cells.iter().enumerate() {
                index[cell as usize] = (p as u32, pos as u32);
            }
        }
        let mut out = self.clone();
        for (id, op) in patches.iter() {
            let (p, pos) = match index.get(id.index()) {
                Some(&(p, pos)) if p != NONE => (p as usize, pos as usize),
                _ => return Err(NetlistError::InvalidNode { id }),
            };
            out.parts[p].tape[pos].k = op.anf_masks();
        }
        Ok(out)
    }

    /// Model-based checker for the exchange schedule, independent of
    /// the scheduler's own bookkeeping: replays every partition tape
    /// and exchange copy **symbolically** (slots hold netlist node ids,
    /// not words) and verifies that
    ///
    /// * every instruction reads exactly its fanins' values — which
    ///   fails if a cross-partition net was not transferred before its
    ///   first use, or if a live slot was overwritten (the stale reader
    ///   sees the wrong symbol),
    /// * every copy reads a defined value,
    /// * every primary output's slot still holds its node's value after
    ///   the last level,
    /// * the tapes cover every executable node exactly once, in level
    ///   order.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), String> {
        let n = netlist.len();
        if n != self.num_cells {
            return Err(format!(
                "engine compiled from {} cells, netlist has {n}",
                self.num_cells
            ));
        }
        let level = node_levels(netlist);
        let mut seen = vec![false; n];
        let mut frames: Vec<Vec<Option<u32>>> = self
            .parts
            .iter()
            .map(|p| vec![None; p.frame_slots + 1])
            .collect();
        for (p, part) in self.parts.iter().enumerate() {
            if part.seg_ends.len() != self.schedule.levels.len() {
                return Err(format!(
                    "partition {p} has {} level segments but the schedule has {}",
                    part.seg_ends.len(),
                    self.schedule.levels.len()
                ));
            }
            for &(pi, slot) in &part.inputs {
                let node = *netlist
                    .inputs()
                    .get(pi as usize)
                    .ok_or(format!("partition {p} loads unknown input {pi}"))?;
                *frames[p]
                    .get_mut(slot as usize)
                    .ok_or(format!("partition {p} input slot {slot} out of range"))? =
                    Some(node.index() as u32);
            }
        }
        let mut seg_starts = vec![0usize; self.parts.len()];
        for (l, copies) in self.schedule.levels.iter().enumerate() {
            for (p, part) in self.parts.iter().enumerate() {
                let end = part.seg_ends[l] as usize;
                if end < seg_starts[p] || end > part.tape.len() {
                    return Err(format!("partition {p} segment ends not monotone"));
                }
                for pos in seg_starts[p]..end {
                    let instr = &part.tape[pos];
                    let y = part.cells[pos] as usize;
                    if y >= n || netlist.node(NodeId::new(y as u32)).op() == Op::Input {
                        return Err(format!("partition {p} instruction {pos} has no cell"));
                    }
                    if std::mem::replace(&mut seen[y], true) {
                        return Err(format!("cell {y} computed twice"));
                    }
                    if level[y] as usize != l {
                        return Err(format!("cell {y} scheduled at level {l}"));
                    }
                    let fan = netlist.node(NodeId::new(y as u32)).fanins();
                    let ops = match fan.len() {
                        0 => vec![],
                        1 => vec![(instr.a, fan[0])],
                        _ => vec![(instr.a, fan[0]), (instr.b, fan[1])],
                    };
                    for (slot, f) in ops {
                        let got = *frames[p]
                            .get(slot as usize)
                            .ok_or(format!("partition {p} slot {slot} out of range"))?;
                        if got != Some(f.index() as u32) {
                            return Err(format!(
                                "cell {y} in partition {p} reads slot {slot} expecting cell {}, \
                                 found {got:?} — transferred too late or overwritten while live",
                                f.index()
                            ));
                        }
                    }
                    let out = *part
                        .tape
                        .get(pos)
                        .map(|i| &i.out)
                        .ok_or("tape bounds".to_string())?;
                    *frames[p]
                        .get_mut(out as usize)
                        .ok_or(format!("partition {p} out slot {out} out of range"))? =
                        Some(y as u32);
                }
                seg_starts[p] = end;
            }
            for c in copies {
                let v = *frames
                    .get(c.src_part as usize)
                    .and_then(|f| f.get(c.src_slot as usize))
                    .ok_or("copy source out of range".to_string())?;
                let Some(v) = v else {
                    return Err(format!(
                        "level-{l} copy from partition {} slot {} reads an undefined value",
                        c.src_part, c.src_slot
                    ));
                };
                *frames
                    .get_mut(c.dst_part as usize)
                    .and_then(|f| f.get_mut(c.dst_slot as usize))
                    .ok_or("copy destination out of range".to_string())? = Some(v);
            }
        }
        for (id, node) in netlist.iter() {
            if node.op() != Op::Input && !seen[id.index()] {
                return Err(format!("cell {} never computed", id.index()));
            }
        }
        for (po, o) in netlist.outputs().iter().enumerate() {
            let owner = self
                .parts
                .iter()
                .enumerate()
                .find_map(|(p, part)| {
                    part.outputs
                        .iter()
                        .find(|&&(idx, _)| idx as usize == po)
                        .map(|&(_, slot)| (p, slot))
                })
                .ok_or(format!("output {po} owned by no partition"))?;
            let got = frames[owner.0][owner.1 as usize];
            if got != Some(o.node.index() as u32) {
                return Err(format!(
                    "output {po} slot holds {got:?}, expected cell {} — overwritten while live",
                    o.node.index()
                ));
            }
        }
        Ok(())
    }

    /// Serializes the engine (tapes, slot maps, exchange schedule) into
    /// `w` — the v4 artifact payload section. Execution-environment
    /// choices (SIMD level, cache budget) are **not** stored; the
    /// reader re-resolves them for its host.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_u32(self.parts.len() as u32);
        w.put_u32(self.num_inputs as u32);
        w.put_u32(self.num_outputs as u32);
        w.put_u32(self.num_cells as u32);
        w.put_u32(self.schedule.levels.len() as u32);
        for part in &self.parts {
            w.put_u32(part.tape.len() as u32);
            for i in &part.tape {
                w.put_u32(i.a);
                w.put_u32(i.b);
                w.put_u32(i.out);
                for k in i.k {
                    w.put_u64(k);
                }
            }
            for &c in &part.cells {
                w.put_u32(c);
            }
            for &e in &part.seg_ends {
                w.put_u32(e);
            }
            w.put_u32(part.inputs.len() as u32);
            for &(pi, slot) in &part.inputs {
                w.put_u32(pi);
                w.put_u32(slot);
            }
            w.put_u32(part.outputs.len() as u32);
            for &(po, slot) in &part.outputs {
                w.put_u32(po);
                w.put_u32(slot);
            }
            w.put_u64(part.frame_slots as u64);
        }
        for copies in &self.schedule.levels {
            w.put_u32(copies.len() as u32);
            for c in copies {
                w.put_u32(c.src_part);
                w.put_u32(c.src_slot);
                w.put_u32(c.dst_part);
                w.put_u32(c.dst_slot);
            }
        }
    }

    /// Reads a [`PartitionedEngine::write`] image back, re-resolving
    /// SIMD and cache budget for this host via
    /// [`TapeOptions::from_env`]. Every structural invariant the
    /// executors rely on (slot bounds, monotone segments, partition
    /// indices, output coverage) is re-checked, so a corrupt image
    /// comes back as a typed error, never a panic or out-of-bounds
    /// replay.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] for truncated or structurally
    /// inconsistent images.
    pub fn read(r: &mut ByteReader<'_>) -> Result<PartitionedEngine, NetlistError> {
        let parts_count = r.get_count("partition", 16)?;
        if parts_count == 0 || parts_count > MAX_PARTITIONS {
            return Err(malformed(format!(
                "image declares {parts_count} partitions, outside the supported 1..={MAX_PARTITIONS}"
            )));
        }
        let num_inputs = r.get_u32()? as usize;
        let num_outputs = r.get_u32()? as usize;
        let num_cells = r.get_u32()? as usize;
        let levels = r.get_count("exchange level", 4)?;
        let options = TapeOptions::from_env();
        let mut parts = Vec::with_capacity(parts_count);
        for p in 0..parts_count {
            let tape_len = r.get_count("instruction", 44)?;
            let mut tape = Vec::with_capacity(tape_len);
            for _ in 0..tape_len {
                let a = r.get_u32()?;
                let b = r.get_u32()?;
                let out = r.get_u32()?;
                let mut k = [0u64; 4];
                for k_i in &mut k {
                    *k_i = r.get_u64()?;
                }
                tape.push(SliceInstr { a, b, out, k });
            }
            let mut cells = Vec::with_capacity(tape_len);
            for _ in 0..tape_len {
                let c = r.get_u32()?;
                if c as usize >= num_cells {
                    return Err(malformed(format!(
                        "partition {p} instruction bound to cell {c} of a {num_cells}-cell netlist"
                    )));
                }
                cells.push(c);
            }
            let mut seg_ends = Vec::with_capacity(levels);
            let mut prev = 0u32;
            for _ in 0..levels {
                let e = r.get_u32()?;
                if e < prev || e as usize > tape_len {
                    return Err(malformed(format!(
                        "partition {p} level segments are not monotone"
                    )));
                }
                prev = e;
                seg_ends.push(e);
            }
            if levels > 0 && prev as usize != tape_len {
                return Err(malformed(format!(
                    "partition {p} segments cover {prev} of {tape_len} instructions"
                )));
            }
            if levels == 0 && tape_len != 0 {
                return Err(malformed(format!(
                    "partition {p} has instructions but no level segments"
                )));
            }
            let in_count = r.get_count("partition input", 8)?;
            let mut inputs = Vec::with_capacity(in_count);
            for _ in 0..in_count {
                let pi = r.get_u32()?;
                let slot = r.get_u32()?;
                if pi as usize >= num_inputs {
                    return Err(malformed(format!(
                        "partition {p} loads unknown primary input {pi}"
                    )));
                }
                inputs.push((pi, slot));
            }
            let out_count = r.get_count("partition output", 8)?;
            let mut outputs = Vec::with_capacity(out_count);
            for _ in 0..out_count {
                let po = r.get_u32()?;
                let slot = r.get_u32()?;
                if po as usize >= num_outputs {
                    return Err(malformed(format!(
                        "partition {p} owns unknown primary output {po}"
                    )));
                }
                outputs.push((po, slot));
            }
            let frame_slots = r.get_u64()? as usize;
            // Slot bounds are what keep the replay kernels in bounds —
            // reject anything past the accumulator slot.
            let bound = frame_slots as u64 + 1;
            let ok = tape
                .iter()
                .all(|i| (i.a as u64) < bound && (i.b as u64) < bound && (i.out as u64) < bound)
                && inputs.iter().all(|&(_, s)| (s as u64) < bound)
                && outputs.iter().all(|&(_, s)| (s as u64) < bound);
            if !ok {
                return Err(malformed(format!(
                    "partition {p} references slots past its {frame_slots}-slot frame"
                )));
            }
            parts.push(PartTape {
                tape,
                cells,
                seg_ends,
                inputs,
                outputs,
                imports: Vec::new(),
                frame_slots,
                tile_cap: tile_cap_for(frame_slots, options.cache_budget),
            });
        }
        let mut schedule = ExchangeSchedule {
            levels: Vec::with_capacity(levels),
        };
        let mut cut_copies = 0usize;
        for l in 0..levels {
            let count = r.get_count("exchange copy", 16)?;
            let mut copies = Vec::with_capacity(count);
            for _ in 0..count {
                let c = ExchangeCopy {
                    src_part: r.get_u32()?,
                    src_slot: r.get_u32()?,
                    dst_part: r.get_u32()?,
                    dst_slot: r.get_u32()?,
                };
                let src_ok = (c.src_part as usize) < parts_count
                    && (c.src_slot as usize) <= parts[c.src_part as usize].frame_slots;
                let dst_ok = (c.dst_part as usize) < parts_count
                    && (c.dst_slot as usize) <= parts[c.dst_part as usize].frame_slots;
                if !src_ok || !dst_ok {
                    return Err(malformed(format!(
                        "level-{l} exchange copy references a partition or slot out of range"
                    )));
                }
                copies.push(c);
            }
            cut_copies += copies.len();
            schedule.levels.push(copies);
        }
        // Every primary output must be owned exactly once, or
        // evaluation would silently publish zeros.
        let mut owned = vec![false; num_outputs];
        for part in &parts {
            for &(po, _) in &part.outputs {
                if std::mem::replace(&mut owned[po as usize], true) {
                    return Err(malformed(format!("primary output {po} owned twice")));
                }
            }
        }
        if let Some(po) = owned.iter().position(|&o| !o) {
            return Err(malformed(format!(
                "primary output {po} owned by no partition"
            )));
        }
        // (Re)derive the per-partition import lists from the schedule.
        for (p, part) in parts.iter_mut().enumerate() {
            part.imports = schedule
                .levels
                .iter()
                .map(|copies| {
                    copies
                        .iter()
                        .filter(|c| c.dst_part as usize == p)
                        .copied()
                        .collect()
                })
                .collect();
        }
        // Distinct cut nets are not recoverable from the wire image
        // (copies do not carry node ids); count distinct (src_part,
        // src_slot, level) triples instead — equal for every schedule
        // this crate emits, where a net is exported at exactly one
        // level from exactly one slot.
        let mut cut_nets = 0usize;
        for copies in &schedule.levels {
            let mut seen: Vec<(u32, u32)> = Vec::new();
            for c in copies {
                if !seen.contains(&(c.src_part, c.src_slot)) {
                    seen.push((c.src_part, c.src_slot));
                    cut_nets += 1;
                }
            }
        }
        let stats = PartitionStats {
            partitions: parts_count,
            levels,
            cut_nets,
            cut_copies,
            max_frame_slots: parts.iter().map(|p| p.frame_slots).max().unwrap_or(0),
            total_frame_slots: parts.iter().map(|p| p.frame_slots).sum(),
            tape_len: parts.iter().map(|p| p.tape.len()).sum(),
        };
        Ok(PartitionedEngine {
            parts,
            schedule,
            num_inputs,
            num_outputs,
            num_cells,
            cache_budget: options.cache_budget,
            simd: options.simd.resolve(),
            stats,
        })
    }
}

/// Cached `available_parallelism` — queried once per process; the
/// executor checks it on every batch.
fn available_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Which executor [`PartitionedEngine`] uses for a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecMode {
    /// Threads when cores and batch size warrant it (the default).
    Auto,
    /// Always the sequential reference executor.
    Sequential,
    /// Always the threaded executor (both are bit-identical; this
    /// exists so benchmarks and differential tests can pin a path).
    Parallel,
}

/// `LBNN_PARTITION_EXEC` = `auto` | `seq` | `par`, read once per
/// process.
fn exec_mode() -> ExecMode {
    static MODE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("LBNN_PARTITION_EXEC").as_deref() {
        Ok("seq") | Ok("sequential") => ExecMode::Sequential,
        Ok("par") | Ok("parallel") => ExecMode::Parallel,
        _ => ExecMode::Auto,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::random::RandomDag;

    fn test_inputs(nl: &Netlist, lanes: usize, seed: u64) -> Vec<Lanes> {
        (0..nl.inputs().len())
            .map(|i| {
                let bits: Vec<bool> = (0..lanes)
                    .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                    .collect();
                Lanes::from_bools(&bits)
            })
            .collect()
    }

    /// The partitioned engine is bit-identical to the word-parallel
    /// oracle at every partition count × frame width, ragged tails and
    /// empty batches included.
    #[test]
    fn partitioned_matches_oracle_across_counts_and_widths() {
        for seed in 0..3 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            for parts in [1usize, 2, 3, 8] {
                let engine = PartitionedEngine::compile(&nl, parts).unwrap();
                for words in [1usize, 4, 16] {
                    let mut frames = engine.frames_with_words(words);
                    for lanes in [0usize, 1, 63, 64 * words, 64 * words + 1, 517] {
                        let inputs = test_inputs(&nl, lanes, seed);
                        let want = evaluate(&nl, &inputs).unwrap();
                        let got = engine.evaluate_with(&inputs, lanes, &mut frames).unwrap();
                        assert_eq!(
                            got, want,
                            "seed {seed} parts {parts} words {words} lanes {lanes}"
                        );
                    }
                }
            }
        }
    }

    /// Sequential and threaded executors produce the same bits — the
    /// threaded path is forced explicitly, so this holds even on a
    /// single-core host where `Auto` would never go wide.
    #[test]
    fn parallel_executor_matches_sequential() {
        let nl = RandomDag::loose(9, 6, 10).outputs(4).generate(11);
        let engine = PartitionedEngine::compile(&nl, 3).unwrap();
        let per = 4usize;
        for lanes in [1usize, 64 * per, 64 * per * 3 + 17] {
            let inputs = test_inputs(&nl, lanes, 11);
            let total_words = lanes.div_ceil(64);
            let blocks = lanes.div_ceil(64 * per);
            let input_words = |i: usize| inputs[i].words();
            let mut frames = engine.frames_with_words(per);
            let mut seq = vec![0u64; engine.num_outputs * total_words];
            engine.run_batch_sequential(
                &mut frames,
                per,
                total_words,
                blocks,
                &mut seq,
                &input_words,
            );
            let mut frames = engine.frames_with_words(per);
            let mut par = vec![0u64; engine.num_outputs * total_words];
            engine.run_batch_parallel(
                &mut frames,
                per,
                total_words,
                blocks,
                &mut par,
                &input_words,
            );
            assert_eq!(seq, par, "lanes {lanes}");
        }
    }

    /// The symbolic model checker accepts every schedule this compiler
    /// emits — contiguous and adversarial assignments, slot reuse on
    /// and off — and compilation is deterministic.
    #[test]
    fn schedules_validate_and_compile_deterministically() {
        for seed in 0..4 {
            let nl = RandomDag::loose(6, 5, 9).outputs(3).generate(seed + 20);
            for parts in [1usize, 2, 3, 8] {
                let a = PartitionedEngine::compile(&nl, parts).unwrap();
                a.validate(&nl).unwrap();
                let b = PartitionedEngine::compile(&nl, parts).unwrap();
                assert_eq!(a, b, "seed {seed} parts {parts} not deterministic");
            }
            // Adversarial assignment: a deterministic pseudo-random map.
            let parts = 4usize;
            let mut x = 0x9e3779b97f4a7c15u64 ^ seed;
            let of: Vec<u32> = (0..nl.len())
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % parts as u64) as u32
                })
                .collect();
            let assignment = PartitionAssignment::from_map(parts, of).unwrap();
            for reuse in [true, false] {
                let options = TapeOptions {
                    reuse,
                    ..TapeOptions::default()
                };
                let engine = PartitionedEngine::compile_with(&nl, &assignment, options).unwrap();
                engine.validate(&nl).unwrap();
                let inputs = test_inputs(&nl, 130, seed);
                let want = evaluate(&nl, &inputs).unwrap();
                let got = engine.evaluate(&inputs).unwrap();
                assert_eq!(got, want, "adversarial seed {seed} reuse {reuse}");
            }
        }
    }

    /// Patching a partitioned engine equals a fresh compile of the
    /// patched netlist — exactly, not just observationally, because
    /// partitioning is purely structural.
    #[test]
    fn patched_equals_fresh_compile_of_patched_netlist() {
        let nl = RandomDag::loose(6, 4, 8).outputs(3).generate(7);
        let mut patches = PatchSet::new();
        for (id, node) in nl.iter() {
            if let Some(neg) = node.op().negated() {
                patches.set(id, neg);
                if patches.len() == 3 {
                    break;
                }
            }
        }
        assert!(!patches.is_empty());
        let mut patched_nl = nl.clone();
        patched_nl.apply_patches(&patches).unwrap();
        for parts in [2usize, 5] {
            let engine = PartitionedEngine::compile(&nl, parts).unwrap();
            let fresh = PartitionedEngine::compile(&patched_nl, parts).unwrap();
            assert_eq!(engine.patched(&patches).unwrap(), fresh);
        }
        // Unknown cells are typed errors.
        let mut bad = PatchSet::new();
        bad.set(NodeId::new(nl.len() as u32), Op::And);
        assert!(matches!(
            PartitionedEngine::compile(&nl, 2).unwrap().patched(&bad),
            Err(NetlistError::InvalidNode { .. })
        ));
    }

    /// The wire image round-trips to an equal engine, and corrupt
    /// images (any truncation, partition-count lies) come back as typed
    /// errors, never panics.
    #[test]
    fn serialization_roundtrip_and_corruption() {
        let nl = RandomDag::loose(7, 5, 9).outputs(3).generate(3);
        let engine = PartitionedEngine::compile(&nl, 3).unwrap();
        let mut w = ByteWriter::new();
        engine.write(&mut w);
        let bytes = w.into_bytes();
        let back = PartitionedEngine::read(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, engine);
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                PartitionedEngine::read(&mut ByteReader::new(&bytes[..cut])).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // A partition count outside 1..=MAX_PARTITIONS is rejected up
        // front.
        let mut lied = bytes.clone();
        lied[..4].copy_from_slice(&65u32.to_le_bytes());
        assert!(matches!(
            PartitionedEngine::read(&mut ByteReader::new(&lied)),
            Err(NetlistError::Malformed { .. })
        ));
        lied[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            PartitionedEngine::read(&mut ByteReader::new(&lied)),
            Err(NetlistError::Malformed { .. })
        ));
    }

    /// Invalid partition counts and malformed assignments are typed
    /// errors at the compile boundary.
    #[test]
    fn invalid_partitioning_is_rejected() {
        let nl = RandomDag::strict(4, 3, 5).outputs(2).generate(1);
        assert!(matches!(
            PartitionedEngine::compile(&nl, 0),
            Err(NetlistError::Malformed { .. })
        ));
        assert!(matches!(
            PartitionedEngine::compile(&nl, MAX_PARTITIONS + 1),
            Err(NetlistError::Malformed { .. })
        ));
        assert!(matches!(
            PartitionAssignment::from_map(2, vec![0, 1, 2]),
            Err(NetlistError::Malformed { .. })
        ));
        // Assignment sized for a different netlist.
        let short = PartitionAssignment::from_map(2, vec![0; 1]).unwrap();
        assert!(matches!(
            PartitionedEngine::compile_with(&nl, &short, TapeOptions::default()),
            Err(NetlistError::Malformed { .. })
        ));
        assert!(matches!(
            engine_arity_err(&nl),
            Err(NetlistError::InputArity { .. })
        ));
    }

    fn engine_arity_err(nl: &Netlist) -> Result<Vec<Lanes>, NetlistError> {
        PartitionedEngine::compile(nl, 2)?.evaluate(&[])
    }

    /// Inputs that double as primary outputs and multi-consumer cross
    /// nets route correctly, and the cut stats add up.
    #[test]
    fn stats_and_passthrough_outputs() {
        let mut nl = Netlist::new("pass");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate2(Op::Xor, a, b);
        nl.add_output(a, "a_thru");
        nl.add_output(y, "y");
        let engine = PartitionedEngine::compile(&nl, 2).unwrap();
        engine.validate(&nl).unwrap();
        let inputs = [
            Lanes::from_bools(&[true, false, true]),
            Lanes::from_bools(&[true, true, false]),
        ];
        assert_eq!(
            engine.evaluate(&inputs).unwrap(),
            evaluate(&nl, &inputs).unwrap()
        );
        let stats = engine.partition_stats();
        assert_eq!(stats.partitions, 2);
        assert_eq!(stats.tape_len, 1);
        assert_eq!(stats.cut_copies, engine.schedule().num_copies());
        assert_eq!(stats.exchange_words(4), stats.cut_copies * 4);
    }
}
