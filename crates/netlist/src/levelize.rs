//! Depth levelization of a netlist (§III of the paper).
//!
//! A gate at logic level `l` has no connection to any other gate at level
//! `l`, so all gates of one level can execute simultaneously. Levelization
//! assigns every node its ASAP level: primary inputs and constants sit at
//! level 0, every gate at `1 + max(level of fanins)`.

use crate::cell::Op;
use crate::netlist::{Netlist, NodeId};

/// The level assignment of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    level: Vec<u32>,
    max: u32,
}

impl Levels {
    /// Computes ASAP levels for the netlist.
    pub fn compute(netlist: &Netlist) -> Levels {
        let mut level = vec![0u32; netlist.len()];
        let mut max = 0;
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input || node.op().arity() == 0 {
                level[id.index()] = 0;
                continue;
            }
            let l = 1 + node
                .fanins()
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0);
            level[id.index()] = l;
            max = max.max(l);
        }
        Levels { level, max }
    }

    /// The level of a node.
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum level in the netlist (`Lmax`); primary inputs are level 0.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max
    }

    /// The logic depth of the netlist: number of gate levels (`Lmax`).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.max
    }

    /// Number of *gate* nodes at each level (level 0 counts constants but
    /// not primary inputs). Index `l` holds the node count of level `l`.
    pub fn width_profile(&self, netlist: &Netlist) -> Vec<usize> {
        let mut width = vec![0usize; self.max as usize + 1];
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            width[self.level[id.index()] as usize] += 1;
        }
        width
    }

    /// The maximum number of gates at any single level (the graph *width*
    /// in the paper's terminology).
    pub fn max_width(&self, netlist: &Netlist) -> usize {
        self.width_profile(netlist).into_iter().max().unwrap_or(0)
    }

    /// Groups gate node ids by level: entry `l` lists the gates at level `l`
    /// in topological order. Primary inputs are omitted.
    pub fn nodes_by_level(&self, netlist: &Netlist) -> Vec<Vec<NodeId>> {
        let mut by_level = vec![Vec::new(); self.max as usize + 1];
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            by_level[self.level[id.index()] as usize].push(id);
        }
        by_level
    }

    /// `true` when every edge spans exactly one level and every primary
    /// output sits at `Lmax` — i.e. the netlist is *fully path balanced*.
    pub fn is_fully_balanced(&self, netlist: &Netlist) -> bool {
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            let l = self.level[id.index()];
            for &f in node.fanins() {
                if self.level[f.index()] + 1 != l {
                    return false;
                }
            }
        }
        netlist
            .outputs()
            .iter()
            .all(|o| self.level[o.node.index()] == self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Op;

    fn chain(depth: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut cur = nl.add_gate2(Op::And, a, b);
        for _ in 1..depth {
            cur = nl.add_gate2(Op::Xor, cur, b);
        }
        nl.add_output(cur, "y");
        nl
    }

    #[test]
    fn chain_depth() {
        for d in 1..6 {
            let nl = chain(d);
            let lv = Levels::compute(&nl);
            assert_eq!(lv.depth(), d as u32);
            assert_eq!(lv.max_width(&nl), 1);
        }
    }

    #[test]
    fn unbalanced_edge_detected() {
        // y = (a & b) & c has an edge c(level 0) -> gate(level 2).
        let mut nl = Netlist::new("unbal");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate2(Op::And, a, b);
        let y = nl.add_gate2(Op::And, ab, c);
        nl.add_output(y, "y");
        let lv = Levels::compute(&nl);
        assert_eq!(lv.level(y), 2);
        assert!(!lv.is_fully_balanced(&nl));
    }

    #[test]
    fn width_profile_counts_gates_per_level() {
        // Two independent AND gates at level 1, one OR at level 2.
        let mut nl = Netlist::new("w");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let g0 = nl.add_gate2(Op::And, a, b);
        let g1 = nl.add_gate2(Op::And, c, d);
        let y = nl.add_gate2(Op::Or, g0, g1);
        nl.add_output(y, "y");
        let lv = Levels::compute(&nl);
        assert_eq!(lv.width_profile(&nl), vec![0, 2, 1]);
        assert_eq!(lv.max_width(&nl), 2);
        let by = lv.nodes_by_level(&nl);
        assert_eq!(by[1], vec![g0, g1]);
        assert_eq!(by[2], vec![y]);
    }

    #[test]
    fn inputs_are_level_zero() {
        let nl = chain(3);
        let lv = Levels::compute(&nl);
        for &pi in nl.inputs() {
            assert_eq!(lv.level(pi), 0);
        }
    }
}
