//! Bit-parallel functional evaluation of a netlist.
//!
//! The LPU processes `2m`-bit operands: each bit is an independent Boolean
//! sample (a patch of a feature volume, or one image of a batch). [`Lanes`]
//! models exactly that — a vector of Boolean lanes packed into `u64` words —
//! and [`evaluate`] runs the whole netlist across all lanes at once. This is
//! the golden reference the cycle-accurate LPU simulator is tested against.

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// A packed vector of Boolean lanes (the value of one signal across a batch).
///
/// # Example
///
/// ```
/// use lbnn_netlist::Lanes;
/// let mut l = Lanes::zeros(100);
/// l.set(3, true);
/// assert!(l.get(3));
/// assert_eq!(l.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lanes {
    words: Vec<u64>,
    len: usize,
}

impl Lanes {
    /// Creates `len` lanes, all 0.
    pub fn zeros(len: usize) -> Self {
        Lanes {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates `len` lanes, all 1.
    pub fn ones(len: usize) -> Self {
        let mut l = Lanes {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        l.mask_tail();
        l
    }

    /// Packs a slice of booleans into lanes.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut l = Lanes::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                l.set(i, true);
            }
        }
        l
    }

    /// Creates lanes from raw words; bits past `len` are masked off.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut l = Lanes { words, len };
        l.mask_tail();
        l
    }

    /// Number of lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no lanes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        self.words[index / 64] >> (index % 64) & 1 != 0
    }

    /// Sets the lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// The packed words backing the lanes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of lanes set to 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unpacks the lanes into booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Applies a gate operation lane-wise: `self = op(a, b)`. Single-input
    /// operations ignore `b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand lane counts differ from `self`.
    pub fn assign_op(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        assert_eq!(a.len(), self.len, "operand lane count mismatch");
        if let Some(b) = b {
            assert_eq!(b.len(), self.len, "operand lane count mismatch");
        }
        self.assign_op_inner(op, a, b);
    }

    #[inline]
    fn assign_op_inner(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        let zero: &[u64] = &[];
        let bw = b.map_or(zero, |b| b.words.as_slice());
        for (i, w) in self.words.iter_mut().enumerate() {
            let wa = a.words[i];
            let wb = if bw.is_empty() { 0 } else { bw[i] };
            *w = op.eval_word(wa, wb);
        }
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Evaluates the netlist across all lanes simultaneously.
///
/// `inputs[i]` carries the batch values of primary input `i` (in
/// [`Netlist::inputs`] order); the result holds one [`Lanes`] per primary
/// output, in [`Netlist::outputs`] order.
///
/// # Errors
///
/// Returns [`NetlistError::InputArity`] if the number of input lane vectors
/// does not match the netlist's primary input count.
///
/// # Panics
///
/// Panics if the input lane vectors have inconsistent lane counts.
///
/// # Example
///
/// ```
/// use lbnn_netlist::{eval::evaluate, Lanes, Netlist, Op};
/// # fn main() -> Result<(), lbnn_netlist::NetlistError> {
/// let mut nl = Netlist::new("and");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::And, a, b);
/// nl.add_output(y, "y");
/// let out = evaluate(&nl, &[
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ])?;
/// assert_eq!(out[0].to_bools(), vec![true, false, false]);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(netlist: &Netlist, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
    if inputs.len() != netlist.inputs().len() {
        return Err(NetlistError::InputArity {
            expected: netlist.inputs().len(),
            got: inputs.len(),
        });
    }
    let lanes = inputs.first().map_or(0, Lanes::len);
    for l in inputs {
        assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
    }

    let mut values: Vec<Lanes> = vec![Lanes::zeros(lanes); netlist.len()];
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = inputs[i].clone();
    }
    for (id, node) in netlist.iter() {
        if node.op() == Op::Input {
            continue;
        }
        let mut v = Lanes::zeros(lanes);
        let fan = node.fanins();
        match fan.len() {
            0 => v.assign_op(node.op(), &Lanes::zeros(lanes), None),
            1 => v.assign_op(node.op(), &values[fan[0].index()], None),
            _ => v.assign_op(
                node.op(),
                &values[fan[0].index()],
                Some(&values[fan[1].index()]),
            ),
        }
        values[id.index()] = v;
    }
    Ok(netlist
        .outputs()
        .iter()
        .map(|o| values[o.node.index()].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Op;

    #[test]
    fn lanes_pack_unpack() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let lanes = Lanes::from_bools(&bits);
        assert_eq!(lanes.len(), 130);
        assert_eq!(lanes.to_bools(), bits);
        assert_eq!(lanes.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn ones_masks_tail() {
        let l = Lanes::ones(70);
        assert_eq!(l.count_ones(), 70);
        assert_eq!(l.words().len(), 2);
        assert_eq!(l.words()[1] >> 6, 0, "tail bits must stay clear");
    }

    #[test]
    fn evaluate_matches_scalar_eval() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_gate1(Op::Not, b);
        let t = nl.add_gate2(Op::Xnor, a, nb);
        let y = nl.add_gate2(Op::Nor, t, c);
        nl.add_output(y, "y");
        nl.add_output(t, "t");

        // All 8 combinations as 8 lanes.
        let mut ins = vec![Lanes::zeros(8), Lanes::zeros(8), Lanes::zeros(8)];
        for lane in 0..8 {
            for (bit, lanes) in ins.iter_mut().enumerate() {
                lanes.set(lane, lane & (1 << bit) != 0);
            }
        }
        let outs = evaluate(&nl, &ins).unwrap();
        for lane in 0..8 {
            let scalar = nl.eval_bools(&[lane & 1 != 0, lane & 2 != 0, lane & 4 != 0]);
            assert_eq!(outs[0].get(lane), scalar[0], "lane {lane}");
            assert_eq!(outs[1].get(lane), scalar[1], "lane {lane}");
        }
    }

    #[test]
    fn evaluate_checks_input_count() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        nl.add_output(a, "y");
        assert!(matches!(
            evaluate(&nl, &[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn constants_across_lanes() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::from_bools(&[true, false, true])]).unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
    }

    #[test]
    fn wide_batch_tail_masking() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::zeros(100)]).unwrap();
        assert_eq!(out[0].count_ones(), 100, "NOT of all-zero = all-one");
    }
}
