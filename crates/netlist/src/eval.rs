//! Bit-parallel functional evaluation of a netlist.
//!
//! The LPU processes `2m`-bit operands: each bit is an independent Boolean
//! sample (a patch of a feature volume, or one image of a batch). [`Lanes`]
//! models exactly that — a vector of Boolean lanes packed into `u64` words —
//! and [`evaluate`] runs the whole netlist across all lanes at once. This is
//! the golden reference the cycle-accurate LPU simulator is tested against.
//!
//! Two evaluation strategies share the [`Lanes`] I/O format:
//!
//! * [`evaluate`] — walks the netlist arena directly, one [`Lanes`]
//!   allocation per net. Simple, and the oracle everything else is tested
//!   against.
//! * [`BitSliceEvaluator`] — compiles the netlist once into a flat tape of
//!   branch-free ANF word kernels ([`crate::Op::anf_masks`]) over a
//!   [`BitSlice64`] frame (one `u64` per net = 64 samples), then replays
//!   the tape per 64-lane block. No per-net allocation, no per-gate
//!   dispatch: this is the software analogue of the LPU's word-level
//!   parallelism and the kernel behind the serving layer's bit-sliced
//!   backend.

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::Netlist;

/// A packed vector of Boolean lanes (the value of one signal across a batch).
///
/// # Example
///
/// ```
/// use lbnn_netlist::Lanes;
/// let mut l = Lanes::zeros(100);
/// l.set(3, true);
/// assert!(l.get(3));
/// assert_eq!(l.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lanes {
    words: Vec<u64>,
    len: usize,
}

impl Lanes {
    /// Creates `len` lanes, all 0.
    pub fn zeros(len: usize) -> Self {
        Lanes {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates `len` lanes, all 1.
    pub fn ones(len: usize) -> Self {
        let mut l = Lanes {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        l.mask_tail();
        l
    }

    /// Packs a slice of booleans into lanes.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut l = Lanes::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                l.set(i, true);
            }
        }
        l
    }

    /// Creates lanes from raw words; bits past `len` are masked off.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut l = Lanes { words, len };
        l.mask_tail();
        l
    }

    /// Number of lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no lanes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        self.words[index / 64] >> (index % 64) & 1 != 0
    }

    /// Sets the lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// The packed words backing the lanes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Transposes per-sample bit rows into per-signal lane columns:
    /// `rows[j]` holds sample `j`'s value for each of `width` signals,
    /// and the result holds one `Lanes` per signal with sample `j` at
    /// lane `j` — the packing shared by every serving path that turns
    /// individual requests into a bit-sliced batch.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `width`.
    ///
    /// # Example
    ///
    /// ```
    /// use lbnn_netlist::Lanes;
    /// let rows = [[true, false], [true, true], [false, false]];
    /// let cols = Lanes::pack_rows(&rows, 2);
    /// assert_eq!(cols.len(), 2);
    /// assert_eq!(cols[0].to_bools(), vec![true, true, false]); // signal 0
    /// assert_eq!(cols[1].to_bools(), vec![false, true, false]); // signal 1
    /// ```
    pub fn pack_rows<R: AsRef<[bool]>>(rows: &[R], width: usize) -> Vec<Lanes> {
        let mut columns = vec![Lanes::zeros(rows.len()); width];
        for (j, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), width, "row {j} has the wrong width");
            for (column, &bit) in columns.iter_mut().zip(row) {
                if bit {
                    column.set(j, true);
                }
            }
        }
        columns
    }

    /// Number of lanes set to 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unpacks the lanes into booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Applies a gate operation lane-wise: `self = op(a, b)`. Single-input
    /// operations ignore `b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand lane counts differ from `self`.
    pub fn assign_op(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        assert_eq!(a.len(), self.len, "operand lane count mismatch");
        if let Some(b) = b {
            assert_eq!(b.len(), self.len, "operand lane count mismatch");
        }
        self.assign_op_inner(op, a, b);
    }

    #[inline]
    fn assign_op_inner(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        let zero: &[u64] = &[];
        let bw = b.map_or(zero, |b| b.words.as_slice());
        for (i, w) in self.words.iter_mut().enumerate() {
            let wa = a.words[i];
            let wb = if bw.is_empty() { 0 } else { bw[i] };
            *w = op.eval_word(wa, wb);
        }
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Evaluates the netlist across all lanes simultaneously.
///
/// `inputs[i]` carries the batch values of primary input `i` (in
/// [`Netlist::inputs`] order); the result holds one [`Lanes`] per primary
/// output, in [`Netlist::outputs`] order.
///
/// # Errors
///
/// Returns [`NetlistError::InputArity`] if the number of input lane vectors
/// does not match the netlist's primary input count.
///
/// # Panics
///
/// Panics if the input lane vectors have inconsistent lane counts.
///
/// # Example
///
/// ```
/// use lbnn_netlist::{eval::evaluate, Lanes, Netlist, Op};
/// # fn main() -> Result<(), lbnn_netlist::NetlistError> {
/// let mut nl = Netlist::new("and");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::And, a, b);
/// nl.add_output(y, "y");
/// let out = evaluate(&nl, &[
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ])?;
/// assert_eq!(out[0].to_bools(), vec![true, false, false]);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(netlist: &Netlist, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
    if inputs.len() != netlist.inputs().len() {
        return Err(NetlistError::InputArity {
            expected: netlist.inputs().len(),
            got: inputs.len(),
        });
    }
    let lanes = inputs.first().map_or(0, Lanes::len);
    for l in inputs {
        assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
    }

    let mut values: Vec<Lanes> = vec![Lanes::zeros(lanes); netlist.len()];
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = inputs[i].clone();
    }
    for (id, node) in netlist.iter() {
        if node.op() == Op::Input {
            continue;
        }
        let mut v = Lanes::zeros(lanes);
        let fan = node.fanins();
        match fan.len() {
            0 => v.assign_op(node.op(), &Lanes::zeros(lanes), None),
            1 => v.assign_op(node.op(), &values[fan[0].index()], None),
            _ => v.assign_op(
                node.op(),
                &values[fan[0].index()],
                Some(&values[fan[1].index()]),
            ),
        }
        values[id.index()] = v;
    }
    Ok(netlist
        .outputs()
        .iter()
        .map(|o| values[o.node.index()].clone())
        .collect())
}

/// One bit-sliced execution frame: a single `u64` per net, so one frame
/// holds the values of 64 independent samples for every signal of the
/// netlist at once.
///
/// Frames are plain scratch storage — [`BitSliceEvaluator::run_block`]
/// fills one from packed inputs, replays the kernel tape over it, and
/// reads the primary outputs back out. Reusing a frame across blocks and
/// batches keeps steady-state evaluation allocation-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSlice64 {
    words: Vec<u64>,
}

impl BitSlice64 {
    /// A frame with `slots` nets, all 64 lanes zero.
    pub fn with_slots(slots: usize) -> Self {
        BitSlice64 {
            words: vec![0; slots],
        }
    }

    /// Number of net slots in the frame.
    #[inline]
    pub fn slots(&self) -> usize {
        self.words.len()
    }

    /// The 64 packed samples of net `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()`.
    #[inline]
    pub fn word(&self, slot: usize) -> u64 {
        self.words[slot]
    }

    /// Sets the 64 packed samples of net `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()`.
    #[inline]
    pub fn set_word(&mut self, slot: usize, value: u64) {
        self.words[slot] = value;
    }

    /// Resizes the frame to `slots` nets (new slots are zero).
    fn reshape(&mut self, slots: usize) {
        self.words.resize(slots, 0);
    }
}

/// One straight-line kernel step: `frame[out] = k0 ^ (k1 & frame[b]) ^
/// (k2 & frame[a]) ^ (k3 & frame[a] & frame[b])`.
///
/// The coefficients come from [`crate::Op::anf_masks`]; single-input and
/// constant cells simply have the unused coefficients zeroed, so every
/// gate kind executes the same branch-free sequence of bitwise ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SliceInstr {
    a: u32,
    b: u32,
    out: u32,
    k: [u64; 4],
}

/// A netlist compiled into a bit-sliced 64-lane kernel tape.
///
/// Compilation walks the arena once, turning every executable cell into a
/// kernel instruction in topological order. Evaluation then processes the
/// batch 64 lanes at a time: load each primary input's packed word into a
/// [`BitSlice64`] frame, replay the tape, read the primary outputs back.
/// Results are bit-identical to [`evaluate`] on the same inputs.
///
/// # Example
///
/// ```
/// use lbnn_netlist::eval::{evaluate, BitSliceEvaluator};
/// use lbnn_netlist::{Lanes, Netlist, Op};
/// let mut nl = Netlist::new("f");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::Nand, a, b);
/// nl.add_output(y, "y");
/// let inputs = [
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ];
/// let sliced = BitSliceEvaluator::compile(&nl);
/// assert_eq!(
///     sliced.evaluate(&inputs).unwrap(),
///     evaluate(&nl, &inputs).unwrap(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct BitSliceEvaluator {
    /// Straight-line program, one instruction per executable node.
    tape: Vec<SliceInstr>,
    /// Frame slot of each primary input, in [`Netlist::inputs`] order.
    inputs: Vec<u32>,
    /// Frame slot of each primary output, in [`Netlist::outputs`] order.
    outputs: Vec<u32>,
    /// Frame size (one slot per netlist node).
    slots: usize,
}

impl BitSliceEvaluator {
    /// Compiles `netlist` into a kernel tape.
    ///
    /// The arena's topological order is the tape order; primary inputs
    /// occupy frame slots but emit no instruction.
    pub fn compile(netlist: &Netlist) -> Self {
        let mut tape = Vec::with_capacity(netlist.len());
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            let fan = node.fanins();
            // Unused operands read slot 0 behind a zero mask — harmless,
            // and it keeps the kernel uniform across arities.
            let a = fan.first().map_or(0, |f| f.index() as u32);
            let b = fan.get(1).map_or(a, |f| f.index() as u32);
            tape.push(SliceInstr {
                a,
                b,
                out: id.index() as u32,
                k: node.op().anf_masks(),
            });
        }
        BitSliceEvaluator {
            tape,
            inputs: netlist.inputs().iter().map(|i| i.index() as u32).collect(),
            outputs: netlist
                .outputs()
                .iter()
                .map(|o| o.node.index() as u32)
                .collect(),
            slots: netlist.len(),
        }
    }

    /// Number of kernel instructions (executable nets).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Number of primary inputs the evaluator expects.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs the evaluator produces.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// A frame sized for this evaluator's netlist.
    pub fn frame(&self) -> BitSlice64 {
        BitSlice64::with_slots(self.slots)
    }

    /// Replays the kernel tape over one 64-lane frame in place.
    ///
    /// The caller loads the primary-input words first (slots from the
    /// compiled input map); afterwards every net's slot holds its value
    /// for all 64 lanes. [`BitSliceEvaluator::evaluate`] wraps the
    /// packing/unpacking; this is the raw kernel.
    ///
    /// # Panics
    ///
    /// Panics if `frame` has fewer slots than the compiled netlist.
    #[inline]
    pub fn run_block(&self, frame: &mut BitSlice64) {
        assert!(frame.slots() >= self.slots, "frame too small for tape");
        let words = &mut frame.words;
        for i in &self.tape {
            let a = words[i.a as usize];
            let b = words[i.b as usize];
            words[i.out as usize] = i.k[0] ^ (i.k[1] & b) ^ (i.k[2] & a) ^ (i.k[3] & a & b);
        }
    }

    /// Evaluates the whole batch, reusing `frame` as scratch across
    /// 64-lane blocks. Semantics match [`evaluate`]; `lanes` overrides the
    /// batch width (used by no-input netlists, where width cannot be
    /// inferred from `inputs`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts or
    /// fewer lanes than `lanes`.
    pub fn evaluate_with(
        &self,
        inputs: &[Lanes],
        lanes: usize,
        frame: &mut BitSlice64,
    ) -> Result<Vec<Lanes>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        for l in inputs {
            assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
        }
        frame.reshape(self.slots);
        let blocks = lanes.div_ceil(64);
        let mut out_words: Vec<Vec<u64>> = vec![Vec::with_capacity(blocks); self.outputs.len()];
        for block in 0..blocks {
            for (lanes_in, &slot) in inputs.iter().zip(&self.inputs) {
                frame.words[slot as usize] = lanes_in.words()[block];
            }
            self.run_block(frame);
            for (words, &slot) in out_words.iter_mut().zip(&self.outputs) {
                words.push(frame.words[slot as usize]);
            }
        }
        Ok(out_words
            .into_iter()
            .map(|words| Lanes::from_words(words, lanes))
            .collect())
    }

    /// Evaluates the netlist across all lanes — the bit-sliced counterpart
    /// of [`evaluate`], with identical semantics and results.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts.
    pub fn evaluate(&self, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
        let lanes = inputs.first().map_or(0, Lanes::len);
        self.evaluate_with(inputs, lanes, &mut self.frame())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Op;

    #[test]
    fn lanes_pack_unpack() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let lanes = Lanes::from_bools(&bits);
        assert_eq!(lanes.len(), 130);
        assert_eq!(lanes.to_bools(), bits);
        assert_eq!(lanes.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn pack_rows_transposes_and_checks_width() {
        // Round trip: pack 70 rows (multi-word lanes), read each sample
        // back from its lane.
        let rows: Vec<Vec<bool>> = (0..70)
            .map(|j| (0..5).map(|i| (j + i) % 3 == 0).collect())
            .collect();
        let cols = Lanes::pack_rows(&rows, 5);
        assert_eq!(cols.len(), 5);
        for (j, row) in rows.iter().enumerate() {
            for (i, &bit) in row.iter().enumerate() {
                assert_eq!(cols[i].get(j), bit, "signal {i} sample {j}");
            }
        }
        assert!(Lanes::pack_rows::<Vec<bool>>(&[], 3)
            .iter()
            .all(Lanes::is_empty));
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn pack_rows_rejects_ragged_rows() {
        let _ = Lanes::pack_rows(&[vec![true, false], vec![true]], 2);
    }

    #[test]
    fn ones_masks_tail() {
        let l = Lanes::ones(70);
        assert_eq!(l.count_ones(), 70);
        assert_eq!(l.words().len(), 2);
        assert_eq!(l.words()[1] >> 6, 0, "tail bits must stay clear");
    }

    #[test]
    fn evaluate_matches_scalar_eval() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_gate1(Op::Not, b);
        let t = nl.add_gate2(Op::Xnor, a, nb);
        let y = nl.add_gate2(Op::Nor, t, c);
        nl.add_output(y, "y");
        nl.add_output(t, "t");

        // All 8 combinations as 8 lanes.
        let mut ins = vec![Lanes::zeros(8), Lanes::zeros(8), Lanes::zeros(8)];
        for lane in 0..8 {
            for (bit, lanes) in ins.iter_mut().enumerate() {
                lanes.set(lane, lane & (1 << bit) != 0);
            }
        }
        let outs = evaluate(&nl, &ins).unwrap();
        for lane in 0..8 {
            let scalar = nl.eval_bools(&[lane & 1 != 0, lane & 2 != 0, lane & 4 != 0]);
            assert_eq!(outs[0].get(lane), scalar[0], "lane {lane}");
            assert_eq!(outs[1].get(lane), scalar[1], "lane {lane}");
        }
    }

    #[test]
    fn evaluate_checks_input_count() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        nl.add_output(a, "y");
        assert!(matches!(
            evaluate(&nl, &[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn constants_across_lanes() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::from_bools(&[true, false, true])]).unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
    }

    #[test]
    fn bitsliced_matches_evaluate() {
        use crate::random::RandomDag;
        for seed in 0..6 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            let sliced = BitSliceEvaluator::compile(&nl);
            assert_eq!(sliced.num_inputs(), nl.inputs().len());
            assert_eq!(sliced.num_outputs(), nl.outputs().len());
            // Deliberately awkward widths: sub-word, exact word, multi-word
            // with tail.
            for lanes in [1usize, 63, 64, 65, 130, 256] {
                let inputs: Vec<Lanes> = (0..nl.inputs().len())
                    .map(|i| {
                        let bits: Vec<bool> = (0..lanes)
                            .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                            .collect();
                        Lanes::from_bools(&bits)
                    })
                    .collect();
                let want = evaluate(&nl, &inputs).unwrap();
                let got = sliced.evaluate(&inputs).unwrap();
                assert_eq!(got, want, "seed {seed} lanes {lanes}");
            }
        }
    }

    #[test]
    fn bitsliced_constants_and_arity_errors() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        let out = sliced
            .evaluate(&[Lanes::from_bools(&[true, false, true])])
            .unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
        assert!(matches!(
            sliced.evaluate(&[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn bitsliced_frame_reuse_across_widths() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        assert_eq!(sliced.tape_len(), 1);
        let mut frame = sliced.frame();
        for lanes in [100usize, 3, 64] {
            let out = sliced
                .evaluate_with(&[Lanes::zeros(lanes)], lanes, &mut frame)
                .unwrap();
            assert_eq!(out[0].count_ones(), lanes, "NOT of all-zero = all-one");
        }
    }

    #[test]
    fn wide_batch_tail_masking() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::zeros(100)]).unwrap();
        assert_eq!(out[0].count_ones(), 100, "NOT of all-zero = all-one");
    }
}
