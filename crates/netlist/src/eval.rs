//! Bit-parallel functional evaluation of a netlist.
//!
//! The LPU processes `2m`-bit operands: each bit is an independent Boolean
//! sample (a patch of a feature volume, or one image of a batch). [`Lanes`]
//! models exactly that — a vector of Boolean lanes packed into `u64` words —
//! and [`evaluate`] runs the whole netlist across all lanes at once. This is
//! the golden reference the cycle-accurate LPU simulator is tested against.
//!
//! Two evaluation strategies share the [`Lanes`] I/O format:
//!
//! * [`evaluate`] — walks the netlist arena directly, one [`Lanes`]
//!   allocation per net. Simple, and the oracle everything else is tested
//!   against.
//! * [`BitSliceEvaluator`] — compiles the netlist once into a flat tape of
//!   branch-free ANF word kernels ([`crate::Op::anf_masks`]) over a
//!   [`SliceFrame`] (a fixed number of `u64` words per net), then replays
//!   the tape per block of `64 × words` lanes. No per-net allocation, no
//!   per-gate dispatch: this is the software analogue of the LPU's
//!   word-level parallelism and the kernel behind the serving layer's
//!   bit-sliced backend. Compilation runs a **tape-locality pass**
//!   ([`TapeOptions`]): single-fanout chains are fused so their
//!   intermediates live in a register accumulator, dead nets' frame slots
//!   are recycled by a liveness allocator, and wide blocks are tiled over
//!   word sub-ranges so the live frame stays cache-resident
//!   ([`TapeStats`] reports what the pass did). The frame width is
//!   generic — any `words_per_net ≥ 1` works, and the widths in
//!   [`SUPPORTED_SLICE_WORDS`] (1/2/4/8/16 words = 64/128/256/512/1024
//!   lanes) run on monomorphized kernels the compiler can keep
//!   branch-free and vectorize. On x86_64, wide tiles additionally run
//!   on explicit `std::arch` SIMD kernels (AVX-512/AVX2/SSE2, picked by
//!   runtime CPU-feature detection; [`SimdMode`] / the `LBNN_SIMD`
//!   environment knob override the choice), all bit-identical to the
//!   portable scalar tiles.

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::{Netlist, NodeId};
use crate::patch::PatchSet;

/// A packed vector of Boolean lanes (the value of one signal across a batch).
///
/// # Example
///
/// ```
/// use lbnn_netlist::Lanes;
/// let mut l = Lanes::zeros(100);
/// l.set(3, true);
/// assert!(l.get(3));
/// assert_eq!(l.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lanes {
    words: Vec<u64>,
    len: usize,
}

impl Lanes {
    /// Creates `len` lanes, all 0.
    pub fn zeros(len: usize) -> Self {
        Lanes {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates `len` lanes, all 1.
    pub fn ones(len: usize) -> Self {
        let mut l = Lanes {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        l.mask_tail();
        l
    }

    /// Packs a slice of booleans into lanes.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut l = Lanes::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                l.set(i, true);
            }
        }
        l
    }

    /// Creates lanes from raw words; bits past `len` are masked off.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut l = Lanes { words, len };
        l.mask_tail();
        l
    }

    /// Number of lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no lanes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        self.words[index / 64] >> (index % 64) & 1 != 0
    }

    /// Sets the lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// The packed words backing the lanes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Transposes per-sample bit rows into per-signal lane columns:
    /// `rows[j]` holds sample `j`'s value for each of `width` signals,
    /// and the result holds one `Lanes` per signal with sample `j` at
    /// lane `j` — the packing shared by every serving path that turns
    /// individual requests into a bit-sliced batch.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `width`.
    ///
    /// # Example
    ///
    /// ```
    /// use lbnn_netlist::Lanes;
    /// let rows = [[true, false], [true, true], [false, false]];
    /// let cols = Lanes::pack_rows(&rows, 2);
    /// assert_eq!(cols.len(), 2);
    /// assert_eq!(cols[0].to_bools(), vec![true, true, false]); // signal 0
    /// assert_eq!(cols[1].to_bools(), vec![false, true, false]); // signal 1
    /// ```
    pub fn pack_rows<R: AsRef<[bool]>>(rows: &[R], width: usize) -> Vec<Lanes> {
        let stride = rows.len().div_ceil(64);
        let mut flat = Vec::new();
        Lanes::pack_rows_into(rows, width, &mut flat);
        (0..width)
            .map(|i| Lanes::from_words(flat[i * stride..(i + 1) * stride].to_vec(), rows.len()))
            .collect()
    }

    /// [`Lanes::pack_rows`] into a caller-owned flat buffer — the
    /// zero-allocation packing behind steady-state serving. `out` is
    /// resized to `width × stride` words (`stride = rows.len().div_ceil(64)`,
    /// also the return value): signal `i`'s lane column occupies
    /// `out[i * stride .. (i + 1) * stride]` with sample `j` at bit `j`
    /// (the exact word layout of `width` concatenated [`Lanes`]).
    ///
    /// The transpose runs 64×64 bits at a time ([`transpose_64x64`]):
    /// each block of ≤ 64 rows × ≤ 64 signals is gathered into a local
    /// 512-byte tile, transposed word-level, and stored with one word
    /// write per signal — instead of one scattered read-modify-write per
    /// *bit* as the naive loop does.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `width`.
    pub fn pack_rows_into<R: AsRef<[bool]>>(rows: &[R], width: usize, out: &mut Vec<u64>) -> usize {
        let stride = rows.len().div_ceil(64);
        out.clear();
        out.resize(width * stride, 0);
        let mut tile = [0u64; 64];
        for (rb, chunk) in rows.chunks(64).enumerate() {
            for cb in 0..width.div_ceil(64) {
                let s0 = cb * 64;
                let cols = (width - s0).min(64);
                for (r, row) in chunk.iter().enumerate() {
                    let row = row.as_ref();
                    assert_eq!(row.len(), width, "row {} has the wrong width", rb * 64 + r);
                    tile[r] = gather_bits(&row[s0..s0 + cols]);
                }
                tile[chunk.len()..].fill(0);
                transpose_64x64(&mut tile);
                for (k, &word) in tile.iter().take(cols).enumerate() {
                    out[(s0 + k) * stride + rb] = word;
                }
            }
        }
        stride
    }

    /// Inverse of [`Lanes::pack_rows`]: per-signal lane columns back to
    /// per-sample bit rows (`result[j][i]` = lane `j` of `columns[i]`) —
    /// the unpacking the serving paths use to hand each request its own
    /// output bits. Word-level like the packing: 64×64 blocks are
    /// transposed in a local tile, not read bit by bit with per-access
    /// bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if the columns have inconsistent lane counts.
    pub fn unpack_rows(columns: &[Lanes]) -> Vec<Vec<bool>> {
        let rows = columns.first().map_or(0, Lanes::len);
        for c in columns {
            assert_eq!(c.len(), rows, "inconsistent lane counts across columns");
        }
        let mut result = vec![vec![false; columns.len()]; rows];
        let mut tile = [0u64; 64];
        for rb in 0..rows.div_ceil(64) {
            let nrows = (rows - rb * 64).min(64);
            for (s0, block) in columns.chunks(64).enumerate().map(|(b, c)| (b * 64, c)) {
                for (k, col) in block.iter().enumerate() {
                    tile[k] = col.words[rb];
                }
                tile[block.len()..].fill(0);
                transpose_64x64(&mut tile);
                for (r, &word) in tile.iter().take(nrows).enumerate() {
                    let row = &mut result[rb * 64 + r];
                    for (k, dst) in row[s0..s0 + block.len()].iter_mut().enumerate() {
                        *dst = word >> k & 1 != 0;
                    }
                }
            }
        }
        result
    }

    /// Number of lanes set to 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unpacks the lanes into booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Applies a gate operation lane-wise: `self = op(a, b)`. Single-input
    /// operations ignore `b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand lane counts differ from `self`.
    pub fn assign_op(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        assert_eq!(a.len(), self.len, "operand lane count mismatch");
        if let Some(b) = b {
            assert_eq!(b.len(), self.len, "operand lane count mismatch");
        }
        self.assign_op_inner(op, a, b);
    }

    #[inline]
    fn assign_op_inner(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        let zero: &[u64] = &[];
        let bw = b.map_or(zero, |b| b.words.as_slice());
        for (i, w) in self.words.iter_mut().enumerate() {
            let wa = a.words[i];
            let wb = if bw.is_empty() { 0 } else { bw[i] };
            *w = op.eval_word(wa, wb);
        }
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3): `m[k]`
/// is row `k` with column `i` at bit `i`; afterwards bit `i` of row `k`
/// is the old bit `k` of row `i`. Six rounds of masked delta swaps —
/// 64 words of work per round instead of one operation per bit, the
/// kernel behind [`Lanes::pack_rows`] / [`Lanes::unpack_rows`].
pub fn transpose_64x64(m: &mut [u64; 64]) {
    let mut j = 32;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            // LSB-first variant of the classic delta swap (bit i of row k
            // is column i, so the off-diagonal halves trade the other way
            // round than in the MSB-first original).
            let t = ((m[k] >> j) ^ m[k | j]) & mask;
            m[k] ^= t << j;
            m[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Packs up to 64 booleans into one word, LSB first. Each 8-bool group
/// collapses with a single multiply (each `bool` is a 0/1 byte; the
/// magic constant shifts byte `k` onto bit `56 + k`) — no per-bit
/// branches or shifts.
#[inline]
fn gather_bits(row: &[bool]) -> u64 {
    debug_assert!(row.len() <= 64);
    let mut w = 0u64;
    for (g, chunk) in row.chunks(8).enumerate() {
        let mut bytes = [0u8; 8];
        for (dst, &b) in bytes.iter_mut().zip(chunk) {
            *dst = b as u8;
        }
        let packed = u64::from_le_bytes(bytes).wrapping_mul(0x0102_0408_1020_4080) >> 56;
        w |= packed << (8 * g);
    }
    w
}

/// Evaluates the netlist across all lanes simultaneously.
///
/// `inputs[i]` carries the batch values of primary input `i` (in
/// [`Netlist::inputs`] order); the result holds one [`Lanes`] per primary
/// output, in [`Netlist::outputs`] order.
///
/// # Errors
///
/// Returns [`NetlistError::InputArity`] if the number of input lane vectors
/// does not match the netlist's primary input count.
///
/// # Panics
///
/// Panics if the input lane vectors have inconsistent lane counts.
///
/// # Example
///
/// ```
/// use lbnn_netlist::{eval::evaluate, Lanes, Netlist, Op};
/// # fn main() -> Result<(), lbnn_netlist::NetlistError> {
/// let mut nl = Netlist::new("and");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::And, a, b);
/// nl.add_output(y, "y");
/// let out = evaluate(&nl, &[
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ])?;
/// assert_eq!(out[0].to_bools(), vec![true, false, false]);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(netlist: &Netlist, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
    if inputs.len() != netlist.inputs().len() {
        return Err(NetlistError::InputArity {
            expected: netlist.inputs().len(),
            got: inputs.len(),
        });
    }
    let lanes = inputs.first().map_or(0, Lanes::len);
    for l in inputs {
        assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
    }

    let mut values: Vec<Lanes> = vec![Lanes::zeros(lanes); netlist.len()];
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = inputs[i].clone();
    }
    for (id, node) in netlist.iter() {
        if node.op() == Op::Input {
            continue;
        }
        let mut v = Lanes::zeros(lanes);
        let fan = node.fanins();
        match fan.len() {
            0 => v.assign_op(node.op(), &Lanes::zeros(lanes), None),
            1 => v.assign_op(node.op(), &values[fan[0].index()], None),
            _ => v.assign_op(
                node.op(),
                &values[fan[0].index()],
                Some(&values[fan[1].index()]),
            ),
        }
        values[id.index()] = v;
    }
    Ok(netlist
        .outputs()
        .iter()
        .map(|o| values[o.node.index()].clone())
        .collect())
}

/// The bit-slice widths with monomorphized branch-free kernels:
/// 1/2/4/8/16 words per net = 64/128/256/512/1024 lanes per block.
///
/// [`BitSliceEvaluator::run_block`] accepts any `words_per_net ≥ 1`
/// (other widths are chunked into tiles from this set); the serving layer
/// above restricts its backends to this blessed set.
pub const SUPPORTED_SLICE_WORDS: [usize; 5] = [1, 2, 4, 8, 16];

/// Requested SIMD policy for the kernel tape ([`TapeOptions::simd`],
/// `LBNN_SIMD` environment knob). A request is a *ceiling*, not a
/// demand: compilation resolves it against runtime CPU-feature
/// detection ([`SimdMode::resolve`]) and clamps to the best level the
/// host actually has, so forcing `avx2` on a pre-AVX2 machine degrades
/// gracefully instead of faulting. Every level is bit-identical — the
/// knob exists for differential testing and perf triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdMode {
    /// Pick the fastest level for this kernel class (the default).
    /// Prefers AVX2 over AVX-512 when both are present: the replay
    /// kernel is pure 64-bit logic ops, and on server cores 512-bit
    /// vectors pay frequency-license and port-width penalties that
    /// outweigh the halved instruction count (measured ~15-20% slower
    /// at 512/1024 lanes). `avx512` stays available as an explicit
    /// opt-in for hosts where the wider unit does win.
    #[default]
    Auto,
    /// Cap at AVX-512 (8 words per vector op).
    Avx512,
    /// Cap at AVX2 (4 words per vector op).
    Avx2,
    /// Cap at SSE2 (2 words per vector op; baseline on every x86_64).
    Sse2,
    /// Portable scalar tiles only — no `std::arch` kernels.
    Off,
}

impl SimdMode {
    /// Parses the `LBNN_SIMD` spellings: `auto`, `avx512`, `avx2`,
    /// `sse2`, `off` (plus `0`/`none`/`scalar` for `off`).
    pub fn parse(s: &str) -> Option<SimdMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "" => Some(SimdMode::Auto),
            "avx512" => Some(SimdMode::Avx512),
            "avx2" => Some(SimdMode::Avx2),
            "sse2" => Some(SimdMode::Sse2),
            "off" | "0" | "none" | "scalar" => Some(SimdMode::Off),
            _ => None,
        }
    }

    /// [`SimdMode::Auto`] unless the `LBNN_SIMD` environment variable
    /// names another mode (unparsable values fall back to `Auto`).
    pub fn from_env() -> SimdMode {
        std::env::var("LBNN_SIMD")
            .ok()
            .and_then(|v| SimdMode::parse(&v))
            .unwrap_or_default()
    }

    /// Clamps the requested mode to what this CPU supports, via runtime
    /// feature detection. On non-x86_64 hosts every mode resolves to
    /// [`SimdLevel::Scalar`] (the portable tiles are the only kernels).
    pub fn resolve(self) -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            if self == SimdMode::Off {
                return SimdLevel::Scalar;
            }
            let avx512 = is_x86_feature_detected!("avx512f");
            let avx2 = is_x86_feature_detected!("avx2");
            match self {
                // `Auto` deliberately skips AVX-512 when AVX2 is present
                // (see the enum docs); it only lands on Avx512 for the
                // hypothetical avx512f-without-avx2 feature report.
                SimdMode::Avx512 if avx512 => SimdLevel::Avx512,
                SimdMode::Auto | SimdMode::Avx512 | SimdMode::Avx2 if avx2 => SimdLevel::Avx2,
                SimdMode::Auto if avx512 => SimdLevel::Avx512,
                // SSE2 is part of the x86_64 baseline: always present.
                _ => SimdLevel::Sse2,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Scalar
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdMode::Auto => "auto",
            SimdMode::Avx512 => "avx512",
            SimdMode::Avx2 => "avx2",
            SimdMode::Sse2 => "sse2",
            SimdMode::Off => "off",
        })
    }
}

/// The SIMD dispatch level a tape actually executes with — the result
/// of resolving a [`SimdMode`] request against runtime CPU-feature
/// detection at compile time ([`BitSliceEvaluator::simd_level`]), so
/// the hot loop never re-detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// 512-bit vectors: 8 words per op (tiles of 8/16 words).
    Avx512,
    /// 256-bit vectors: 4 words per op (tiles of 4/8/16 words).
    Avx2,
    /// 128-bit vectors: 2 words per op (tiles of 2 words and up).
    Sse2,
    /// Portable monomorphized tiles (always used for 1-word tiles).
    Scalar,
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Scalar => "scalar",
        })
    }
}

/// Compile-time sentinel: the value is fed through the chain
/// accumulator, not a net slot of its own. Only used while building the
/// tape — emission resolves it to the dedicated accumulator slot (the
/// last slot of the frame), so the hot kernel never branches on it. An
/// emitted instruction whose `out` is the accumulator slot is a fused
/// chain interior — its result is consumed by the next instruction on
/// the tape and its slot line stays cache-hot.
const REG: u32 = u32::MAX;

/// One bit-sliced execution frame: a fixed number of `u64` words per
/// net, so one frame holds `64 × words_per_net` independent samples for
/// every signal of the netlist at once. A one-word frame is the classic
/// 64-lane slice; 2/4/8-word frames widen a block to 128/256/512 lanes.
///
/// Frames are plain scratch storage — [`BitSliceEvaluator::run_block`]
/// fills one from packed inputs, replays the kernel tape over it, and
/// reads the primary outputs back out. Reusing a frame across blocks and
/// batches keeps steady-state evaluation allocation-free. Net `slot`
/// occupies the contiguous words `slot × words_per_net ..` (net-major
/// layout, so each kernel step touches one small fixed-size span per
/// operand). Slots are *live* frame slots assigned by the compile-time
/// locality pass, not netlist node ids — dead nets share recycled slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceFrame {
    pub(crate) words: Vec<u64>,
    words_per_net: usize,
}

/// Migration shim: the original 64-lane frame is a [`SliceFrame`] with
/// one word per net ([`SliceFrame::with_slots`]).
pub type BitSlice64 = SliceFrame;

impl Default for SliceFrame {
    /// An empty one-word-per-net (64-lane) frame.
    fn default() -> Self {
        SliceFrame {
            words: Vec::new(),
            words_per_net: 1,
        }
    }
}

impl SliceFrame {
    /// A 64-lane frame with `slots` nets (one word per net), all zero.
    pub fn with_slots(slots: usize) -> Self {
        SliceFrame::with_width(slots, 1)
    }

    /// A frame with `slots` nets of `words_per_net` words each
    /// (`64 × words_per_net` lanes), all zero.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn with_width(slots: usize, words_per_net: usize) -> Self {
        assert!(words_per_net > 0, "a slice frame needs at least one word");
        SliceFrame {
            words: vec![0; slots * words_per_net],
            words_per_net,
        }
    }

    /// Number of net slots in the frame.
    #[inline]
    pub fn slots(&self) -> usize {
        self.words.len() / self.words_per_net
    }

    /// Words per net slot.
    #[inline]
    pub fn words_per_net(&self) -> usize {
        self.words_per_net
    }

    /// Lanes one block of this frame evaluates (`64 × words_per_net`).
    #[inline]
    pub fn lanes(&self) -> usize {
        64 * self.words_per_net
    }

    /// Changes the frame's width, preserving the slot count. All contents
    /// are zeroed: with slot reuse, a gate's slot may be read (behind a
    /// zero ANF mask, or as a partial-block tail) before the tape first
    /// writes it, so a width change must never leave stale words from an
    /// earlier layout where a reused slot now lands.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn set_width(&mut self, words_per_net: usize) {
        assert!(words_per_net > 0, "a slice frame needs at least one word");
        if words_per_net != self.words_per_net {
            let slots = self.slots();
            self.words_per_net = words_per_net;
            self.words.clear();
            self.words.resize(slots * words_per_net, 0);
        }
    }

    /// One packed 64-sample word of net `slot`: word `index` of its
    /// `words_per_net` span (word `w` covers lanes `64w .. 64w+64`).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()` or `index >= words_per_net()`.
    #[inline]
    pub fn word(&self, slot: usize, index: usize) -> u64 {
        assert!(index < self.words_per_net, "word index out of range");
        self.words[slot * self.words_per_net + index]
    }

    /// Sets one packed 64-sample word of net `slot`; see
    /// [`SliceFrame::word`].
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()` or `index >= words_per_net()`.
    #[inline]
    pub fn set_word(&mut self, slot: usize, index: usize, value: u64) {
        assert!(index < self.words_per_net, "word index out of range");
        self.words[slot * self.words_per_net + index] = value;
    }

    /// Resizes the frame to `slots` nets at its current width (new slots
    /// are zero).
    pub(crate) fn reshape(&mut self, slots: usize) {
        self.words.resize(slots * self.words_per_net, 0);
    }
}

/// One straight-line kernel step: `out = k0 ^ (k1 & b) ^ (k2 & a) ^
/// (k3 & a & b)`, where each of `a`, `b`, `out` is a frame slot —
/// fused-chain values use the dedicated accumulator slot (the last slot
/// of the frame), resolved at compile time so execution never branches.
///
/// The coefficients come from [`crate::Op::anf_masks`]; single-input and
/// constant cells simply have the unused coefficients zeroed, so every
/// gate kind executes the same branch-free sequence of bitwise ops. The
/// masks are stored verbatim per cell even inside fused chains, which is
/// what keeps in-place hot patching a pure mask rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SliceInstr {
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) out: u32,
    pub(crate) k: [u64; 4],
}

/// Knobs for the tape-locality pass run by
/// [`BitSliceEvaluator::compile_with`].
///
/// [`BitSliceEvaluator::compile`] uses [`TapeOptions::from_env`], so the
/// pass can be toggled per process for differential testing:
///
/// * `LBNN_TAPE_FUSION=0` — disable chain fusion,
/// * `LBNN_TAPE_SLOT_REUSE=0` — disable liveness-based slot recycling,
/// * `LBNN_CACHE_BUDGET=<bytes>` — per-tile frame budget (0 = unlimited),
/// * `LBNN_SIMD=auto|avx512|avx2|sse2|off` — SIMD kernel ceiling
///   ([`SimdMode`]).
///
/// Every combination produces bit-identical results; the options only
/// trade memory traffic for tape shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeOptions {
    /// Collapse single-fanout cell runs into fused chains whose
    /// intermediates all share the dedicated accumulator slot (written
    /// and re-read back-to-back, so the line stays in L1).
    pub fuse: bool,
    /// Recycle the frame slots of dead nets with a liveness allocator,
    /// shrinking the live frame footprint.
    pub reuse: bool,
    /// Target footprint in bytes of one tile of the live frame
    /// (`frame_slots × tile_words × 8`). Blocks wider than the largest
    /// fitting tile are executed tile by tile so the working set stays
    /// cache-resident; `0` disables tiling (one full-width tile).
    pub cache_budget: usize,
    /// SIMD ceiling for the replay kernels, resolved against runtime
    /// CPU-feature detection at compile time ([`SimdMode::resolve`]).
    /// Purely an execution choice — the tape structure (fusion, slots,
    /// tiling) is identical at every level.
    pub simd: SimdMode,
}

impl Default for TapeOptions {
    /// Fusion and slot reuse on, 256 KiB cache budget (roughly half of a
    /// typical per-core L2, leaving room for the tape itself), SIMD
    /// auto-detected.
    fn default() -> Self {
        TapeOptions {
            fuse: true,
            reuse: true,
            cache_budget: 256 * 1024,
            simd: SimdMode::Auto,
        }
    }
}

impl TapeOptions {
    /// The default options with any `LBNN_TAPE_FUSION`,
    /// `LBNN_TAPE_SLOT_REUSE`, `LBNN_CACHE_BUDGET`, and `LBNN_SIMD`
    /// environment overrides applied (see the type docs). Unparsable
    /// values fall back to the defaults.
    pub fn from_env() -> Self {
        fn flag(name: &str, default: bool) -> bool {
            match std::env::var(name) {
                Ok(v) => !matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "0" | "false" | "off" | "no"
                ),
                Err(_) => default,
            }
        }
        let d = TapeOptions::default();
        TapeOptions {
            fuse: flag("LBNN_TAPE_FUSION", d.fuse),
            reuse: flag("LBNN_TAPE_SLOT_REUSE", d.reuse),
            cache_budget: std::env::var("LBNN_CACHE_BUDGET")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(d.cache_budget),
            simd: SimdMode::from_env(),
        }
    }
}

/// What the tape-locality pass did to a compiled tape, and how the tape
/// will execute ([`BitSliceEvaluator::tape_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeStats {
    /// Kernel instructions on the tape (one per executable cell).
    pub tape_len: usize,
    /// Fused chains of length ≥ 2 (runs of single-fanout cells whose
    /// interiors share the accumulator slot instead of slots of their
    /// own).
    pub fused_chains: usize,
    /// Instructions whose result goes to the accumulator slot (chain
    /// interiors; `tape_len - fused_instrs` results land in net slots).
    pub fused_instrs: usize,
    /// Frame slots a slot-per-node layout would need (the netlist size —
    /// what the frame cost before the locality pass).
    pub frame_slots_unoptimized: usize,
    /// Live data slots after renumbering and reuse. The allocated
    /// [`SliceFrame`] adds one dedicated accumulator scratch slot on
    /// top (slot index `frame_slots`).
    pub frame_slots: usize,
    /// Largest number of distinct frame slots any one netlist level
    /// touches — the per-level working set, in slots.
    pub max_level_working_set: usize,
    /// The cache budget (bytes) the tape was compiled with
    /// ([`TapeOptions::cache_budget`]).
    pub cache_budget: usize,
    /// The SIMD dispatch level tiles execute with — the requested
    /// [`TapeOptions::simd`] resolved against runtime CPU-feature
    /// detection.
    pub simd: SimdLevel,
}

/// The widest tile (words) from `{16, 8, 4, 2, 1}` not exceeding `max`.
#[inline]
pub(crate) fn largest_tile(max: usize) -> usize {
    if max >= 16 {
        16
    } else if max >= 8 {
        8
    } else if max >= 4 {
        4
    } else if max >= 2 {
        2
    } else {
        1
    }
}

/// Replays `tape` over every word of a frame buffer, tile by tile:
/// words `0 .. per` are split into tiles no wider than `tile_cap`
/// (largest-first from `{16, 8, 4, 2, 1}`) and each tile is routed to
/// the widest kernel `simd` allows. This is the shared engine behind
/// [`BitSliceEvaluator::run_block`] and the per-partition segment
/// replay of [`crate::partitioned::PartitionedEngine`].
///
/// Callers must guarantee every slot index on `tape` satisfies
/// `slot * per + per <= words.len()` — out-of-range indices panic on
/// the portable path but are undefined behaviour on the SIMD path.
#[inline]
pub(crate) fn replay_tape(
    tape: &[SliceInstr],
    simd: SimdLevel,
    tile_cap: usize,
    words: &mut [u64],
    per: usize,
) {
    let mut base = 0;
    while base < per {
        let tile = largest_tile(tile_cap.min(per - base));
        replay_tile_dispatch(tape, simd, tile, words, per, base);
        base += tile;
    }
}

/// Routes one tile to the widest kernel the resolved SIMD level and
/// the tile width allow; narrow tiles fall through to the next level
/// down (a 2-word tile can't fill a 256-bit vector), and everything
/// falls back to the portable scalar tiles.
pub(crate) fn replay_tile_dispatch(
    tape: &[SliceInstr],
    simd: SimdLevel,
    tile: usize,
    words: &mut [u64],
    per: usize,
    base: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY of the `unsafe` calls below: the target features were
        // verified by runtime detection when `simd` was resolved at
        // compile time, and every span the kernels touch is in bounds —
        // the caller guarantees `slot * per + per <= words.len()` for
        // every slot index on the tape, and the tiling loop keeps
        // `base + tile <= per`, so
        // `slot * per + base + tile <= words.len()`.
        debug_assert!(base + tile <= per);
        match (simd, tile) {
            (SimdLevel::Avx512, 16) => {
                return unsafe { simd::run_tile_avx512::<16>(tape, words, per, base) }
            }
            (SimdLevel::Avx512, 8) => {
                return unsafe { simd::run_tile_avx512::<8>(tape, words, per, base) }
            }
            (SimdLevel::Avx2, 16) => {
                return unsafe { simd::run_tile_avx2::<16>(tape, words, per, base) }
            }
            (SimdLevel::Avx2, 8) => {
                return unsafe { simd::run_tile_avx2::<8>(tape, words, per, base) }
            }
            (SimdLevel::Avx512 | SimdLevel::Avx2, 4) => {
                return unsafe { simd::run_tile_avx2::<4>(tape, words, per, base) }
            }
            (SimdLevel::Sse2, 16) => {
                return unsafe { simd::run_tile_sse2::<16>(tape, words, per, base) }
            }
            (SimdLevel::Sse2, 8) => {
                return unsafe { simd::run_tile_sse2::<8>(tape, words, per, base) }
            }
            (SimdLevel::Sse2, 4) => {
                return unsafe { simd::run_tile_sse2::<4>(tape, words, per, base) }
            }
            (SimdLevel::Avx512 | SimdLevel::Avx2 | SimdLevel::Sse2, 2) => {
                return unsafe { simd::run_tile_sse2::<2>(tape, words, per, base) }
            }
            _ => {}
        }
    }
    match tile {
        16 => replay_tile::<16>(tape, words, per, base),
        8 => replay_tile::<8>(tape, words, per, base),
        4 => replay_tile::<4>(tape, words, per, base),
        2 => replay_tile::<2>(tape, words, per, base),
        _ => replay_tile::<1>(tape, words, per, base),
    }
}

/// One tile of the kernel: replays the whole tape over words
/// `base .. base + TW` of every slot span. The monomorphized `TW`
/// turns every loop below into straight-line code. The body is
/// branch-free by construction — the fused-chain accumulator was
/// resolved to the dedicated scratch slot at compile time, so every
/// instruction is an unconditional load/load/store (an interior's
/// write is re-read by the very next instruction, keeping the
/// accumulator line in L1). Operand spans are loaded in full before
/// the result is stored, so an instruction may safely write the
/// recycled slot of one of its own operands.
fn replay_tile<const TW: usize>(tape: &[SliceInstr], words: &mut [u64], per: usize, base: usize) {
    for i in tape {
        let a0 = i.a as usize * per + base;
        let b0 = i.b as usize * per + base;
        let va: [u64; TW] = std::array::from_fn(|w| words[a0 + w]);
        let vb: [u64; TW] = std::array::from_fn(|w| words[b0 + w]);
        let r: [u64; TW] = std::array::from_fn(|w| {
            i.k[0] ^ (i.k[1] & vb[w]) ^ (i.k[2] & va[w]) ^ (i.k[3] & va[w] & vb[w])
        });
        let o0 = i.out as usize * per + base;
        words[o0..o0 + TW].copy_from_slice(&r);
    }
}

impl TapeStats {
    /// Bytes of the live frame at `words_per_net` words per slot.
    pub fn frame_bytes(&self, words_per_net: usize) -> usize {
        self.frame_slots * words_per_net * 8
    }

    /// Bytes of the largest per-level working set at `words_per_net`
    /// words per slot.
    pub fn max_level_working_set_bytes(&self, words_per_net: usize) -> usize {
        self.max_level_working_set * words_per_net * 8
    }

    /// The tile width cap (words) execution uses: the widest tile from
    /// `{16, 8, 4, 2, 1}` whose frame slice (`frame_slots × tile × 8`
    /// bytes) fits the cache budget. A zero budget means unlimited (cap
    /// 16 — the widest supported block needs no splitting).
    pub fn tile_words(&self) -> usize {
        if self.cache_budget == 0 {
            return 16;
        }
        for t in [16usize, 8, 4, 2] {
            if self.frame_slots * t * 8 <= self.cache_budget {
                return t;
            }
        }
        1
    }

    /// How many tiles one block of `words_per_net` words executes as
    /// under the current cap (1 when the whole block fits).
    pub fn tiles_at(&self, words_per_net: usize) -> usize {
        let cap = self.tile_words();
        let mut tiles = 0;
        let mut rem = words_per_net;
        while rem > 0 {
            rem -= largest_tile(cap.min(rem));
            tiles += 1;
        }
        tiles
    }
}

/// A bump allocator over frame slots with an optional free list: dead
/// slots are recycled LIFO (the hottest lines first) when `reuse` is on.
pub(crate) struct SlotPool {
    pub(crate) free: Vec<u32>,
    pub(crate) high: u32,
    pub(crate) reuse: bool,
}

impl SlotPool {
    pub(crate) fn alloc(&mut self) -> u32 {
        if let Some(s) = self.free.pop() {
            return s;
        }
        let s = self.high;
        self.high += 1;
        s
    }

    pub(crate) fn release(&mut self, slot: u32) {
        if self.reuse {
            self.free.push(slot);
        }
    }
}

/// A netlist compiled into a width-generic bit-sliced kernel tape.
///
/// Compilation walks the arena once, turning every executable cell into a
/// kernel instruction in topological order, then runs a locality pass
/// ([`TapeOptions`]): runs of single-fanout cells are fused into chains
/// whose intermediate words all share one dedicated accumulator slot
/// (kept cache-hot by back-to-back reuse, with no hot-loop branches),
/// frame slots are renumbered and recycled by a liveness allocator, and
/// execution is tiled over word sub-ranges when the live frame exceeds
/// the cache budget. Evaluation then processes the batch one [`SliceFrame`] block
/// at a time — `64 × words_per_net` lanes per block: load each primary
/// input's packed words into the frame, replay the tape, read the primary
/// outputs back. The tape itself is width-independent (instructions carry
/// slot indices and ANF masks), so one compiled evaluator serves every
/// frame width. Results are bit-identical to [`evaluate`] on the same
/// inputs at every width, whatever the options.
///
/// # Example
///
/// ```
/// use lbnn_netlist::eval::{evaluate, BitSliceEvaluator};
/// use lbnn_netlist::{Lanes, Netlist, Op};
/// let mut nl = Netlist::new("f");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::Nand, a, b);
/// nl.add_output(y, "y");
/// let inputs = [
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ];
/// let sliced = BitSliceEvaluator::compile(&nl);
/// assert_eq!(
///     sliced.evaluate(&inputs).unwrap(),
///     evaluate(&nl, &inputs).unwrap(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct BitSliceEvaluator {
    /// Straight-line program, one instruction per executable node.
    tape: Vec<SliceInstr>,
    /// Netlist node id behind each tape instruction (`tape[i]` computes
    /// cell `cells[i]`) — the instruction → cell-id table hot patching
    /// rewrites through.
    cells: Vec<u32>,
    /// Frame slot of each primary input, in [`Netlist::inputs`] order.
    inputs: Vec<u32>,
    /// Frame slot of each primary output, in [`Netlist::outputs`] order.
    outputs: Vec<u32>,
    /// Allocated frame size in slots: the live data slots after
    /// renumbering and reuse, plus the accumulator scratch slot.
    slots: usize,
    /// What the locality pass did.
    stats: TapeStats,
}

impl BitSliceEvaluator {
    /// Compiles `netlist` into a kernel tape with
    /// [`TapeOptions::from_env`] (the defaults unless overridden by
    /// environment variables; see [`TapeOptions`]).
    pub fn compile(netlist: &Netlist) -> Self {
        BitSliceEvaluator::compile_with(netlist, TapeOptions::from_env())
    }

    /// Compiles `netlist` into a kernel tape with explicit locality
    /// options.
    ///
    /// The pass is deterministic and purely structural: fusion, tape
    /// order, and slot assignment depend only on the netlist's wiring
    /// (never on gate kinds), so compiling a patched netlist afresh
    /// yields the same structure as patching a compiled tape in place —
    /// the invariant [`BitSliceEvaluator::patched`] relies on.
    pub fn compile_with(netlist: &Netlist, options: TapeOptions) -> Self {
        let n = netlist.len();
        const NEVER: usize = usize::MAX;

        // 1. Chain fusion: for each gate, at most one single-fanout,
        // non-input fanin is fed through the accumulator instead of the
        // frame. `counts == 1` guarantees the producer has exactly this
        // one consumer (a duplicate operand or a primary output bumps the
        // count past 1), so chains are disjoint by construction.
        let counts = netlist.fanout_counts();
        let mut reg_source = vec![REG; n]; // consumer -> fanin fed via acc
        let mut fused_out = vec![false; n]; // value lives in acc, no slot
        if options.fuse {
            for (id, node) in netlist.iter() {
                if node.op() == Op::Input {
                    continue;
                }
                for &f in node.fanins() {
                    let fi = f.index();
                    if counts[fi] == 1 && netlist.node(f).op() != Op::Input && !fused_out[fi] {
                        reg_source[id.index()] = fi as u32;
                        fused_out[fi] = true;
                        break;
                    }
                }
            }
        }

        // 2. Tape order: arena order, except chain interiors are pulled
        // forward to sit contiguously before their terminator, so each
        // interior's accumulator value is consumed by the very next
        // instruction. Every frame operand of a chain member is an input
        // or another chain's terminator at an earlier arena position, so
        // the order stays topological.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut fused_chains = 0usize;
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input || fused_out[id.index()] {
                continue;
            }
            let start = order.len();
            let mut cur = id.index() as u32;
            loop {
                order.push(cur);
                let src = reg_source[cur as usize];
                if src == REG {
                    break;
                }
                cur = src;
            }
            order[start..].reverse();
            if order.len() - start >= 2 {
                fused_chains += 1;
            }
        }

        // 3. Liveness: the last tape position reading each node from the
        // frame (accumulator reads don't count — interiors never get
        // slots).
        let mut last_read = vec![NEVER; n];
        for (p, &yid) in order.iter().enumerate() {
            let y = yid as usize;
            for &f in netlist.node(NodeId::new(yid)).fanins() {
                if f.index() as u32 != reg_source[y] {
                    last_read[f.index()] = p;
                }
            }
        }

        // 4. Slot assignment. Releases happen *before* the defining
        // instruction's slot is allocated, so a value may land in the
        // slot of the operand that died feeding it — safe because the
        // kernel loads both operand spans in full before storing.
        let mut pinned = vec![false; n];
        for o in netlist.outputs() {
            pinned[o.node.index()] = true;
        }
        let mut slot_of = vec![REG; n];
        let mut pool = SlotPool {
            free: Vec::new(),
            high: 0,
            reuse: options.reuse,
        };
        for &i in netlist.inputs() {
            slot_of[i.index()] = pool.alloc();
        }
        // Unread, unpinned inputs free their slot right away: every
        // block writes all input slots before the tape runs, so a gate
        // reusing the slot simply overwrites the dead words.
        for &i in netlist.inputs() {
            let ii = i.index();
            if last_read[ii] == NEVER && !pinned[ii] {
                pool.release(slot_of[ii]);
            }
        }
        for (p, &yid) in order.iter().enumerate() {
            let y = yid as usize;
            let fan = netlist.node(NodeId::new(yid)).fanins();
            let mut released = [REG; 2];
            let mut nr = 0;
            for &f in fan {
                let fi = f.index();
                if fi as u32 == reg_source[y] {
                    continue;
                }
                if last_read[fi] == p
                    && !pinned[fi]
                    && released[..nr].iter().all(|&r| r != fi as u32)
                {
                    pool.release(slot_of[fi]);
                    released[nr] = fi as u32;
                    nr += 1;
                }
            }
            if !fused_out[y] {
                slot_of[y] = pool.alloc();
                // A stored value nothing reads (and no output pins) frees
                // its slot immediately for the next definition.
                if last_read[y] == NEVER && !pinned[y] {
                    pool.release(slot_of[y]);
                }
            }
        }
        let frame_slots = pool.high as usize;
        // The chain accumulator lives in a dedicated scratch slot just
        // past the live data slots. Resolving `REG` to a real slot here
        // keeps the hot kernel branch-free (every operand/result is an
        // unconditional indexed load/store); the slot is written and
        // re-read back-to-back, so it stays cache-hot regardless of
        // frame size. It is always reserved — arity-0/1 instructions
        // read it behind all-zero operand masks even in unfused tapes.
        let acc_slot = frame_slots as u32;

        // 5. Emit the tape and the instruction → cell-id table.
        let mut tape = Vec::with_capacity(order.len());
        let mut cells = Vec::with_capacity(order.len());
        for &yid in &order {
            let y = yid as usize;
            let node = netlist.node(NodeId::new(yid));
            let fan = node.fanins();
            let rs = reg_source[y];
            let operand = |f: NodeId| {
                if f.index() as u32 == rs {
                    acc_slot
                } else {
                    slot_of[f.index()]
                }
            };
            // Arity 0 reads the accumulator behind all-zero operand
            // masks; arity 1 duplicates its operand into `b`.
            let (a, b) = match fan.len() {
                0 => (acc_slot, acc_slot),
                1 => (operand(fan[0]), operand(fan[0])),
                _ => (operand(fan[0]), operand(fan[1])),
            };
            let out = if fused_out[y] { acc_slot } else { slot_of[y] };
            tape.push(SliceInstr {
                a,
                b,
                out,
                k: node.op().anf_masks(),
            });
            cells.push(yid);
        }

        // 6. Per-level working set: the largest number of distinct live
        // slots the instructions of any one netlist level touch.
        let mut level = vec![0u32; n];
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            level[id.index()] = node
                .fanins()
                .iter()
                .map(|f| level[f.index()])
                .max()
                .map_or(0, |m| m + 1);
        }
        let max_level = order.iter().map(|&y| level[y as usize]).max().unwrap_or(0) as usize;
        let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
        for (p, &yid) in order.iter().enumerate() {
            by_level[level[yid as usize] as usize].push(p);
        }
        let mut seen = vec![u32::MAX; frame_slots + 1];
        let mut max_level_working_set = 0usize;
        for (l, positions) in by_level.iter().enumerate() {
            let mut touched = 0usize;
            for &p in positions {
                let i = &tape[p];
                for slot in [i.a, i.b, i.out] {
                    if seen[slot as usize] != l as u32 {
                        seen[slot as usize] = l as u32;
                        touched += 1;
                    }
                }
            }
            max_level_working_set = max_level_working_set.max(touched);
        }

        let stats = TapeStats {
            tape_len: tape.len(),
            fused_chains,
            fused_instrs: tape.iter().filter(|i| i.out == acc_slot).count(),
            frame_slots_unoptimized: n,
            frame_slots,
            max_level_working_set,
            cache_budget: options.cache_budget,
            // Feature detection happens once here, never in the hot loop.
            simd: options.simd.resolve(),
        };
        BitSliceEvaluator {
            tape,
            cells,
            inputs: netlist
                .inputs()
                .iter()
                .map(|i| slot_of[i.index()])
                .collect(),
            outputs: netlist
                .outputs()
                .iter()
                .map(|o| slot_of[o.node.index()])
                .collect(),
            // The allocated frame = live data slots + the accumulator
            // scratch slot.
            slots: frame_slots + 1,
            stats,
        }
    }

    /// A copy of this tape with the ANF masks of every patched cell
    /// replaced, leaving all structure (operand slots, instruction
    /// order, fusion, frame layout) untouched.
    ///
    /// Fusion and slot assignment are purely structural (see
    /// [`BitSliceEvaluator::compile_with`]), and every instruction —
    /// chain interiors included — stores its cell's masks verbatim, so a
    /// mask rewrite inside a fused chain *is* the re-derived fused
    /// chain: the result is bit-identical to a fresh compile of the
    /// patched netlist.
    ///
    /// Callers are expected to have validated `patches` against the
    /// source netlist ([`PatchSet::validate`]); this method only
    /// requires each target to have a tape instruction (looked up
    /// through the instruction → cell-id table).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNode`] if a patched id has no
    /// instruction — out of range, or a primary input.
    pub fn patched(&self, patches: &PatchSet) -> Result<BitSliceEvaluator, NetlistError> {
        let mut index = vec![u32::MAX; self.stats.frame_slots_unoptimized];
        for (p, &cell) in self.cells.iter().enumerate() {
            index[cell as usize] = p as u32;
        }
        let mut out = self.clone();
        for (id, op) in patches.iter() {
            let p = match index.get(id.index()) {
                Some(&p) if p != u32::MAX => p as usize,
                _ => return Err(NetlistError::InvalidNode { id }),
            };
            out.tape[p].k = op.anf_masks();
        }
        Ok(out)
    }

    /// Number of kernel instructions (executable nets).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// What the locality pass did to this tape, and how blocks will be
    /// tiled ([`TapeStats`]).
    pub fn tape_stats(&self) -> TapeStats {
        self.stats
    }

    /// The SIMD dispatch level this tape executes with: the requested
    /// [`TapeOptions::simd`] clamped to what runtime CPU-feature
    /// detection found at compile time.
    pub fn simd_level(&self) -> SimdLevel {
        self.stats.simd
    }

    /// The cells whose instructions are fused chain interiors (results
    /// go to the accumulator slot, not a net slot of their own). Useful
    /// for aiming a patch at the inside of a chain in tests.
    pub fn fused_cells(&self) -> Vec<NodeId> {
        let acc = self.stats.frame_slots as u32;
        self.tape
            .iter()
            .zip(&self.cells)
            .filter(|(i, _)| i.out == acc)
            .map(|(_, &c)| NodeId::new(c))
            .collect()
    }

    /// Number of primary inputs the evaluator expects.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs the evaluator produces.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// A 64-lane frame sized for this evaluator's live slots; see
    /// [`BitSliceEvaluator::frame_with_words`] for wider slices.
    pub fn frame(&self) -> SliceFrame {
        self.frame_with_words(1)
    }

    /// A frame sized for this evaluator's live slots at `words_per_net`
    /// words (`64 × words_per_net` lanes) per block.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn frame_with_words(&self, words_per_net: usize) -> SliceFrame {
        SliceFrame::with_width(self.slots, words_per_net)
    }

    /// Replays the kernel tape over one frame in place, at the frame's
    /// width (`frame.lanes()` samples per net).
    ///
    /// The caller loads the primary-input words first (slots from the
    /// compiled input map); afterwards every *live* net's slot holds its
    /// value for all lanes of the block (fused chain interiors never
    /// materialize). [`BitSliceEvaluator::evaluate`] wraps the
    /// packing/unpacking; this is the raw kernel. Blocks execute as one
    /// or more cache-budget-sized tiles over the word range
    /// ([`TapeStats::tile_words`]); each tile width from
    /// [`SUPPORTED_SLICE_WORDS`] runs a monomorphized kernel whose
    /// per-net word loop the compiler unrolls, and any `words_per_net`
    /// (supported or not) is chunked from that same set with identical
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if `frame` has fewer slots than the compiled live frame.
    #[inline]
    pub fn run_block(&self, frame: &mut SliceFrame) {
        assert!(frame.slots() >= self.slots, "frame too small for tape");
        replay_tape(
            &self.tape,
            self.stats.simd,
            self.stats.tile_words(),
            &mut frame.words,
            frame.words_per_net,
        );
    }

    /// Evaluates the whole batch, reusing `frame` as scratch and
    /// processing `frame.lanes()` lanes per block. Semantics match
    /// [`evaluate`] at every width; `lanes` overrides the batch width
    /// (used by no-input netlists, where width cannot be inferred from
    /// `inputs`).
    ///
    /// A batch whose lane count is not a multiple of the block width ends
    /// in a partial block: missing input words are loaded as zero and the
    /// tail lanes of every output word are masked off by the returned
    /// [`Lanes`], so unused lanes are never published.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts or
    /// fewer lanes than `lanes`.
    pub fn evaluate_with(
        &self,
        inputs: &[Lanes],
        lanes: usize,
        frame: &mut SliceFrame,
    ) -> Result<Vec<Lanes>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        for l in inputs {
            assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
        }
        Ok(self.eval_blocks(lanes, frame, |i| inputs[i].words()))
    }

    /// [`BitSliceEvaluator::evaluate_with`] over a flat pre-packed input
    /// buffer instead of per-input [`Lanes`]: input `i`'s lane column
    /// occupies `packed[i * stride .. (i + 1) * stride]` words
    /// (`stride = lanes.div_ceil(64)` — the layout
    /// [`Lanes::pack_rows_into`] produces, and the layout of
    /// `num_inputs` concatenated `Lanes`). This is the zero-copy serving
    /// entry: batches stream straight from one reusable buffer into the
    /// frame with no per-batch `Vec<Lanes>` materialization.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != num_inputs * lanes.div_ceil(64)`.
    pub fn evaluate_packed_with(
        &self,
        packed: &[u64],
        num_inputs: usize,
        lanes: usize,
        frame: &mut SliceFrame,
    ) -> Result<Vec<Lanes>, NetlistError> {
        if num_inputs != self.inputs.len() {
            return Err(NetlistError::InputArity {
                expected: self.inputs.len(),
                got: num_inputs,
            });
        }
        let stride = lanes.div_ceil(64);
        assert_eq!(
            packed.len(),
            num_inputs * stride,
            "packed buffer does not hold {num_inputs} columns of {stride} words"
        );
        Ok(self.eval_blocks(lanes, frame, |i| &packed[i * stride..(i + 1) * stride]))
    }

    /// The shared block loop: `input_words(i)` yields input `i`'s packed
    /// lane column (at least `lanes.div_ceil(64)` words).
    fn eval_blocks<'a, F: Fn(usize) -> &'a [u64]>(
        &self,
        lanes: usize,
        frame: &mut SliceFrame,
        input_words: F,
    ) -> Vec<Lanes> {
        frame.reshape(self.slots);
        let per = frame.words_per_net;
        let total_words = lanes.div_ceil(64);
        let blocks = lanes.div_ceil(frame.lanes());
        let mut out_words: Vec<Vec<u64>> =
            vec![Vec::with_capacity(total_words); self.outputs.len()];
        for block in 0..blocks {
            let base = block * per;
            // A partial final block covers fewer than `per` input words;
            // the rest of each input span is zeroed so the kernel never
            // reads stale lanes from a previous batch.
            let avail = (total_words - base).min(per);
            for (i, &slot) in self.inputs.iter().enumerate() {
                let span = slot as usize * per;
                let in_words = &input_words(i)[base..base + avail];
                frame.words[span..span + avail].copy_from_slice(in_words);
                frame.words[span + avail..span + per].fill(0);
            }
            self.run_block(frame);
            for (words, &slot) in out_words.iter_mut().zip(&self.outputs) {
                let span = slot as usize * per;
                words.extend_from_slice(&frame.words[span..span + avail]);
            }
        }
        out_words
            .into_iter()
            .map(|words| Lanes::from_words(words, lanes))
            .collect()
    }

    /// Evaluates the netlist across all lanes — the bit-sliced counterpart
    /// of [`evaluate`], with identical semantics and results.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts.
    pub fn evaluate(&self, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
        let lanes = inputs.first().map_or(0, Lanes::len);
        self.evaluate_with(inputs, lanes, &mut self.frame())
    }
}

/// Explicit `std::arch` replays of the ANF word kernel. Each function
/// mirrors [`BitSliceEvaluator::run_tile`] exactly — same tape walk,
/// same `out = k0 ^ (k1 & b) ^ (k2 & a) ^ (k3 & a & b)` per word, same
/// load-both-operands-then-store order per vector group (groups within
/// a span are disjoint, so an instruction writing the recycled slot of
/// one of its own operands stays safe) — but processes 2/4/8 words per
/// vector op with the ANF masks broadcast across the vector.
///
/// # Safety
///
/// Callers must have verified the target feature via runtime detection,
/// and must guarantee `slot * per + base + TW <= words.len()` for every
/// slot index on the tape (`TW` a multiple of the vector width) — see
/// the dispatch comment in [`BitSliceEvaluator::run_tile_dispatch`].
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::SliceInstr;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn run_tile_avx512<const TW: usize>(
        tape: &[SliceInstr],
        words: &mut [u64],
        per: usize,
        base: usize,
    ) {
        let p = words.as_mut_ptr();
        for i in tape {
            let a0 = i.a as usize * per + base;
            let b0 = i.b as usize * per + base;
            let o0 = i.out as usize * per + base;
            let k0 = _mm512_set1_epi64(i.k[0] as i64);
            let k1 = _mm512_set1_epi64(i.k[1] as i64);
            let k2 = _mm512_set1_epi64(i.k[2] as i64);
            let k3 = _mm512_set1_epi64(i.k[3] as i64);
            let mut w = 0;
            while w < TW {
                let va = _mm512_loadu_si512(p.add(a0 + w) as *const __m512i);
                let vb = _mm512_loadu_si512(p.add(b0 + w) as *const __m512i);
                // Factored ANF: k0 ^ (k1&b) ^ (a & (k2 ^ (k3&b))) — one
                // fewer AND than the textbook 4-term form.
                let r = _mm512_xor_si512(
                    _mm512_xor_si512(k0, _mm512_and_si512(k1, vb)),
                    _mm512_and_si512(va, _mm512_xor_si512(k2, _mm512_and_si512(k3, vb))),
                );
                _mm512_storeu_si512(p.add(o0 + w) as *mut __m512i, r);
                w += 8;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_tile_avx2<const TW: usize>(
        tape: &[SliceInstr],
        words: &mut [u64],
        per: usize,
        base: usize,
    ) {
        let p = words.as_mut_ptr();
        for i in tape {
            let a0 = i.a as usize * per + base;
            let b0 = i.b as usize * per + base;
            let o0 = i.out as usize * per + base;
            let k0 = _mm256_set1_epi64x(i.k[0] as i64);
            let k1 = _mm256_set1_epi64x(i.k[1] as i64);
            let k2 = _mm256_set1_epi64x(i.k[2] as i64);
            let k3 = _mm256_set1_epi64x(i.k[3] as i64);
            let mut w = 0;
            while w < TW {
                let va = _mm256_loadu_si256(p.add(a0 + w) as *const __m256i);
                let vb = _mm256_loadu_si256(p.add(b0 + w) as *const __m256i);
                // Factored ANF: k0 ^ (k1&b) ^ (a & (k2 ^ (k3&b))).
                let r = _mm256_xor_si256(
                    _mm256_xor_si256(k0, _mm256_and_si256(k1, vb)),
                    _mm256_and_si256(va, _mm256_xor_si256(k2, _mm256_and_si256(k3, vb))),
                );
                _mm256_storeu_si256(p.add(o0 + w) as *mut __m256i, r);
                w += 4;
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn run_tile_sse2<const TW: usize>(
        tape: &[SliceInstr],
        words: &mut [u64],
        per: usize,
        base: usize,
    ) {
        let p = words.as_mut_ptr();
        for i in tape {
            let a0 = i.a as usize * per + base;
            let b0 = i.b as usize * per + base;
            let o0 = i.out as usize * per + base;
            let k0 = _mm_set1_epi64x(i.k[0] as i64);
            let k1 = _mm_set1_epi64x(i.k[1] as i64);
            let k2 = _mm_set1_epi64x(i.k[2] as i64);
            let k3 = _mm_set1_epi64x(i.k[3] as i64);
            let mut w = 0;
            while w < TW {
                let va = _mm_loadu_si128(p.add(a0 + w) as *const __m128i);
                let vb = _mm_loadu_si128(p.add(b0 + w) as *const __m128i);
                // Factored ANF: k0 ^ (k1&b) ^ (a & (k2 ^ (k3&b))).
                let r = _mm_xor_si128(
                    _mm_xor_si128(k0, _mm_and_si128(k1, vb)),
                    _mm_and_si128(va, _mm_xor_si128(k2, _mm_and_si128(k3, vb))),
                );
                _mm_storeu_si128(p.add(o0 + w) as *mut __m128i, r);
                w += 2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Op;

    #[test]
    fn lanes_pack_unpack() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let lanes = Lanes::from_bools(&bits);
        assert_eq!(lanes.len(), 130);
        assert_eq!(lanes.to_bools(), bits);
        assert_eq!(lanes.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn pack_rows_transposes_and_checks_width() {
        // Round trip: pack 70 rows (multi-word lanes), read each sample
        // back from its lane.
        let rows: Vec<Vec<bool>> = (0..70)
            .map(|j| (0..5).map(|i| (j + i) % 3 == 0).collect())
            .collect();
        let cols = Lanes::pack_rows(&rows, 5);
        assert_eq!(cols.len(), 5);
        for (j, row) in rows.iter().enumerate() {
            for (i, &bit) in row.iter().enumerate() {
                assert_eq!(cols[i].get(j), bit, "signal {i} sample {j}");
            }
        }
        assert!(Lanes::pack_rows::<Vec<bool>>(&[], 3)
            .iter()
            .all(Lanes::is_empty));
    }

    /// The word-level transpose against a naive per-bit reference, plus
    /// the involution property (transposing twice is the identity).
    #[test]
    fn transpose_64x64_matches_naive() {
        for seed in 0..4u64 {
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut rng = || {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            let orig: [u64; 64] = std::array::from_fn(|_| rng());
            let mut m = orig;
            transpose_64x64(&mut m);
            for (r, row) in m.iter().enumerate() {
                for (c, col) in orig.iter().enumerate() {
                    assert_eq!(row >> c & 1, col >> r & 1, "seed {seed} row {r} col {c}");
                }
            }
            transpose_64x64(&mut m);
            assert_eq!(m, orig, "transpose must be an involution");
        }
    }

    /// `pack_rows_into` produces exactly the concatenated words of
    /// `pack_rows`, and a naive per-bit pack agrees with both — across
    /// row counts and widths that straddle the 64×64 block edges.
    #[test]
    fn pack_rows_into_matches_naive_packing() {
        for (nrows, width) in [
            (0, 5),
            (1, 1),
            (63, 64),
            (64, 65),
            (65, 63),
            (130, 70),
            (70, 129),
        ] {
            let rows: Vec<Vec<bool>> = (0..nrows)
                .map(|j| (0..width).map(|i| (j * 31 + i * 7) % 3 == 0).collect())
                .collect();
            let mut flat = Vec::new();
            let stride = Lanes::pack_rows_into(&rows, width, &mut flat);
            assert_eq!(stride, nrows.div_ceil(64));
            assert_eq!(flat.len(), width * stride);
            let cols = Lanes::pack_rows(&rows, width);
            for (i, col) in cols.iter().enumerate() {
                assert_eq!(
                    &flat[i * stride..(i + 1) * stride],
                    col.words(),
                    "{nrows}x{width} signal {i}"
                );
                // The naive reference: one get() per bit.
                for (j, row) in rows.iter().enumerate() {
                    assert_eq!(col.get(j), row[i], "{nrows}x{width} signal {i} sample {j}");
                }
            }
        }
    }

    #[test]
    fn unpack_rows_inverts_pack_rows() {
        for (nrows, width) in [(0, 3), (1, 1), (63, 65), (65, 64), (130, 70)] {
            let rows: Vec<Vec<bool>> = (0..nrows)
                .map(|j| (0..width).map(|i| (j * 13 + i * 11) % 5 < 2).collect())
                .collect();
            let cols = Lanes::pack_rows(&rows, width);
            assert_eq!(Lanes::unpack_rows(&cols), rows, "{nrows}x{width}");
        }
        assert!(Lanes::unpack_rows(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "inconsistent lane counts")]
    fn unpack_rows_rejects_mismatched_columns() {
        let _ = Lanes::unpack_rows(&[Lanes::zeros(3), Lanes::zeros(4)]);
    }

    #[test]
    fn simd_mode_parses_and_resolves() {
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse(" AVX2 "), Some(SimdMode::Avx2));
        assert_eq!(SimdMode::parse("avx512"), Some(SimdMode::Avx512));
        assert_eq!(SimdMode::parse("sse2"), Some(SimdMode::Sse2));
        for off in ["off", "0", "none", "scalar"] {
            assert_eq!(SimdMode::parse(off), Some(SimdMode::Off));
        }
        assert_eq!(SimdMode::parse("altivec"), None);
        assert_eq!(SimdMode::Off.resolve(), SimdLevel::Scalar);
        // `Auto` prefers AVX2 over AVX-512 (see the SimdMode docs);
        // AVX-512 kernels run only on explicit request.
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            assert_eq!(SimdMode::Auto.resolve(), SimdLevel::Avx2);
        }
        // Whatever the host, a request never resolves *above* itself.
        assert_ne!(SimdMode::Avx2.resolve(), SimdLevel::Avx512);
        assert!(matches!(
            SimdMode::Sse2.resolve(),
            SimdLevel::Sse2 | SimdLevel::Scalar
        ));
        assert_eq!(format!("{}", SimdMode::Avx512), "avx512");
        assert_eq!(format!("{}", SimdLevel::Scalar), "scalar");
    }

    /// Every SIMD dispatch level the host can execute is bit-identical
    /// to the oracle at every supported width, ragged tails included —
    /// the netlist-level half of the conformance satellite.
    #[test]
    fn simd_variants_match_oracle_at_every_width() {
        use crate::random::RandomDag;
        let modes = [
            SimdMode::Auto,
            SimdMode::Avx512,
            SimdMode::Avx2,
            SimdMode::Sse2,
            SimdMode::Off,
        ];
        for seed in 0..3 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            for mode in modes {
                let sliced = BitSliceEvaluator::compile_with(
                    &nl,
                    TapeOptions {
                        simd: mode,
                        ..TapeOptions::default()
                    },
                );
                for words in SUPPORTED_SLICE_WORDS {
                    let mut frame = sliced.frame_with_words(words);
                    for lanes in [1usize, 63, 64 * words, 64 * words + 1] {
                        let inputs: Vec<Lanes> = (0..nl.inputs().len())
                            .map(|i| {
                                let bits: Vec<bool> = (0..lanes)
                                    .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                                    .collect();
                                Lanes::from_bools(&bits)
                            })
                            .collect();
                        let want = evaluate(&nl, &inputs).unwrap();
                        let got = sliced.evaluate_with(&inputs, lanes, &mut frame).unwrap();
                        assert_eq!(got, want, "seed {seed} simd {mode} words {words}");
                    }
                }
            }
        }
    }

    /// The packed flat-buffer entry is bit-identical to the `Lanes`
    /// entry and validates its inputs.
    #[test]
    fn evaluate_packed_matches_lanes_path() {
        use crate::random::RandomDag;
        let nl = RandomDag::loose(6, 4, 7).outputs(2).generate(5);
        let sliced = BitSliceEvaluator::compile(&nl);
        let n_in = nl.inputs().len();
        for words in [1usize, 4, 16] {
            let mut frame = sliced.frame_with_words(words);
            for lanes in [1usize, 64 * words, 64 * words + 7, 517] {
                let rows: Vec<Vec<bool>> = (0..lanes)
                    .map(|j| (0..n_in).map(|i| (i * 17 + j * 3) % 4 == 0).collect())
                    .collect();
                let inputs = Lanes::pack_rows(&rows, n_in);
                let mut packed = Vec::new();
                Lanes::pack_rows_into(&rows, n_in, &mut packed);
                let want = sliced.evaluate_with(&inputs, lanes, &mut frame).unwrap();
                let got = sliced
                    .evaluate_packed_with(&packed, n_in, lanes, &mut frame)
                    .unwrap();
                assert_eq!(got, want, "words {words} lanes {lanes}");
            }
        }
        assert!(matches!(
            sliced.evaluate_packed_with(&[], 0, 0, &mut sliced.frame()),
            Err(NetlistError::InputArity { .. })
        ));
    }

    #[test]
    fn simd_level_is_resolved_at_compile_time() {
        let mut nl = Netlist::new("s");
        let a = nl.add_input("a");
        nl.add_output(a, "y");
        let off = BitSliceEvaluator::compile_with(
            &nl,
            TapeOptions {
                simd: SimdMode::Off,
                ..TapeOptions::default()
            },
        );
        assert_eq!(off.simd_level(), SimdLevel::Scalar);
        assert_eq!(off.tape_stats().simd, SimdLevel::Scalar);
        let auto = BitSliceEvaluator::compile_with(&nl, TapeOptions::default());
        if cfg!(target_arch = "x86_64") {
            assert_ne!(auto.simd_level(), SimdLevel::Scalar, "x86_64 has SSE2");
        } else {
            assert_eq!(auto.simd_level(), SimdLevel::Scalar);
        }
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn pack_rows_rejects_ragged_rows() {
        let _ = Lanes::pack_rows(&[vec![true, false], vec![true]], 2);
    }

    #[test]
    fn ones_masks_tail() {
        let l = Lanes::ones(70);
        assert_eq!(l.count_ones(), 70);
        assert_eq!(l.words().len(), 2);
        assert_eq!(l.words()[1] >> 6, 0, "tail bits must stay clear");
    }

    #[test]
    fn evaluate_matches_scalar_eval() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_gate1(Op::Not, b);
        let t = nl.add_gate2(Op::Xnor, a, nb);
        let y = nl.add_gate2(Op::Nor, t, c);
        nl.add_output(y, "y");
        nl.add_output(t, "t");

        // All 8 combinations as 8 lanes.
        let mut ins = vec![Lanes::zeros(8), Lanes::zeros(8), Lanes::zeros(8)];
        for lane in 0..8 {
            for (bit, lanes) in ins.iter_mut().enumerate() {
                lanes.set(lane, lane & (1 << bit) != 0);
            }
        }
        let outs = evaluate(&nl, &ins).unwrap();
        for lane in 0..8 {
            let scalar = nl.eval_bools(&[lane & 1 != 0, lane & 2 != 0, lane & 4 != 0]);
            assert_eq!(outs[0].get(lane), scalar[0], "lane {lane}");
            assert_eq!(outs[1].get(lane), scalar[1], "lane {lane}");
        }
    }

    #[test]
    fn evaluate_checks_input_count() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        nl.add_output(a, "y");
        assert!(matches!(
            evaluate(&nl, &[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn constants_across_lanes() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::from_bools(&[true, false, true])]).unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
    }

    #[test]
    fn bitsliced_matches_evaluate() {
        use crate::random::RandomDag;
        for seed in 0..6 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            let sliced = BitSliceEvaluator::compile(&nl);
            assert_eq!(sliced.num_inputs(), nl.inputs().len());
            assert_eq!(sliced.num_outputs(), nl.outputs().len());
            // Deliberately awkward widths: sub-word, exact word, multi-word
            // with tail.
            for lanes in [1usize, 63, 64, 65, 130, 256] {
                let inputs: Vec<Lanes> = (0..nl.inputs().len())
                    .map(|i| {
                        let bits: Vec<bool> = (0..lanes)
                            .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                            .collect();
                        Lanes::from_bools(&bits)
                    })
                    .collect();
                let want = evaluate(&nl, &inputs).unwrap();
                let got = sliced.evaluate(&inputs).unwrap();
                assert_eq!(got, want, "seed {seed} lanes {lanes}");
            }
        }
    }

    #[test]
    fn bitsliced_constants_and_arity_errors() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        let out = sliced
            .evaluate(&[Lanes::from_bools(&[true, false, true])])
            .unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
        assert!(matches!(
            sliced.evaluate(&[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn every_slice_width_matches_evaluate() {
        use crate::random::RandomDag;
        for seed in 0..4 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            let sliced = BitSliceEvaluator::compile(&nl);
            // Awkward batch widths per frame width: sub-block, exact
            // block, multi-block with tail. 3 words per net exercises the
            // tile-chunked generic path.
            for words in [1usize, 2, 3, 4, 8] {
                let mut frame = sliced.frame_with_words(words);
                assert_eq!(frame.lanes(), 64 * words);
                for lanes in [1usize, 63, 64 * words, 64 * words + 1, 130 * words] {
                    let inputs: Vec<Lanes> = (0..nl.inputs().len())
                        .map(|i| {
                            let bits: Vec<bool> = (0..lanes)
                                .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                                .collect();
                            Lanes::from_bools(&bits)
                        })
                        .collect();
                    let want = evaluate(&nl, &inputs).unwrap();
                    let got = sliced.evaluate_with(&inputs, lanes, &mut frame).unwrap();
                    assert_eq!(got, want, "seed {seed} words {words} lanes {lanes}");
                }
            }
        }
    }

    /// Every combination of locality options is bit-identical to the
    /// oracle, including tile widths forced by tiny cache budgets.
    #[test]
    fn tape_options_variants_match_oracle() {
        use crate::random::RandomDag;
        let variants = [
            TapeOptions::default(),
            TapeOptions {
                fuse: false,
                ..TapeOptions::default()
            },
            TapeOptions {
                reuse: false,
                ..TapeOptions::default()
            },
            TapeOptions {
                fuse: false,
                reuse: false,
                ..TapeOptions::default()
            },
            TapeOptions {
                cache_budget: 64, // frame never fits: 1-word tiles
                ..TapeOptions::default()
            },
            TapeOptions {
                cache_budget: 0, // unlimited: one full-width tile
                ..TapeOptions::default()
            },
        ];
        for seed in 0..3 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            for opt in variants {
                let sliced = BitSliceEvaluator::compile_with(&nl, opt);
                for words in [1usize, 3, 8] {
                    let mut frame = sliced.frame_with_words(words);
                    for lanes in [1usize, 63, 64 * words + 1] {
                        let inputs: Vec<Lanes> = (0..nl.inputs().len())
                            .map(|i| {
                                let bits: Vec<bool> = (0..lanes)
                                    .map(|l| (seed as usize + i * 13 + l * 5).is_multiple_of(3))
                                    .collect();
                                Lanes::from_bools(&bits)
                            })
                            .collect();
                        let want = evaluate(&nl, &inputs).unwrap();
                        let got = sliced.evaluate_with(&inputs, lanes, &mut frame).unwrap();
                        assert_eq!(got, want, "seed {seed} opt {opt:?} words {words}");
                    }
                }
            }
        }
    }

    /// A hand-built single-fanout run fuses into one chain: interiors
    /// vanish from the frame, the live footprint shrinks, and the fused
    /// tape still matches the oracle.
    #[test]
    fn fusion_fuses_chains_and_shrinks_frame() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate2(Op::And, a, b);
        let g2 = nl.add_gate1(Op::Not, g1);
        let g3 = nl.add_gate2(Op::Xor, g2, a);
        let g4 = nl.add_gate1(Op::Not, g3);
        nl.add_output(g4, "y");

        let sliced = BitSliceEvaluator::compile_with(&nl, TapeOptions::default());
        let stats = sliced.tape_stats();
        assert_eq!(stats.tape_len, 4);
        assert_eq!(stats.fused_chains, 1, "g1→g2→g3→g4 is one chain");
        assert_eq!(stats.fused_instrs, 3, "g1, g2, g3 stay in the accumulator");
        assert_eq!(stats.frame_slots_unoptimized, 6);
        // Peak live is the two inputs; g4's result recycles a's slot
        // (dead after g3, the last frame read of `a`).
        assert_eq!(stats.frame_slots, 2);
        assert_eq!(sliced.fused_cells(), vec![g1, g2, g3]);

        let unfused = BitSliceEvaluator::compile_with(
            &nl,
            TapeOptions {
                fuse: false,
                ..TapeOptions::default()
            },
        );
        assert_eq!(unfused.tape_stats().fused_instrs, 0);

        for lanes in [1usize, 64, 130] {
            let bits_a: Vec<bool> = (0..lanes).map(|l| l % 3 == 0).collect();
            let bits_b: Vec<bool> = (0..lanes).map(|l| l % 5 != 0).collect();
            let inputs = [Lanes::from_bools(&bits_a), Lanes::from_bools(&bits_b)];
            let want = evaluate(&nl, &inputs).unwrap();
            assert_eq!(sliced.evaluate(&inputs).unwrap(), want, "fused, {lanes}");
            assert_eq!(unfused.evaluate(&inputs).unwrap(), want, "unfused, {lanes}");
        }
    }

    /// Dead stores and unread inputs release their slots; with reuse off
    /// the frame keeps one slot per stored value.
    #[test]
    fn dead_and_unread_slots_are_recycled() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let _b = nl.add_input("b"); // never read
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let fused = BitSliceEvaluator::compile_with(&nl, TapeOptions::default());
        // b's slot is released, then a dies feeding y: y reuses a slot.
        assert_eq!(fused.tape_stats().frame_slots, 2);
        let no_reuse = BitSliceEvaluator::compile_with(
            &nl,
            TapeOptions {
                reuse: false,
                ..TapeOptions::default()
            },
        );
        assert_eq!(no_reuse.tape_stats().frame_slots, 3);
        for e in [&fused, &no_reuse] {
            let out = e.evaluate(&[Lanes::zeros(100), Lanes::ones(100)]).unwrap();
            assert_eq!(out[0].count_ones(), 100, "NOT of all-zero = all-one");
        }
    }

    /// A cache budget too small for even a one-word frame slice still
    /// executes correctly, one word per tile.
    #[test]
    fn tiny_cache_budget_forces_single_word_tiles() {
        use crate::random::RandomDag;
        let nl = RandomDag::loose(6, 4, 7).outputs(2).generate(11);
        let sliced = BitSliceEvaluator::compile_with(
            &nl,
            TapeOptions {
                cache_budget: 8, // one u64: no tile fits, cap clamps to 1
                ..TapeOptions::default()
            },
        );
        let stats = sliced.tape_stats();
        assert_eq!(stats.tile_words(), 1);
        assert_eq!(stats.tiles_at(8), 8);
        assert_eq!(stats.tiles_at(1), 1);
        let inputs: Vec<Lanes> = (0..nl.inputs().len())
            .map(|i| {
                let bits: Vec<bool> = (0..517).map(|l| (i + l) % 3 == 0).collect();
                Lanes::from_bools(&bits)
            })
            .collect();
        let want = evaluate(&nl, &inputs).unwrap();
        let mut frame = sliced.frame_with_words(8);
        assert_eq!(
            sliced.evaluate_with(&inputs, 517, &mut frame).unwrap(),
            want
        );
    }

    /// Patching a cell inside a fused chain rewrites that instruction's
    /// masks in place and matches a fresh compile of the patched netlist.
    #[test]
    fn patched_fused_tape_matches_fresh_compile() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate2(Op::And, a, b);
        let g2 = nl.add_gate1(Op::Not, g1);
        let g3 = nl.add_gate2(Op::Xor, g2, b);
        nl.add_output(g3, "y");
        let sliced = BitSliceEvaluator::compile_with(&nl, TapeOptions::default());
        assert!(sliced.fused_cells().contains(&g2), "g2 must be fused");

        let mut patches = PatchSet::new();
        patches.set(g2, Op::Buf);
        patches.set(g1, Op::Nor);
        let patched = sliced.patched(&patches).unwrap();
        let mut patched_nl = nl.clone();
        patched_nl.apply_patches(&patches).unwrap();
        let fresh = BitSliceEvaluator::compile_with(&patched_nl, TapeOptions::default());

        for lanes in [1usize, 64, 131] {
            let bits_a: Vec<bool> = (0..lanes).map(|l| l % 2 == 0).collect();
            let bits_b: Vec<bool> = (0..lanes).map(|l| l % 7 != 0).collect();
            let inputs = [Lanes::from_bools(&bits_a), Lanes::from_bools(&bits_b)];
            let want = evaluate(&patched_nl, &inputs).unwrap();
            assert_eq!(fresh.evaluate(&inputs).unwrap(), want);
            assert_eq!(patched.evaluate(&inputs).unwrap(), want, "lanes {lanes}");
        }

        // The unpatched tape still serves the original function.
        let inputs = [Lanes::ones(70), Lanes::zeros(70)];
        assert_eq!(
            sliced.evaluate(&inputs).unwrap(),
            evaluate(&nl, &inputs).unwrap()
        );
    }

    #[test]
    fn patched_rejects_cells_without_instructions() {
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        let mut on_input = PatchSet::new();
        on_input.set(a, Op::Buf);
        assert!(matches!(
            sliced.patched(&on_input),
            Err(NetlistError::InvalidNode { .. })
        ));
        let mut out_of_range = PatchSet::new();
        out_of_range.set(NodeId::new(1000), Op::Buf);
        assert!(matches!(
            sliced.patched(&out_of_range),
            Err(NetlistError::InvalidNode { .. })
        ));
    }

    #[test]
    fn slice_frame_set_width_preserves_slots() {
        let mut frame = SliceFrame::with_slots(10);
        assert_eq!(
            (frame.slots(), frame.words_per_net(), frame.lanes()),
            (10, 1, 64)
        );
        frame.set_width(4);
        assert_eq!(
            (frame.slots(), frame.words_per_net(), frame.lanes()),
            (10, 4, 256)
        );
        frame.set_word(9, 3, 0xdead_beef);
        assert_eq!(frame.word(9, 3), 0xdead_beef);
        frame.set_width(2);
        assert_eq!((frame.slots(), frame.lanes()), (10, 128));
    }

    /// A width change must zero the whole frame: with slot reuse, stale
    /// words from the old layout would otherwise sit exactly where a
    /// recycled slot's partial-block tail is read back.
    #[test]
    fn slice_frame_set_width_zeroes_reused_tails() {
        let mut frame = SliceFrame::with_width(4, 4);
        for slot in 0..4 {
            for w in 0..4 {
                frame.set_word(slot, w, !0);
            }
        }
        frame.set_width(2);
        for slot in 0..4 {
            for w in 0..2 {
                assert_eq!(frame.word(slot, w), 0, "stale word at {slot}/{w}");
            }
        }
        frame.set_width(8);
        for slot in 0..4 {
            for w in 0..8 {
                assert_eq!(frame.word(slot, w), 0, "stale word at {slot}/{w}");
            }
        }
    }

    /// Regression: a ragged final block evaluated right after a width
    /// change on a reused frame must not see words from the old layout.
    #[test]
    fn ragged_final_block_after_width_change_is_clean() {
        use crate::random::RandomDag;
        let nl = RandomDag::loose(6, 4, 7).outputs(2).generate(3);
        let sliced = BitSliceEvaluator::compile(&nl);
        let mut frame = sliced.frame_with_words(8);
        let fill: Vec<Lanes> = (0..nl.inputs().len()).map(|_| Lanes::ones(512)).collect();
        sliced.evaluate_with(&fill, 512, &mut frame).unwrap();
        // Shrink the width and run a batch whose final block is ragged.
        frame.set_width(2);
        for lanes in [65usize, 129, 130] {
            let inputs: Vec<Lanes> = (0..nl.inputs().len())
                .map(|i| {
                    let bits: Vec<bool> = (0..lanes).map(|l| (i * 11 + l) % 3 == 0).collect();
                    Lanes::from_bools(&bits)
                })
                .collect();
            let want = evaluate(&nl, &inputs).unwrap();
            let got = sliced.evaluate_with(&inputs, lanes, &mut frame).unwrap();
            assert_eq!(got, want, "lanes {lanes}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn slice_frame_rejects_zero_width() {
        let _ = SliceFrame::with_width(4, 0);
    }

    #[test]
    fn partial_final_block_masks_unused_lanes_on_every_width() {
        // NOT of all-zero inputs turns every *computed* lane to 1 — so any
        // garbage published from the unused tail lanes of a partial block
        // would show up as count_ones() > lanes.
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        for words in SUPPORTED_SLICE_WORDS {
            let mut frame = sliced.frame_with_words(words);
            let block = 64 * words;
            for lanes in [1usize, block - 1, block + 1, 2 * block + 7] {
                let out = sliced
                    .evaluate_with(&[Lanes::zeros(lanes)], lanes, &mut frame)
                    .unwrap();
                assert_eq!(out[0].len(), lanes, "words {words} lanes {lanes}");
                assert_eq!(out[0].count_ones(), lanes, "words {words} lanes {lanes}");
                if let Some(last) = out[0].words().last() {
                    let rem = lanes % 64;
                    if rem != 0 {
                        assert_eq!(last >> rem, 0, "tail bits must stay clear");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_lane_batches_are_empty_on_every_width() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        for words in SUPPORTED_SLICE_WORDS {
            let mut frame = sliced.frame_with_words(words);
            let out = sliced
                .evaluate_with(&[Lanes::zeros(0)], 0, &mut frame)
                .unwrap();
            assert_eq!(out.len(), 1);
            assert!(out[0].is_empty(), "words {words}");
        }
    }

    #[test]
    fn bitsliced_frame_reuse_across_widths() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        assert_eq!(sliced.tape_len(), 1);
        let mut frame = sliced.frame();
        for lanes in [100usize, 3, 64] {
            let out = sliced
                .evaluate_with(&[Lanes::zeros(lanes)], lanes, &mut frame)
                .unwrap();
            assert_eq!(out[0].count_ones(), lanes, "NOT of all-zero = all-one");
        }
    }

    #[test]
    fn wide_batch_tail_masking() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::zeros(100)]).unwrap();
        assert_eq!(out[0].count_ones(), 100, "NOT of all-zero = all-one");
    }
}
