//! Bit-parallel functional evaluation of a netlist.
//!
//! The LPU processes `2m`-bit operands: each bit is an independent Boolean
//! sample (a patch of a feature volume, or one image of a batch). [`Lanes`]
//! models exactly that — a vector of Boolean lanes packed into `u64` words —
//! and [`evaluate`] runs the whole netlist across all lanes at once. This is
//! the golden reference the cycle-accurate LPU simulator is tested against.
//!
//! Two evaluation strategies share the [`Lanes`] I/O format:
//!
//! * [`evaluate`] — walks the netlist arena directly, one [`Lanes`]
//!   allocation per net. Simple, and the oracle everything else is tested
//!   against.
//! * [`BitSliceEvaluator`] — compiles the netlist once into a flat tape of
//!   branch-free ANF word kernels ([`crate::Op::anf_masks`]) over a
//!   [`SliceFrame`] (a fixed number of `u64` words per net), then replays
//!   the tape per block of `64 × words` lanes. No per-net allocation, no
//!   per-gate dispatch: this is the software analogue of the LPU's
//!   word-level parallelism and the kernel behind the serving layer's
//!   bit-sliced backend. The frame width is generic — any
//!   `words_per_net ≥ 1` works, and the widths in
//!   [`SUPPORTED_SLICE_WORDS`] (1/2/4/8 words = 64/128/256/512 lanes)
//!   run on monomorphized kernels the compiler can keep branch-free and
//!   vectorize.

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::patch::PatchSet;

/// A packed vector of Boolean lanes (the value of one signal across a batch).
///
/// # Example
///
/// ```
/// use lbnn_netlist::Lanes;
/// let mut l = Lanes::zeros(100);
/// l.set(3, true);
/// assert!(l.get(3));
/// assert_eq!(l.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lanes {
    words: Vec<u64>,
    len: usize,
}

impl Lanes {
    /// Creates `len` lanes, all 0.
    pub fn zeros(len: usize) -> Self {
        Lanes {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates `len` lanes, all 1.
    pub fn ones(len: usize) -> Self {
        let mut l = Lanes {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        l.mask_tail();
        l
    }

    /// Packs a slice of booleans into lanes.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut l = Lanes::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                l.set(i, true);
            }
        }
        l
    }

    /// Creates lanes from raw words; bits past `len` are masked off.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(64), "word count mismatch");
        let mut l = Lanes { words, len };
        l.mask_tail();
        l
    }

    /// Number of lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no lanes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        self.words[index / 64] >> (index % 64) & 1 != 0
    }

    /// Sets the lane at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "lane {index} out of range {}", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// The packed words backing the lanes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Transposes per-sample bit rows into per-signal lane columns:
    /// `rows[j]` holds sample `j`'s value for each of `width` signals,
    /// and the result holds one `Lanes` per signal with sample `j` at
    /// lane `j` — the packing shared by every serving path that turns
    /// individual requests into a bit-sliced batch.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `width`.
    ///
    /// # Example
    ///
    /// ```
    /// use lbnn_netlist::Lanes;
    /// let rows = [[true, false], [true, true], [false, false]];
    /// let cols = Lanes::pack_rows(&rows, 2);
    /// assert_eq!(cols.len(), 2);
    /// assert_eq!(cols[0].to_bools(), vec![true, true, false]); // signal 0
    /// assert_eq!(cols[1].to_bools(), vec![false, true, false]); // signal 1
    /// ```
    pub fn pack_rows<R: AsRef<[bool]>>(rows: &[R], width: usize) -> Vec<Lanes> {
        let words = rows.len().div_ceil(64);
        let mut columns: Vec<Vec<u64>> = vec![vec![0u64; words]; width];
        for (j, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), width, "row {j} has the wrong width");
            let (word, mask) = (j / 64, 1u64 << (j % 64));
            for (column, &bit) in columns.iter_mut().zip(row) {
                if bit {
                    column[word] |= mask;
                }
            }
        }
        columns
            .into_iter()
            .map(|column| Lanes::from_words(column, rows.len()))
            .collect()
    }

    /// Number of lanes set to 1.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unpacks the lanes into booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Applies a gate operation lane-wise: `self = op(a, b)`. Single-input
    /// operations ignore `b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand lane counts differ from `self`.
    pub fn assign_op(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        assert_eq!(a.len(), self.len, "operand lane count mismatch");
        if let Some(b) = b {
            assert_eq!(b.len(), self.len, "operand lane count mismatch");
        }
        self.assign_op_inner(op, a, b);
    }

    #[inline]
    fn assign_op_inner(&mut self, op: Op, a: &Lanes, b: Option<&Lanes>) {
        let zero: &[u64] = &[];
        let bw = b.map_or(zero, |b| b.words.as_slice());
        for (i, w) in self.words.iter_mut().enumerate() {
            let wa = a.words[i];
            let wb = if bw.is_empty() { 0 } else { bw[i] };
            *w = op.eval_word(wa, wb);
        }
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Evaluates the netlist across all lanes simultaneously.
///
/// `inputs[i]` carries the batch values of primary input `i` (in
/// [`Netlist::inputs`] order); the result holds one [`Lanes`] per primary
/// output, in [`Netlist::outputs`] order.
///
/// # Errors
///
/// Returns [`NetlistError::InputArity`] if the number of input lane vectors
/// does not match the netlist's primary input count.
///
/// # Panics
///
/// Panics if the input lane vectors have inconsistent lane counts.
///
/// # Example
///
/// ```
/// use lbnn_netlist::{eval::evaluate, Lanes, Netlist, Op};
/// # fn main() -> Result<(), lbnn_netlist::NetlistError> {
/// let mut nl = Netlist::new("and");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::And, a, b);
/// nl.add_output(y, "y");
/// let out = evaluate(&nl, &[
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ])?;
/// assert_eq!(out[0].to_bools(), vec![true, false, false]);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(netlist: &Netlist, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
    if inputs.len() != netlist.inputs().len() {
        return Err(NetlistError::InputArity {
            expected: netlist.inputs().len(),
            got: inputs.len(),
        });
    }
    let lanes = inputs.first().map_or(0, Lanes::len);
    for l in inputs {
        assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
    }

    let mut values: Vec<Lanes> = vec![Lanes::zeros(lanes); netlist.len()];
    for (i, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = inputs[i].clone();
    }
    for (id, node) in netlist.iter() {
        if node.op() == Op::Input {
            continue;
        }
        let mut v = Lanes::zeros(lanes);
        let fan = node.fanins();
        match fan.len() {
            0 => v.assign_op(node.op(), &Lanes::zeros(lanes), None),
            1 => v.assign_op(node.op(), &values[fan[0].index()], None),
            _ => v.assign_op(
                node.op(),
                &values[fan[0].index()],
                Some(&values[fan[1].index()]),
            ),
        }
        values[id.index()] = v;
    }
    Ok(netlist
        .outputs()
        .iter()
        .map(|o| values[o.node.index()].clone())
        .collect())
}

/// The bit-slice widths with monomorphized branch-free kernels:
/// 1/2/4/8 words per net = 64/128/256/512 lanes per block.
///
/// [`BitSliceEvaluator::run_block`] accepts any `words_per_net ≥ 1`
/// (other widths fall back to a generic loop); the serving layer above
/// restricts its backends to this blessed set.
pub const SUPPORTED_SLICE_WORDS: [usize; 4] = [1, 2, 4, 8];

/// One bit-sliced execution frame: a fixed number of `u64` words per
/// net, so one frame holds `64 × words_per_net` independent samples for
/// every signal of the netlist at once. A one-word frame is the classic
/// 64-lane slice; 2/4/8-word frames widen a block to 128/256/512 lanes.
///
/// Frames are plain scratch storage — [`BitSliceEvaluator::run_block`]
/// fills one from packed inputs, replays the kernel tape over it, and
/// reads the primary outputs back out. Reusing a frame across blocks and
/// batches keeps steady-state evaluation allocation-free. Net `slot`
/// occupies the contiguous words `slot × words_per_net ..` (net-major
/// layout, so each kernel step touches one small fixed-size span per
/// operand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceFrame {
    words: Vec<u64>,
    words_per_net: usize,
}

/// Migration shim: the original 64-lane frame is a [`SliceFrame`] with
/// one word per net ([`SliceFrame::with_slots`]).
pub type BitSlice64 = SliceFrame;

impl Default for SliceFrame {
    /// An empty one-word-per-net (64-lane) frame.
    fn default() -> Self {
        SliceFrame {
            words: Vec::new(),
            words_per_net: 1,
        }
    }
}

impl SliceFrame {
    /// A 64-lane frame with `slots` nets (one word per net), all zero.
    pub fn with_slots(slots: usize) -> Self {
        SliceFrame::with_width(slots, 1)
    }

    /// A frame with `slots` nets of `words_per_net` words each
    /// (`64 × words_per_net` lanes), all zero.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn with_width(slots: usize, words_per_net: usize) -> Self {
        assert!(words_per_net > 0, "a slice frame needs at least one word");
        SliceFrame {
            words: vec![0; slots * words_per_net],
            words_per_net,
        }
    }

    /// Number of net slots in the frame.
    #[inline]
    pub fn slots(&self) -> usize {
        self.words.len() / self.words_per_net
    }

    /// Words per net slot.
    #[inline]
    pub fn words_per_net(&self) -> usize {
        self.words_per_net
    }

    /// Lanes one block of this frame evaluates (`64 × words_per_net`).
    #[inline]
    pub fn lanes(&self) -> usize {
        64 * self.words_per_net
    }

    /// Changes the frame's width, preserving the slot count. Contents
    /// are unspecified afterwards (the evaluator reloads every input
    /// slot before each block).
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn set_width(&mut self, words_per_net: usize) {
        assert!(words_per_net > 0, "a slice frame needs at least one word");
        if words_per_net != self.words_per_net {
            let slots = self.slots();
            self.words_per_net = words_per_net;
            self.words.resize(slots * words_per_net, 0);
        }
    }

    /// One packed 64-sample word of net `slot`: word `index` of its
    /// `words_per_net` span (word `w` covers lanes `64w .. 64w+64`).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()` or `index >= words_per_net()`.
    #[inline]
    pub fn word(&self, slot: usize, index: usize) -> u64 {
        assert!(index < self.words_per_net, "word index out of range");
        self.words[slot * self.words_per_net + index]
    }

    /// Sets one packed 64-sample word of net `slot`; see
    /// [`SliceFrame::word`].
    ///
    /// # Panics
    ///
    /// Panics if `slot >= slots()` or `index >= words_per_net()`.
    #[inline]
    pub fn set_word(&mut self, slot: usize, index: usize, value: u64) {
        assert!(index < self.words_per_net, "word index out of range");
        self.words[slot * self.words_per_net + index] = value;
    }

    /// Resizes the frame to `slots` nets at its current width (new slots
    /// are zero).
    fn reshape(&mut self, slots: usize) {
        self.words.resize(slots * self.words_per_net, 0);
    }
}

/// One straight-line kernel step: `frame[out] = k0 ^ (k1 & frame[b]) ^
/// (k2 & frame[a]) ^ (k3 & frame[a] & frame[b])`.
///
/// The coefficients come from [`crate::Op::anf_masks`]; single-input and
/// constant cells simply have the unused coefficients zeroed, so every
/// gate kind executes the same branch-free sequence of bitwise ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SliceInstr {
    a: u32,
    b: u32,
    out: u32,
    k: [u64; 4],
}

/// A netlist compiled into a width-generic bit-sliced kernel tape.
///
/// Compilation walks the arena once, turning every executable cell into a
/// kernel instruction in topological order. Evaluation then processes the
/// batch one [`SliceFrame`] block at a time — `64 × words_per_net` lanes
/// per block: load each primary input's packed words into the frame,
/// replay the tape, read the primary outputs back. The tape itself is
/// width-independent (instructions carry slot indices and ANF masks), so
/// one compiled evaluator serves every frame width. Results are
/// bit-identical to [`evaluate`] on the same inputs at every width.
///
/// # Example
///
/// ```
/// use lbnn_netlist::eval::{evaluate, BitSliceEvaluator};
/// use lbnn_netlist::{Lanes, Netlist, Op};
/// let mut nl = Netlist::new("f");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate2(Op::Nand, a, b);
/// nl.add_output(y, "y");
/// let inputs = [
///     Lanes::from_bools(&[true, true, false]),
///     Lanes::from_bools(&[true, false, true]),
/// ];
/// let sliced = BitSliceEvaluator::compile(&nl);
/// assert_eq!(
///     sliced.evaluate(&inputs).unwrap(),
///     evaluate(&nl, &inputs).unwrap(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct BitSliceEvaluator {
    /// Straight-line program, one instruction per executable node.
    tape: Vec<SliceInstr>,
    /// Frame slot of each primary input, in [`Netlist::inputs`] order.
    inputs: Vec<u32>,
    /// Frame slot of each primary output, in [`Netlist::outputs`] order.
    outputs: Vec<u32>,
    /// Frame size (one slot per netlist node).
    slots: usize,
}

impl BitSliceEvaluator {
    /// Compiles `netlist` into a kernel tape.
    ///
    /// The arena's topological order is the tape order; primary inputs
    /// occupy frame slots but emit no instruction.
    pub fn compile(netlist: &Netlist) -> Self {
        let mut tape = Vec::with_capacity(netlist.len());
        for (id, node) in netlist.iter() {
            if node.op() == Op::Input {
                continue;
            }
            let fan = node.fanins();
            // Unused operands read slot 0 behind a zero mask — harmless,
            // and it keeps the kernel uniform across arities.
            let a = fan.first().map_or(0, |f| f.index() as u32);
            let b = fan.get(1).map_or(a, |f| f.index() as u32);
            tape.push(SliceInstr {
                a,
                b,
                out: id.index() as u32,
                k: node.op().anf_masks(),
            });
        }
        BitSliceEvaluator {
            tape,
            inputs: netlist.inputs().iter().map(|i| i.index() as u32).collect(),
            outputs: netlist
                .outputs()
                .iter()
                .map(|o| o.node.index() as u32)
                .collect(),
            slots: netlist.len(),
        }
    }

    /// A copy of this tape with the ANF masks of every patched cell
    /// replaced, leaving all structure (operand slots, instruction
    /// order, frame layout) untouched.
    ///
    /// Callers are expected to have validated `patches` against the
    /// source netlist ([`PatchSet::validate`]); this method only
    /// requires each target to have a tape instruction. The tape stores
    /// instructions in ascending `out` slot order (the arena is
    /// topological and ids are dense), so each lookup is a binary
    /// search.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNode`] if a patched id has no
    /// instruction — out of range, or a primary input.
    pub fn patched(&self, patches: &PatchSet) -> Result<BitSliceEvaluator, NetlistError> {
        let mut out = self.clone();
        for (id, op) in patches.iter() {
            let slot = id.index() as u32;
            let idx = out
                .tape
                .binary_search_by_key(&slot, |instr| instr.out)
                .map_err(|_| NetlistError::InvalidNode { id })?;
            out.tape[idx].k = op.anf_masks();
        }
        Ok(out)
    }

    /// Number of kernel instructions (executable nets).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Number of primary inputs the evaluator expects.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs the evaluator produces.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// A 64-lane frame sized for this evaluator's netlist; see
    /// [`BitSliceEvaluator::frame_with_words`] for wider slices.
    pub fn frame(&self) -> SliceFrame {
        self.frame_with_words(1)
    }

    /// A frame sized for this evaluator's netlist at `words_per_net`
    /// words (`64 × words_per_net` lanes) per block.
    ///
    /// # Panics
    ///
    /// Panics if `words_per_net` is zero.
    pub fn frame_with_words(&self, words_per_net: usize) -> SliceFrame {
        SliceFrame::with_width(self.slots, words_per_net)
    }

    /// Replays the kernel tape over one frame in place, at the frame's
    /// width (`frame.lanes()` samples per net).
    ///
    /// The caller loads the primary-input words first (slots from the
    /// compiled input map); afterwards every net's slot holds its value
    /// for all lanes of the block. [`BitSliceEvaluator::evaluate`] wraps
    /// the packing/unpacking; this is the raw kernel. Widths in
    /// [`SUPPORTED_SLICE_WORDS`] dispatch to monomorphized kernels whose
    /// per-net word loop the compiler unrolls; any other width runs a
    /// generic loop with identical results.
    ///
    /// # Panics
    ///
    /// Panics if `frame` has fewer slots than the compiled netlist.
    #[inline]
    pub fn run_block(&self, frame: &mut SliceFrame) {
        assert!(frame.slots() >= self.slots, "frame too small for tape");
        match frame.words_per_net {
            1 => self.run_block_w::<1>(&mut frame.words),
            2 => self.run_block_w::<2>(&mut frame.words),
            4 => self.run_block_w::<4>(&mut frame.words),
            8 => self.run_block_w::<8>(&mut frame.words),
            w => self.run_block_any(&mut frame.words, w),
        }
    }

    /// Monomorphized entry: the constant `W` propagates into
    /// [`BitSliceEvaluator::run_block_any`]'s trip counts, so each
    /// supported width compiles to an unrolled straight-line kernel
    /// while the kernel body itself exists exactly once.
    fn run_block_w<const W: usize>(&self, words: &mut [u64]) {
        self.run_block_any(words, W);
    }

    /// The one kernel body, for any `per` words per net.
    #[inline(always)]
    fn run_block_any(&self, words: &mut [u64], per: usize) {
        for i in &self.tape {
            let (a0, b0, o0) = (i.a as usize * per, i.b as usize * per, i.out as usize * per);
            for w in 0..per {
                let a = words[a0 + w];
                let b = words[b0 + w];
                words[o0 + w] = i.k[0] ^ (i.k[1] & b) ^ (i.k[2] & a) ^ (i.k[3] & a & b);
            }
        }
    }

    /// Evaluates the whole batch, reusing `frame` as scratch and
    /// processing `frame.lanes()` lanes per block. Semantics match
    /// [`evaluate`] at every width; `lanes` overrides the batch width
    /// (used by no-input netlists, where width cannot be inferred from
    /// `inputs`).
    ///
    /// A batch whose lane count is not a multiple of the block width ends
    /// in a partial block: missing input words are loaded as zero and the
    /// tail lanes of every output word are masked off by the returned
    /// [`Lanes`], so unused lanes are never published.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts or
    /// fewer lanes than `lanes`.
    pub fn evaluate_with(
        &self,
        inputs: &[Lanes],
        lanes: usize,
        frame: &mut SliceFrame,
    ) -> Result<Vec<Lanes>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        for l in inputs {
            assert_eq!(l.len(), lanes, "inconsistent lane counts across inputs");
        }
        frame.reshape(self.slots);
        let per = frame.words_per_net;
        let total_words = lanes.div_ceil(64);
        let blocks = lanes.div_ceil(frame.lanes());
        let mut out_words: Vec<Vec<u64>> =
            vec![Vec::with_capacity(total_words); self.outputs.len()];
        for block in 0..blocks {
            let base = block * per;
            // A partial final block covers fewer than `per` input words;
            // the rest of each input span is zeroed so the kernel never
            // reads stale lanes from a previous batch.
            let avail = (total_words - base).min(per);
            for (lanes_in, &slot) in inputs.iter().zip(&self.inputs) {
                let span = slot as usize * per;
                let in_words = &lanes_in.words()[base..base + avail];
                frame.words[span..span + avail].copy_from_slice(in_words);
                frame.words[span + avail..span + per].fill(0);
            }
            self.run_block(frame);
            for (words, &slot) in out_words.iter_mut().zip(&self.outputs) {
                let span = slot as usize * per;
                words.extend_from_slice(&frame.words[span..span + avail]);
            }
        }
        Ok(out_words
            .into_iter()
            .map(|words| Lanes::from_words(words, lanes))
            .collect())
    }

    /// Evaluates the netlist across all lanes — the bit-sliced counterpart
    /// of [`evaluate`], with identical semantics and results.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] on an input-count mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the input lane vectors have inconsistent lane counts.
    pub fn evaluate(&self, inputs: &[Lanes]) -> Result<Vec<Lanes>, NetlistError> {
        let lanes = inputs.first().map_or(0, Lanes::len);
        self.evaluate_with(inputs, lanes, &mut self.frame())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Op;

    #[test]
    fn lanes_pack_unpack() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let lanes = Lanes::from_bools(&bits);
        assert_eq!(lanes.len(), 130);
        assert_eq!(lanes.to_bools(), bits);
        assert_eq!(lanes.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn pack_rows_transposes_and_checks_width() {
        // Round trip: pack 70 rows (multi-word lanes), read each sample
        // back from its lane.
        let rows: Vec<Vec<bool>> = (0..70)
            .map(|j| (0..5).map(|i| (j + i) % 3 == 0).collect())
            .collect();
        let cols = Lanes::pack_rows(&rows, 5);
        assert_eq!(cols.len(), 5);
        for (j, row) in rows.iter().enumerate() {
            for (i, &bit) in row.iter().enumerate() {
                assert_eq!(cols[i].get(j), bit, "signal {i} sample {j}");
            }
        }
        assert!(Lanes::pack_rows::<Vec<bool>>(&[], 3)
            .iter()
            .all(Lanes::is_empty));
    }

    #[test]
    #[should_panic(expected = "wrong width")]
    fn pack_rows_rejects_ragged_rows() {
        let _ = Lanes::pack_rows(&[vec![true, false], vec![true]], 2);
    }

    #[test]
    fn ones_masks_tail() {
        let l = Lanes::ones(70);
        assert_eq!(l.count_ones(), 70);
        assert_eq!(l.words().len(), 2);
        assert_eq!(l.words()[1] >> 6, 0, "tail bits must stay clear");
    }

    #[test]
    fn evaluate_matches_scalar_eval() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let nb = nl.add_gate1(Op::Not, b);
        let t = nl.add_gate2(Op::Xnor, a, nb);
        let y = nl.add_gate2(Op::Nor, t, c);
        nl.add_output(y, "y");
        nl.add_output(t, "t");

        // All 8 combinations as 8 lanes.
        let mut ins = vec![Lanes::zeros(8), Lanes::zeros(8), Lanes::zeros(8)];
        for lane in 0..8 {
            for (bit, lanes) in ins.iter_mut().enumerate() {
                lanes.set(lane, lane & (1 << bit) != 0);
            }
        }
        let outs = evaluate(&nl, &ins).unwrap();
        for lane in 0..8 {
            let scalar = nl.eval_bools(&[lane & 1 != 0, lane & 2 != 0, lane & 4 != 0]);
            assert_eq!(outs[0].get(lane), scalar[0], "lane {lane}");
            assert_eq!(outs[1].get(lane), scalar[1], "lane {lane}");
        }
    }

    #[test]
    fn evaluate_checks_input_count() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        nl.add_output(a, "y");
        assert!(matches!(
            evaluate(&nl, &[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn constants_across_lanes() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::from_bools(&[true, false, true])]).unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
    }

    #[test]
    fn bitsliced_matches_evaluate() {
        use crate::random::RandomDag;
        for seed in 0..6 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            let sliced = BitSliceEvaluator::compile(&nl);
            assert_eq!(sliced.num_inputs(), nl.inputs().len());
            assert_eq!(sliced.num_outputs(), nl.outputs().len());
            // Deliberately awkward widths: sub-word, exact word, multi-word
            // with tail.
            for lanes in [1usize, 63, 64, 65, 130, 256] {
                let inputs: Vec<Lanes> = (0..nl.inputs().len())
                    .map(|i| {
                        let bits: Vec<bool> = (0..lanes)
                            .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                            .collect();
                        Lanes::from_bools(&bits)
                    })
                    .collect();
                let want = evaluate(&nl, &inputs).unwrap();
                let got = sliced.evaluate(&inputs).unwrap();
                assert_eq!(got, want, "seed {seed} lanes {lanes}");
            }
        }
    }

    #[test]
    fn bitsliced_constants_and_arity_errors() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::Xor, a, one);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        let out = sliced
            .evaluate(&[Lanes::from_bools(&[true, false, true])])
            .unwrap();
        assert_eq!(out[0].to_bools(), vec![false, true, false]);
        assert!(matches!(
            sliced.evaluate(&[]),
            Err(NetlistError::InputArity {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn every_slice_width_matches_evaluate() {
        use crate::random::RandomDag;
        for seed in 0..4 {
            let nl = RandomDag::loose(7, 5, 8).outputs(3).generate(seed);
            let sliced = BitSliceEvaluator::compile(&nl);
            // Awkward batch widths per frame width: sub-block, exact
            // block, multi-block with tail. 3 words per net exercises the
            // generic fallback kernel.
            for words in [1usize, 2, 3, 4, 8] {
                let mut frame = sliced.frame_with_words(words);
                assert_eq!(frame.lanes(), 64 * words);
                for lanes in [1usize, 63, 64 * words, 64 * words + 1, 130 * words] {
                    let inputs: Vec<Lanes> = (0..nl.inputs().len())
                        .map(|i| {
                            let bits: Vec<bool> = (0..lanes)
                                .map(|l| (seed as usize + i * 31 + l * 7).is_multiple_of(3))
                                .collect();
                            Lanes::from_bools(&bits)
                        })
                        .collect();
                    let want = evaluate(&nl, &inputs).unwrap();
                    let got = sliced.evaluate_with(&inputs, lanes, &mut frame).unwrap();
                    assert_eq!(got, want, "seed {seed} words {words} lanes {lanes}");
                }
            }
        }
    }

    #[test]
    fn slice_frame_set_width_preserves_slots() {
        let mut frame = SliceFrame::with_slots(10);
        assert_eq!(
            (frame.slots(), frame.words_per_net(), frame.lanes()),
            (10, 1, 64)
        );
        frame.set_width(4);
        assert_eq!(
            (frame.slots(), frame.words_per_net(), frame.lanes()),
            (10, 4, 256)
        );
        frame.set_word(9, 3, 0xdead_beef);
        assert_eq!(frame.word(9, 3), 0xdead_beef);
        frame.set_width(2);
        assert_eq!((frame.slots(), frame.lanes()), (10, 128));
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn slice_frame_rejects_zero_width() {
        let _ = SliceFrame::with_width(4, 0);
    }

    #[test]
    fn partial_final_block_masks_unused_lanes_on_every_width() {
        // NOT of all-zero inputs turns every *computed* lane to 1 — so any
        // garbage published from the unused tail lanes of a partial block
        // would show up as count_ones() > lanes.
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        for words in SUPPORTED_SLICE_WORDS {
            let mut frame = sliced.frame_with_words(words);
            let block = 64 * words;
            for lanes in [1usize, block - 1, block + 1, 2 * block + 7] {
                let out = sliced
                    .evaluate_with(&[Lanes::zeros(lanes)], lanes, &mut frame)
                    .unwrap();
                assert_eq!(out[0].len(), lanes, "words {words} lanes {lanes}");
                assert_eq!(out[0].count_ones(), lanes, "words {words} lanes {lanes}");
                if let Some(last) = out[0].words().last() {
                    let rem = lanes % 64;
                    if rem != 0 {
                        assert_eq!(last >> rem, 0, "tail bits must stay clear");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_lane_batches_are_empty_on_every_width() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        for words in SUPPORTED_SLICE_WORDS {
            let mut frame = sliced.frame_with_words(words);
            let out = sliced
                .evaluate_with(&[Lanes::zeros(0)], 0, &mut frame)
                .unwrap();
            assert_eq!(out.len(), 1);
            assert!(out[0].is_empty(), "words {words}");
        }
    }

    #[test]
    fn bitsliced_frame_reuse_across_widths() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let sliced = BitSliceEvaluator::compile(&nl);
        assert_eq!(sliced.tape_len(), 1);
        let mut frame = sliced.frame();
        for lanes in [100usize, 3, 64] {
            let out = sliced
                .evaluate_with(&[Lanes::zeros(lanes)], lanes, &mut frame)
                .unwrap();
            assert_eq!(out[0].count_ones(), lanes, "NOT of all-zero = all-one");
        }
    }

    #[test]
    fn wide_batch_tail_masking() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let out = evaluate(&nl, &[Lanes::zeros(100)]).unwrap();
        assert_eq!(out[0].count_ones(), 100, "NOT of all-zero = all-one");
    }
}
