//! The customized cell library supported by the logic processing elements.
//!
//! The paper's LPE supports *multiple-input single-output* (MISO) operations
//! — `AND`, `OR`, `XOR`/`XNOR` (and their negations) — and *single-input
//! single-output* (SISO) operations — `NOT`/`BUFFER` (§IV). `BUFFER` nodes
//! are inserted by full path balancing so that all paths between two
//! connected nodes have equal topological length.

use std::fmt;
use std::str::FromStr;

/// A Boolean operation performed by one logic processing element (LPE).
///
/// `Input` marks primary-input nodes; it is not an executable LPE opcode but
/// keeps the netlist arena homogeneous. `Const0`/`Const1` are tie cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// A primary input of the FFCL block.
    Input,
    /// Constant logic 0 (tie-low).
    Const0,
    /// Constant logic 1 (tie-high).
    Const1,
    /// Two-input AND.
    And,
    /// Two-input OR.
    Or,
    /// Two-input XOR.
    Xor,
    /// Two-input XNOR.
    Xnor,
    /// Two-input NAND.
    Nand,
    /// Two-input NOR.
    Nor,
    /// Inverter (SISO).
    Not,
    /// Buffer (SISO); inserted by full path balancing.
    Buf,
}

impl Op {
    /// All executable two-input (MISO) opcodes.
    pub const MISO: [Op; 6] = [Op::And, Op::Or, Op::Xor, Op::Xnor, Op::Nand, Op::Nor];

    /// All executable single-input (SISO) opcodes.
    pub const SISO: [Op; 2] = [Op::Not, Op::Buf];

    /// Number of fanins this operation consumes (0, 1 or 2).
    #[inline]
    pub fn arity(self) -> usize {
        match self {
            Op::Input | Op::Const0 | Op::Const1 => 0,
            Op::Not | Op::Buf => 1,
            _ => 2,
        }
    }

    /// `true` for operations a logic processing element can execute
    /// (everything except `Input`).
    #[inline]
    pub fn is_executable(self) -> bool {
        self != Op::Input
    }

    /// `true` for the two-input gate operations.
    #[inline]
    pub fn is_gate2(self) -> bool {
        self.arity() == 2
    }

    /// Evaluate the operation on single-bit operands.
    ///
    /// Unused operands are ignored (e.g. `b` for [`Op::Not`]).
    #[inline]
    pub fn eval_bit(self, a: bool, b: bool) -> bool {
        match self {
            Op::Input => a,
            Op::Const0 => false,
            Op::Const1 => true,
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Xnor => !(a ^ b),
            Op::Nand => !(a & b),
            Op::Nor => !(a | b),
            Op::Not => !a,
            Op::Buf => a,
        }
    }

    /// Evaluate the operation bit-parallel on 64-lane words.
    #[inline]
    pub fn eval_word(self, a: u64, b: u64) -> u64 {
        match self {
            Op::Input => a,
            Op::Const0 => 0,
            Op::Const1 => !0,
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Xnor => !(a ^ b),
            Op::Nand => !(a & b),
            Op::Nor => !(a | b),
            Op::Not => !a,
            Op::Buf => a,
        }
    }

    /// The branch-free kernel of this operation as *algebraic normal form*
    /// (ANF) coefficient masks `[k0, k1, k2, k3]`, each `0` or `!0`.
    ///
    /// Every one- and two-input Boolean function is a polynomial over
    /// GF(2): `f(a, b) = k0 ⊕ (k1·b) ⊕ (k2·a) ⊕ (k3·a·b)`. Expanding the
    /// four coefficients to full-width masks turns every cell of the
    /// library into the *same* straight-line word kernel,
    ///
    /// ```text
    /// out = k0 ^ (k1 & b) ^ (k2 & a) ^ (k3 & a & b)
    /// ```
    ///
    /// with no data-dependent branch and no per-opcode dispatch — the form
    /// the bit-sliced evaluator ([`crate::eval::BitSliceEvaluator`])
    /// executes 64 samples at a time.
    ///
    /// ```
    /// use lbnn_netlist::Op;
    /// let [k0, k1, k2, k3] = Op::Nand.anf_masks();
    /// let (a, b) = (0b1100u64, 0b1010);
    /// let out = k0 ^ (k1 & b) ^ (k2 & a) ^ (k3 & a & b);
    /// assert_eq!(out & 0xF, 0b0111); // NAND truth table, bit i = row i
    /// ```
    #[inline]
    pub fn anf_masks(self) -> [u64; 4] {
        // (k0, k1, k2, k3) as single bits; `Input` behaves as `Buf` so the
        // kernel is total over the arena.
        let bits: [u64; 4] = match self {
            Op::Input | Op::Buf => [0, 0, 1, 0],
            Op::Const0 => [0, 0, 0, 0],
            Op::Const1 => [1, 0, 0, 0],
            Op::And => [0, 0, 0, 1],
            Op::Or => [0, 1, 1, 1],
            Op::Xor => [0, 1, 1, 0],
            Op::Xnor => [1, 1, 1, 0],
            Op::Nand => [1, 0, 0, 1],
            Op::Nor => [1, 1, 1, 1],
            Op::Not => [1, 0, 1, 0],
        };
        bits.map(|k| k.wrapping_neg())
    }

    /// Stable binary opcode of this operation, shared by the netlist
    /// serializer ([`crate::serdes`]) and the LPU instruction encoding.
    /// Codes are part of the on-disk artifact format and must never be
    /// renumbered.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Op::And => 0,
            Op::Or => 1,
            Op::Xor => 2,
            Op::Xnor => 3,
            Op::Nand => 4,
            Op::Nor => 5,
            Op::Not => 6,
            Op::Buf => 7,
            Op::Const0 => 8,
            Op::Const1 => 9,
            Op::Input => 10,
        }
    }

    /// Inverse of [`Op::code`]; `None` for unassigned code points.
    #[inline]
    pub fn from_code(code: u8) -> Option<Op> {
        Some(match code {
            0 => Op::And,
            1 => Op::Or,
            2 => Op::Xor,
            3 => Op::Xnor,
            4 => Op::Nand,
            5 => Op::Nor,
            6 => Op::Not,
            7 => Op::Buf,
            8 => Op::Const0,
            9 => Op::Const1,
            10 => Op::Input,
            _ => return None,
        })
    }

    /// The operation computing the complement of this operation's output,
    /// when one exists in the cell library.
    pub fn negated(self) -> Option<Op> {
        Some(match self {
            Op::And => Op::Nand,
            Op::Nand => Op::And,
            Op::Or => Op::Nor,
            Op::Nor => Op::Or,
            Op::Xor => Op::Xnor,
            Op::Xnor => Op::Xor,
            Op::Not => Op::Buf,
            Op::Buf => Op::Not,
            Op::Const0 => Op::Const1,
            Op::Const1 => Op::Const0,
            Op::Input => return None,
        })
    }

    /// `true` if the operation is commutative in its two operands.
    #[inline]
    pub fn is_commutative(self) -> bool {
        self.is_gate2()
    }

    /// The Verilog primitive name for this operation, if it has one.
    pub fn verilog_primitive(self) -> Option<&'static str> {
        Some(match self {
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Xnor => "xnor",
            Op::Nand => "nand",
            Op::Nor => "nor",
            Op::Not => "not",
            Op::Buf => "buf",
            _ => return None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Input => "input",
            Op::Const0 => "const0",
            Op::Const1 => "const1",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Xnor => "xnor",
            Op::Nand => "nand",
            Op::Nor => "nor",
            Op::Not => "not",
            Op::Buf => "buf",
        };
        f.write_str(s)
    }
}

impl FromStr for Op {
    type Err = crate::NetlistError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "and" => Op::And,
            "or" => Op::Or,
            "xor" => Op::Xor,
            "xnor" => Op::Xnor,
            "nand" => Op::Nand,
            "nor" => Op::Nor,
            "not" => Op::Not,
            "buf" => Op::Buf,
            "const0" => Op::Const0,
            "const1" => Op::Const1,
            "input" => Op::Input,
            other => {
                return Err(crate::NetlistError::UnknownOp {
                    op: other.to_string(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_class() {
        for op in Op::MISO {
            assert_eq!(op.arity(), 2, "{op}");
        }
        for op in Op::SISO {
            assert_eq!(op.arity(), 1, "{op}");
        }
        assert_eq!(Op::Input.arity(), 0);
        assert_eq!(Op::Const0.arity(), 0);
    }

    #[test]
    fn eval_bit_truth_tables() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(Op::And.eval_bit(a, b), a && b);
            assert_eq!(Op::Or.eval_bit(a, b), a || b);
            assert_eq!(Op::Xor.eval_bit(a, b), a ^ b);
            assert_eq!(Op::Xnor.eval_bit(a, b), !(a ^ b));
            assert_eq!(Op::Nand.eval_bit(a, b), !(a && b));
            assert_eq!(Op::Nor.eval_bit(a, b), !(a || b));
            assert_eq!(Op::Not.eval_bit(a, b), !a);
            assert_eq!(Op::Buf.eval_bit(a, b), a);
        }
    }

    #[test]
    fn eval_word_agrees_with_eval_bit() {
        for op in Op::MISO.into_iter().chain(Op::SISO) {
            for bits in 0u8..4 {
                let a = bits & 1 != 0;
                let b = bits & 2 != 0;
                let wa = if a { !0u64 } else { 0 };
                let wb = if b { !0u64 } else { 0 };
                let expect = if op.eval_bit(a, b) { !0u64 } else { 0 };
                assert_eq!(op.eval_word(wa, wb), expect, "{op} {a} {b}");
            }
        }
    }

    #[test]
    fn anf_masks_agree_with_eval_bit() {
        // Every opcode, every operand combination: the uniform ANF kernel
        // computes the same function as the reference evaluator.
        let all = [
            Op::Input,
            Op::Const0,
            Op::Const1,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Xnor,
            Op::Nand,
            Op::Nor,
            Op::Not,
            Op::Buf,
        ];
        for op in all {
            let [k0, k1, k2, k3] = op.anf_masks();
            for bits in 0u8..4 {
                let a = bits & 1 != 0;
                let b = bits & 2 != 0;
                let wa = if a { !0u64 } else { 0 };
                let wb = if b { !0u64 } else { 0 };
                let out = k0 ^ (k1 & wb) ^ (k2 & wa) ^ (k3 & wa & wb);
                let expect = if op.eval_bit(a, b) { !0u64 } else { 0 };
                assert_eq!(out, expect, "{op} a={a} b={b}");
            }
        }
    }

    #[test]
    fn negation_is_involutive() {
        for op in Op::MISO.into_iter().chain(Op::SISO) {
            let neg = op.negated().expect("gates have negations");
            assert_eq!(neg.negated(), Some(op));
            // The negated op computes the complement.
            for bits in 0u8..4 {
                let a = bits & 1 != 0;
                let b = bits & 2 != 0;
                assert_eq!(op.eval_bit(a, b), !neg.eval_bit(a, b));
            }
        }
    }

    #[test]
    fn parse_round_trip() {
        for op in Op::MISO.into_iter().chain(Op::SISO) {
            let s = op.to_string();
            assert_eq!(s.parse::<Op>().unwrap(), op);
        }
        assert!("majority3".parse::<Op>().is_err());
    }

    #[test]
    fn binary_codes_round_trip_and_stay_dense() {
        let all = [
            Op::Input,
            Op::Const0,
            Op::Const1,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Xnor,
            Op::Nand,
            Op::Nor,
            Op::Not,
            Op::Buf,
        ];
        for op in all {
            assert_eq!(Op::from_code(op.code()), Some(op));
            assert!(op.code() <= 10);
        }
        assert_eq!(Op::from_code(11), None);
        assert_eq!(Op::from_code(255), None);
    }
}
