//! # lbnn-netlist
//!
//! Gate-level netlist intermediate representation for the `lbnn` workspace,
//! the Rust reproduction of *"Algorithms and Hardware for Efficient
//! Processing of Logic-based Neural Networks"* (DAC 2023).
//!
//! A [`Netlist`] is a directed acyclic graph of two-input Boolean gates (plus
//! inverters, buffers and constants) — the in-memory form of a
//! *fixed-function combinational logic* (FFCL) block. The crate provides:
//!
//! * the node/edge arena itself ([`Netlist`], [`Node`], [`NodeId`], [`Op`]),
//! * a structural-Verilog parser and writer ([`verilog`]) and a compact
//!   binary image format ([`serdes`]) used by the self-contained
//!   serving artifacts of `lbnn-core`,
//! * depth levelization ([`levelize`]) and full path balancing ([`balance`]),
//!   the two pre-processing steps the paper's compiler requires,
//! * bit-parallel functional evaluation ([`eval`]) used as the correctness
//!   oracle for the LPU simulator, plus the width-generic bit-sliced
//!   kernel compiler ([`BitSliceEvaluator`], 64–1024 lanes per
//!   [`SliceFrame`] block) behind the serving layer's fast execution
//!   backend, with a tape-locality pass ([`TapeOptions`]/[`TapeStats`]:
//!   chain fusion, liveness-based slot reuse, cache-budget tiling) and
//!   runtime-detected `std::arch` SIMD replay kernels
//!   ([`SimdMode`]/[`SimdLevel`], AVX-512/AVX2/SSE2 on x86_64),
//! * partitioned multi-engine execution ([`partitioned`]): a netlist
//!   split into per-partition kernel tapes with a compile-time
//!   cross-partition [`ExchangeSchedule`], run level-synchronously on
//!   one worker thread per partition ([`PartitionedEngine`]),
//! * seeded random netlist generators ([`random`]) for tests and benchmarks.
//!
//! ## Example
//!
//! ```
//! use lbnn_netlist::{Netlist, Op};
//!
//! // y = (a & b) ^ c
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.add_gate2(Op::And, a, b);
//! let y = nl.add_gate2(Op::Xor, ab, c);
//! nl.add_output(y, "y");
//!
//! let out = nl.eval_bools(&[true, true, false]);
//! assert_eq!(out, vec![true]);
//! ```

pub mod balance;
pub mod cell;
pub mod error;
pub mod eval;
pub mod levelize;
pub mod netlist;
pub mod partitioned;
pub mod patch;
pub mod random;
pub mod serdes;
pub mod verilog;

pub use cell::Op;
pub use error::NetlistError;
pub use eval::{
    BitSlice64, BitSliceEvaluator, Lanes, SimdLevel, SimdMode, SliceFrame, TapeOptions, TapeStats,
    SUPPORTED_SLICE_WORDS,
};
pub use levelize::Levels;
pub use netlist::{Netlist, Node, NodeId};
pub use partitioned::{
    ExchangeCopy, ExchangeSchedule, PartitionAssignment, PartitionStats, PartitionedEngine,
    MAX_PARTITIONS,
};
pub use patch::PatchSet;
pub use serdes::{ByteReader, ByteWriter};
