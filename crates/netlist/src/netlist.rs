//! The netlist arena: nodes, edges, inputs and outputs of an FFCL block.

use std::fmt;

use crate::cell::Op;
use crate::error::NetlistError;

/// Identifier of a node inside one [`Netlist`] arena.
///
/// Ids are dense indices; nodes are stored in topological order (every
/// node's fanins have smaller ids), which the arena enforces at
/// construction time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Sentinel for "no node" (used for unused fanin slots).
    pub(crate) const NONE: NodeId = NodeId(u32::MAX);

    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of the Boolean network: an operation plus up to two fanins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    op: Op,
    fanin: [NodeId; 2],
}

impl Node {
    /// The operation computed by this node.
    #[inline]
    pub fn op(&self) -> Op {
        self.op
    }

    /// The fanins of this node (0, 1 or 2 of them).
    #[inline]
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanin[..self.op.arity()]
    }
}

/// A named primary output: a pointer to the driving node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Node driving this output.
    pub node: NodeId,
    /// Output port name.
    pub name: String,
}

/// A gate-level combinational netlist (an FFCL block).
///
/// Nodes live in an arena in topological order. Primary inputs are nodes
/// with [`Op::Input`]; primary outputs are named references to arbitrary
/// nodes. The same node may drive several outputs.
///
/// # Example
///
/// ```
/// use lbnn_netlist::{Netlist, Op};
/// let mut nl = Netlist::new("xor3");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let c = nl.add_input("c");
/// let ab = nl.add_gate2(Op::Xor, a, b);
/// let abc = nl.add_gate2(Op::Xor, ab, c);
/// nl.add_output(abc, "y");
/// assert_eq!(nl.gate_count(), 2);
/// assert_eq!(nl.eval_bools(&[true, false, true]), vec![false]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    names: Vec<Option<String>>,
    inputs: Vec<NodeId>,
    outputs: Vec<Output>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            names: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input with the given port name and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Op::Input, [NodeId::NONE; 2], Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds a constant node.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let op = if value { Op::Const1 } else { Op::Const0 };
        self.push(op, [NodeId::NONE; 2], None)
    }

    /// Adds a two-input gate.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a two-input operation or if a fanin id does not
    /// precede the new node (the arena is topologically ordered).
    pub fn add_gate2(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(op.arity(), 2, "{op} is not a two-input operation");
        self.check_fanin(a);
        self.check_fanin(b);
        self.push(op, [a, b], None)
    }

    /// Adds a single-input gate (`not` or `buf`).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a single-input operation or the fanin id is
    /// out of range.
    pub fn add_gate1(&mut self, op: Op, a: NodeId) -> NodeId {
        assert_eq!(op.arity(), 1, "{op} is not a single-input operation");
        self.check_fanin(a);
        self.push(op, [a, NodeId::NONE], None)
    }

    /// Adds a gate with the fanin list matching the operation arity.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputArity`] when the fanin count does not
    /// match `op.arity()`, and [`NetlistError::InvalidNode`] when a fanin id
    /// is out of range.
    pub fn add_node(&mut self, op: Op, fanins: &[NodeId]) -> Result<NodeId, NetlistError> {
        if fanins.len() != op.arity() {
            return Err(NetlistError::InputArity {
                expected: op.arity(),
                got: fanins.len(),
            });
        }
        let mut f = [NodeId::NONE; 2];
        for (slot, &id) in f.iter_mut().zip(fanins) {
            if id.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNode { id });
            }
            *slot = id;
        }
        Ok(self.push(op, f, None))
    }

    /// Replaces the logic function of an existing gate, keeping its
    /// wiring intact.
    ///
    /// The target must be an executable non-constant cell and `op` must
    /// be executable with the same arity, so every fanin slot stays
    /// meaningful. This is the single-node primitive behind
    /// [`Netlist::apply_patches`](crate::PatchSet).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNode`] for out-of-range ids and
    /// [`NetlistError::BadPatch`] for illegal replacements.
    pub fn replace_op(&mut self, id: NodeId, op: Op) -> Result<(), NetlistError> {
        let Some(node) = self.nodes.get(id.index()) else {
            return Err(NetlistError::InvalidNode { id });
        };
        let old = node.op;
        if !old.is_executable() || old.arity() == 0 {
            return Err(NetlistError::BadPatch {
                id,
                reason: format!("{old} cells have no replaceable gate function"),
            });
        }
        if !op.is_executable() || op.arity() != old.arity() {
            return Err(NetlistError::BadPatch {
                id,
                reason: format!("cannot replace {old} ({} inputs) with {op}", old.arity()),
            });
        }
        self.nodes[id.index()].op = op;
        Ok(())
    }

    /// Declares `node` as a primary output with the given port name.
    pub fn add_output(&mut self, node: NodeId, name: impl Into<String>) {
        self.check_fanin(node);
        self.outputs.push(Output {
            node,
            name: name.into(),
        });
    }

    /// Assigns a debug/port name to a node (used by the Verilog writer).
    pub fn set_node_name(&mut self, node: NodeId, name: impl Into<String>) {
        self.names[node.index()] = Some(name.into());
    }

    /// The name assigned to a node, if any.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.names[node.index()].as_deref()
    }

    /// Total number of nodes (inputs + constants + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of executable gate nodes (everything except primary inputs).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op != Op::Input).count()
    }

    /// Number of two-input gate nodes.
    pub fn gate2_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_gate2()).count()
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Ids of all nodes, in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Computes, for every node, the list of nodes it feeds.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fo = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.iter() {
            for &f in node.fanins() {
                fo[f.index()].push(id);
            }
        }
        fo
    }

    /// Computes, for every node, how many gate fanins reference it, plus one
    /// per primary output it drives.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fc = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for &f in node.fanins() {
                fc[f.index()] += 1;
            }
        }
        for out in &self.outputs {
            fc[out.node.index()] += 1;
        }
        fc
    }

    /// Validates structural invariants: fanin ids in range and topologically
    /// ordered, arity matching, and at least one output.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for (id, node) in self.iter() {
            for &f in node.fanins() {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::InvalidNode { id: f });
                }
                if f >= id {
                    return Err(NetlistError::Cyclic { on: id });
                }
            }
        }
        for out in &self.outputs {
            if out.node.index() >= self.nodes.len() {
                return Err(NetlistError::InvalidNode { id: out.node });
            }
        }
        Ok(())
    }

    /// Convenience scalar evaluation; see [`crate::eval`] for the
    /// bit-parallel form.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn eval_bools(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "expected {} input values",
            self.inputs.len()
        );
        let mut value = vec![false; self.nodes.len()];
        for (i, &id) in self.inputs.iter().enumerate() {
            value[id.index()] = inputs[i];
        }
        for (id, node) in self.iter() {
            if node.op == Op::Input {
                continue;
            }
            let a = node.fanins().first().is_some_and(|f| value[f.index()]);
            let b = node.fanins().get(1).is_some_and(|f| value[f.index()]);
            value[id.index()] = node.op.eval_bit(a, b);
        }
        self.outputs.iter().map(|o| value[o.node.index()]).collect()
    }

    /// Extracts the transitive fanin cone of the given outputs as a fresh
    /// netlist (unused nodes dropped, ids re-densified).
    ///
    /// Output indices refer to `self.outputs()`. Inputs that do not feed the
    /// cone are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an output index is out of range.
    pub fn extract_cone(&self, output_indices: &[usize]) -> Netlist {
        let mut keep = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = output_indices
            .iter()
            .map(|&i| self.outputs[i].node)
            .collect();
        while let Some(id) = stack.pop() {
            if keep[id.index()] {
                continue;
            }
            keep[id.index()] = true;
            for &f in self.node(id).fanins() {
                stack.push(f);
            }
        }
        let mut out = Netlist::new(self.name.clone());
        let mut remap = vec![NodeId::NONE; self.nodes.len()];
        for (id, node) in self.iter() {
            if !keep[id.index()] {
                continue;
            }
            let new_id = if node.op == Op::Input {
                out.add_input(self.node_name(id).unwrap_or("in").to_string())
            } else {
                let f: Vec<NodeId> = node.fanins().iter().map(|f| remap[f.index()]).collect();
                out.add_node(node.op, &f)
                    .expect("cone preserves topo order")
            };
            if node.op != Op::Input {
                if let Some(n) = self.node_name(id) {
                    out.set_node_name(new_id, n.to_string());
                }
            }
            remap[id.index()] = new_id;
        }
        for &i in output_indices {
            let o = &self.outputs[i];
            out.add_output(remap[o.node.index()], o.name.clone());
        }
        out
    }

    fn check_fanin(&self, id: NodeId) {
        assert!(
            id.index() < self.nodes.len(),
            "fanin {id:?} does not exist yet (arena is topologically ordered)"
        );
    }

    fn push(&mut self, op: Op, fanin: [NodeId; 2], name: Option<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, fanin });
        self.names.push(name);
        id
    }
}

impl std::ops::Index<NodeId> for Netlist {
    type Output = Node;

    fn index(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> Netlist {
        // y = s ? b : a  ==  (s & b) | (~s & a)
        let mut nl = Netlist::new("mux");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ns = nl.add_gate1(Op::Not, s);
        let t0 = nl.add_gate2(Op::And, s, b);
        let t1 = nl.add_gate2(Op::And, ns, a);
        let y = nl.add_gate2(Op::Or, t0, t1);
        nl.add_output(y, "y");
        nl
    }

    #[test]
    fn mux_truth_table() {
        let nl = mux();
        for bits in 0u8..8 {
            let s = bits & 1 != 0;
            let a = bits & 2 != 0;
            let b = bits & 4 != 0;
            let y = nl.eval_bools(&[s, a, b])[0];
            assert_eq!(y, if s { b } else { a }, "s={s} a={a} b={b}");
        }
    }

    #[test]
    fn counts() {
        let nl = mux();
        assert_eq!(nl.len(), 7);
        assert_eq!(nl.gate_count(), 4);
        assert_eq!(nl.gate2_count(), 3);
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        assert!(!nl.is_empty());
    }

    #[test]
    fn validate_ok_and_no_outputs() {
        let nl = mux();
        assert!(nl.validate().is_ok());
        let mut empty = Netlist::new("e");
        empty.add_input("a");
        assert_eq!(empty.validate(), Err(NetlistError::NoOutputs));
    }

    #[test]
    fn fanouts_and_counts() {
        let nl = mux();
        let fo = nl.fanouts();
        // s feeds the NOT gate and the AND gate.
        assert_eq!(fo[0].len(), 2);
        let fc = nl.fanout_counts();
        // Output node drives only the PO.
        assert_eq!(fc[6], 1);
    }

    #[test]
    fn add_node_checks_arity() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        assert!(matches!(
            nl.add_node(Op::And, &[a]),
            Err(NetlistError::InputArity {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            nl.add_node(Op::Not, &[NodeId::new(99)]),
            Err(NetlistError::InvalidNode { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.add_gate2(Op::And, a, NodeId::new(5));
    }

    #[test]
    fn cone_extraction_preserves_function() {
        let mut nl = mux();
        // Add a second, unrelated output.
        let a = nl.inputs()[1];
        let b = nl.inputs()[2];
        let extra = nl.add_gate2(Op::Xor, a, b);
        nl.add_output(extra, "z");

        let cone = nl.extract_cone(&[0]);
        assert_eq!(cone.outputs().len(), 1);
        assert!(cone.len() < nl.len());
        for bits in 0u8..8 {
            let s = bits & 1 != 0;
            let a = bits & 2 != 0;
            let b = bits & 4 != 0;
            assert_eq!(cone.eval_bools(&[s, a, b])[0], nl.eval_bools(&[s, a, b])[0]);
        }

        // The z-cone drops the unused select input.
        let zcone = nl.extract_cone(&[1]);
        assert_eq!(zcone.inputs().len(), 2);
    }

    #[test]
    fn output_can_be_input() {
        let mut nl = Netlist::new("wire");
        let a = nl.add_input("a");
        nl.add_output(a, "y");
        assert_eq!(nl.eval_bools(&[true]), vec![true]);
        assert_eq!(nl.eval_bools(&[false]), vec![false]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.add_const(true);
        let y = nl.add_gate2(Op::And, a, one);
        nl.add_output(y, "y");
        assert_eq!(nl.eval_bools(&[true]), vec![true]);
        assert_eq!(nl.eval_bools(&[false]), vec![false]);
    }
}
