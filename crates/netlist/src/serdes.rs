//! Binary netlist serialization — the IR layer of the workspace's
//! self-contained artifacts.
//!
//! [`Netlist::to_bytes`] / [`Netlist::from_bytes`] encode the arena as a
//! compact little-endian image (opcode + fanins + names per node, then
//! the input/output interface). Deserialization rebuilds the netlist
//! through the arena API, so every structural invariant (topological
//! order, arity, id ranges) is re-checked: corrupt images come back as
//! [`NetlistError::Malformed`], never a panic.
//!
//! The [`ByteWriter`] / [`ByteReader`] pair is shared with
//! `lbnn-core::artifact`, which embeds netlist images inside its
//! versioned, checksummed artifact container.

use crate::cell::Op;
use crate::error::NetlistError;
use crate::netlist::{Netlist, NodeId};

/// Little-endian byte-stream writer backing all artifact encoders.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over an encoded image.
///
/// Every accessor returns [`NetlistError::Malformed`] instead of
/// panicking when the image is truncated.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when the whole image has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn truncated(&self, what: &str) -> NetlistError {
        NetlistError::Malformed {
            reason: format!(
                "unexpected end of image at byte {} (reading {what})",
                self.pos
            ),
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] if fewer than `n` bytes remain.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], NetlistError> {
        if self.remaining() < n {
            return Err(self.truncated("bytes"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on a truncated image.
    pub fn get_u8(&mut self) -> Result<u8, NetlistError> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on a truncated image.
    pub fn get_u32(&mut self) -> Result<u32, NetlistError> {
        let b = self.get_bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on a truncated image.
    pub fn get_u64(&mut self) -> Result<u64, NetlistError> {
        let b = self.get_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on a truncated image.
    pub fn get_f64(&mut self) -> Result<f64, NetlistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, NetlistError> {
        let len = self.get_u32()? as usize;
        let at = self.pos;
        let bytes = self.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetlistError::Malformed {
            reason: format!("invalid UTF-8 in string at byte {at}"),
        })
    }

    /// Reads a `u32` count that must be plausible for `bytes_per_item`
    /// items in the remaining image (an overflow guard so corrupt counts
    /// fail fast instead of attempting huge allocations).
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on truncation or an impossible count.
    pub fn get_count(&mut self, what: &str, bytes_per_item: usize) -> Result<usize, NetlistError> {
        let count = self.get_u32()? as usize;
        if count.saturating_mul(bytes_per_item.max(1)) > self.remaining() {
            return Err(NetlistError::Malformed {
                reason: format!(
                    "{what} count {count} exceeds the {} bytes remaining",
                    self.remaining()
                ),
            });
        }
        Ok(count)
    }
}

impl Netlist {
    /// Serializes the netlist to its binary image.
    ///
    /// The inverse is [`Netlist::from_bytes`]; `from_bytes(&to_bytes())`
    /// reproduces the netlist exactly (node ids, names, interface order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        write_netlist(self, &mut w);
        w.into_bytes()
    }

    /// Deserializes a netlist from the image produced by
    /// [`Netlist::to_bytes`].
    ///
    /// The arena is rebuilt node by node through the construction API, so
    /// all structural invariants are re-validated.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Malformed`] on truncated or structurally invalid
    /// images (never panics on untrusted bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Netlist, NetlistError> {
        let mut r = ByteReader::new(bytes);
        let nl = read_netlist(&mut r)?;
        if !r.is_empty() {
            return Err(NetlistError::Malformed {
                reason: format!("{} trailing bytes after netlist image", r.remaining()),
            });
        }
        Ok(nl)
    }
}

/// Writes a netlist image into an existing writer (used by the core
/// artifact container to embed netlists without an extra copy).
pub fn write_netlist(nl: &Netlist, w: &mut ByteWriter) {
    w.put_str(nl.name());
    w.put_u32(nl.len() as u32);
    for (id, node) in nl.iter() {
        w.put_u8(node.op().code());
        match nl.node_name(id) {
            Some(name) => {
                w.put_u8(1);
                w.put_str(name);
            }
            None => w.put_u8(0),
        }
        for f in node.fanins() {
            w.put_u32(f.index() as u32);
        }
    }
    w.put_u32(nl.outputs().len() as u32);
    for out in nl.outputs() {
        w.put_u32(out.node.index() as u32);
        w.put_str(&out.name);
    }
}

/// Reads one netlist image from the reader's current position (the
/// embedded-image counterpart of [`Netlist::from_bytes`]).
///
/// # Errors
///
/// [`NetlistError::Malformed`] on truncated or structurally invalid
/// images.
pub fn read_netlist(r: &mut ByteReader<'_>) -> Result<Netlist, NetlistError> {
    let malformed = |reason: String| NetlistError::Malformed { reason };
    let name = r.get_str()?;
    let mut nl = Netlist::new(name);
    let node_count = r.get_count("node", 2)?;
    for i in 0..node_count {
        let code = r.get_u8()?;
        let op = Op::from_code(code)
            .ok_or_else(|| malformed(format!("node {i}: unknown opcode {code}")))?;
        let node_name = if r.get_u8()? == 1 {
            Some(r.get_str()?)
        } else {
            None
        };
        let mut fanins = [NodeId::new(0); 2];
        for slot in fanins.iter_mut().take(op.arity()) {
            let raw = r.get_u32()?;
            if raw as usize >= i {
                return Err(malformed(format!(
                    "node {i}: fanin {raw} breaks topological order"
                )));
            }
            *slot = NodeId::new(raw);
        }
        let id = match op {
            Op::Input => nl.add_input(node_name.clone().unwrap_or_else(|| "in".to_string())),
            op => nl
                .add_node(op, &fanins[..op.arity()])
                .map_err(|e| malformed(format!("node {i}: {e}")))?,
        };
        if op != Op::Input {
            if let Some(n) = node_name {
                nl.set_node_name(id, n);
            }
        }
    }
    let output_count = r.get_count("output", 8)?;
    for i in 0..output_count {
        let node = r.get_u32()? as usize;
        let po_name = r.get_str()?;
        if node >= nl.len() {
            return Err(malformed(format!(
                "output {i} ({po_name}) points at missing node {node}"
            )));
        }
        nl.add_output(NodeId::new(node as u32), po_name);
    }
    nl.validate()
        .map_err(|e| malformed(format!("reconstructed netlist is invalid: {e}")))?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomDag;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("mix");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let one = nl.add_const(true);
        let g0 = nl.add_gate2(Op::And, a, b);
        let g1 = nl.add_gate2(Op::Xor, g0, one);
        let g2 = nl.add_gate1(Op::Not, g1);
        nl.set_node_name(g2, "inv_out");
        nl.add_output(g1, "y");
        nl.add_output(g2, "yn");
        nl
    }

    #[test]
    fn round_trip_is_exact() {
        let nl = sample();
        let back = Netlist::from_bytes(&nl.to_bytes()).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn round_trip_random_dags() {
        for seed in 0..8 {
            let nl = RandomDag::loose(10, 5, 8).outputs(3).generate(seed);
            let bytes = nl.to_bytes();
            let back = Netlist::from_bytes(&bytes).unwrap();
            assert_eq!(nl, back, "seed {seed}");
            // Function preserved, not just structure.
            for m in 0..32u64 {
                let bits: Vec<bool> = (0..10).map(|i| m >> i & 1 != 0).collect();
                assert_eq!(nl.eval_bools(&bits), back.eval_bools(&bits));
            }
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Netlist::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, NetlistError::Malformed { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_opcode_and_fanin_are_rejected() {
        let nl = sample();
        let bytes = nl.to_bytes();
        // Flipping any single byte must never panic; it either still
        // parses (name bytes) or reports Malformed.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            match Netlist::from_bytes(&bad) {
                Ok(_) | Err(NetlistError::Malformed { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Netlist::from_bytes(&bytes),
            Err(NetlistError::Malformed { .. })
        ));
    }

    #[test]
    fn reader_primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(333.25);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), 333.25);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_empty());
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn count_guard_rejects_absurd_counts() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_count("node", 2).is_err());
    }
}
