//! Property-based tests for the netlist substrate.

use lbnn_netlist::balance::balance;
use lbnn_netlist::eval::{evaluate, BitSliceEvaluator, Lanes};
use lbnn_netlist::random::RandomDag;
use lbnn_netlist::verilog::{parse_verilog, write_verilog};
use lbnn_netlist::Levels;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Verilog write → parse round trip preserves the function and the
    /// interface.
    #[test]
    fn verilog_round_trip(
        seed in 0u64..10_000,
        inputs in 2usize..10,
        depth in 1usize..6,
        width in 1usize..8,
        outputs in 1usize..4,
        loose in proptest::bool::ANY,
    ) {
        let gen = if loose {
            RandomDag::loose(inputs, depth, width)
        } else {
            RandomDag::strict(inputs, depth, width)
        };
        let nl = gen.outputs(outputs).generate(seed);
        let text = write_verilog(&nl);
        let back = parse_verilog(&text).expect("writer output parses");
        prop_assert_eq!(back.inputs().len(), nl.inputs().len());
        prop_assert_eq!(back.outputs().len(), nl.outputs().len());
        for m in 0..(1u64 << inputs.min(8)) {
            let bits: Vec<bool> = (0..inputs).map(|i| m >> i & 1 != 0).collect();
            prop_assert_eq!(nl.eval_bools(&bits), back.eval_bools(&bits));
        }
    }

    /// Bit-parallel evaluation agrees with scalar evaluation lane by lane.
    #[test]
    fn lanes_agree_with_scalar(
        seed in 0u64..10_000,
        inputs in 2usize..8,
        depth in 1usize..5,
        width in 1usize..6,
        lanes in 1usize..100,
    ) {
        let nl = RandomDag::loose(inputs, depth, width).outputs(2).generate(seed);
        let vectors: Vec<Vec<bool>> = (0..lanes)
            .map(|l| (0..inputs).map(|i| (seed as usize + l * 7 + i).is_multiple_of(3)).collect())
            .collect();
        let packed: Vec<Lanes> = (0..inputs)
            .map(|i| Lanes::from_bools(&vectors.iter().map(|v| v[i]).collect::<Vec<_>>()))
            .collect();
        let out = evaluate(&nl, &packed).unwrap();
        for (l, v) in vectors.iter().enumerate() {
            let scalar = nl.eval_bools(v);
            for (o, lane_out) in out.iter().enumerate() {
                prop_assert_eq!(lane_out.get(l), scalar[o]);
            }
        }
    }

    /// Balancing is idempotent: balancing a balanced netlist inserts
    /// nothing.
    #[test]
    fn balance_idempotent(
        seed in 0u64..10_000,
        inputs in 2usize..8,
        depth in 1usize..6,
        width in 1usize..6,
    ) {
        let nl = RandomDag::loose(inputs, depth, width).outputs(2).generate(seed);
        let (b1, _) = balance(&nl);
        let (b2, stats2) = balance(&b1);
        prop_assert_eq!(stats2.total(), 0);
        prop_assert_eq!(b1.len(), b2.len());
        let lv = Levels::compute(&b1);
        prop_assert!(lv.is_fully_balanced(&b1));
    }

    /// After balancing, every PI→PO path crosses exactly Lmax gates.
    #[test]
    fn balanced_path_lengths_uniform(
        seed in 0u64..10_000,
        inputs in 2usize..7,
        depth in 1usize..5,
        width in 1usize..5,
    ) {
        let nl = RandomDag::loose(inputs, depth, width).outputs(2).generate(seed);
        let (bal, _) = balance(&nl);
        let lv = Levels::compute(&bal);
        // Walk all paths from each PO backwards, tracking depth.
        for o in bal.outputs() {
            let mut stack = vec![(o.node, 0u32)];
            while let Some((node, d)) = stack.pop() {
                let fanins = bal.node(node).fanins();
                if fanins.is_empty() {
                    prop_assert_eq!(d, lv.max_level(), "path length mismatch");
                } else {
                    for &f in fanins {
                        stack.push((f, d + 1));
                    }
                }
            }
        }
    }

    /// One bit-sliced 64-lane pass equals 64 independent scalar passes:
    /// the defining property of the `BitSlice64` packing — every bit
    /// position of the word is a fully independent sample.
    #[test]
    fn bitsliced_pass_equals_64_scalar_passes(
        seed in 0u64..10_000,
        inputs in 2usize..8,
        depth in 1usize..6,
        width in 1usize..7,
        outputs in 1usize..4,
        loose in proptest::bool::ANY,
    ) {
        let gen = if loose {
            RandomDag::loose(inputs, depth, width)
        } else {
            RandomDag::strict(inputs, depth, width)
        };
        let nl = gen.outputs(outputs).generate(seed);

        // 64 pseudo-random scalar input vectors, one per lane.
        let vectors: Vec<Vec<bool>> = (0..64)
            .map(|l| {
                (0..inputs)
                    .map(|i| (seed as usize).wrapping_add(l * 131 + i * 17) % 5 < 2)
                    .collect()
            })
            .collect();

        // One bit-sliced pass over the packed 64-lane batch.
        let packed: Vec<Lanes> = (0..inputs)
            .map(|i| Lanes::from_bools(&vectors.iter().map(|v| v[i]).collect::<Vec<_>>()))
            .collect();
        let sliced = BitSliceEvaluator::compile(&nl);
        let got = sliced.evaluate(&packed).unwrap();

        // 64 independent scalar passes.
        for (lane, v) in vectors.iter().enumerate() {
            let scalar = nl.eval_bools(v);
            for (o, out) in got.iter().enumerate() {
                prop_assert_eq!(out.get(lane), scalar[o], "lane {} output {}", lane, o);
            }
        }
    }

    /// The 64×64 block-transpose packing is bit-identical to a naive
    /// per-bit transpose for arbitrary row counts and widths (block-edge
    /// shapes included), and `unpack_rows` inverts it exactly.
    #[test]
    fn pack_rows_transpose_matches_naive(
        seed in 0u64..10_000,
        nrows in 0usize..200,
        width in 1usize..140,
    ) {
        let rows: Vec<Vec<bool>> = (0..nrows)
            .map(|j| {
                (0..width)
                    .map(|i| (seed as usize).wrapping_add(j * 7 + i * 13).is_multiple_of(3))
                    .collect()
            })
            .collect();
        let cols = Lanes::pack_rows(&rows, width);
        prop_assert_eq!(cols.len(), width);
        for (i, col) in cols.iter().enumerate() {
            let mut naive = Lanes::zeros(nrows);
            for (j, row) in rows.iter().enumerate() {
                naive.set(j, row[i]);
            }
            prop_assert_eq!(col, &naive, "signal {}", i);
        }
        prop_assert_eq!(Lanes::unpack_rows(&cols), rows);
    }
}
