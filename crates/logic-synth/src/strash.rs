//! Structural hashing, constant propagation and dead-code elimination.
//!
//! This is the workhorse cleanup pass of the synthesis pipeline ("run logic
//! minimization" in Fig 1 of the paper): identical gates are merged,
//! constants folded through the network, buffers and double inverters
//! collapsed, and unreachable gates dropped.

use std::collections::HashMap;

use lbnn_netlist::{Netlist, NodeId, Op};

/// Statistics reported by [`strash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrashStats {
    /// Node count before the pass (including inputs).
    pub nodes_before: usize,
    /// Node count after the pass (including inputs).
    pub nodes_after: usize,
    /// Gates simplified by constant folding or algebraic rules.
    pub folded: usize,
    /// Gates merged with an identical existing gate.
    pub merged: usize,
}

/// Runs structural hashing over the netlist.
///
/// Applied rules, in order:
///
/// 1. buffer elision (`BUF(x) → x`) and double-inverter collapse,
/// 2. constant folding (`AND(x,0) → 0`, `XOR(x,1) → NOT x`, …),
/// 3. same-operand and complement rules (`AND(x,x) → x`, `OR(x,~x) → 1`, …),
/// 4. hash-consing of structurally identical gates (commutative inputs are
///    canonicalized),
/// 5. dead-node elimination (gates not reachable from any output are
///    dropped; primary inputs are always kept to preserve the interface).
pub fn strash(netlist: &Netlist) -> (Netlist, StrashStats) {
    let mut stats = StrashStats {
        nodes_before: netlist.len(),
        ..Default::default()
    };

    // Scratch netlist holding simplified nodes (may contain dead ones).
    let mut scratch = Netlist::new(netlist.name().to_string());
    let mut remap: Vec<NodeId> = Vec::with_capacity(netlist.len());
    let mut hash: HashMap<(Op, NodeId, NodeId), NodeId> = HashMap::new();
    let mut const_nodes: [Option<NodeId>; 2] = [None, None];

    // Helper closures operate on `scratch`.
    fn get_const(scratch: &mut Netlist, const_nodes: &mut [Option<NodeId>; 2], v: bool) -> NodeId {
        let idx = usize::from(v);
        if let Some(n) = const_nodes[idx] {
            n
        } else {
            let n = scratch.add_const(v);
            const_nodes[idx] = Some(n);
            n
        }
    }

    fn const_value(scratch: &Netlist, id: NodeId) -> Option<bool> {
        match scratch.node(id).op() {
            Op::Const0 => Some(false),
            Op::Const1 => Some(true),
            _ => None,
        }
    }

    /// `true` if `a` is the inverter of `b` in the scratch netlist.
    fn is_not_of(scratch: &Netlist, a: NodeId, b: NodeId) -> bool {
        let n = scratch.node(a);
        n.op() == Op::Not && n.fanins()[0] == b
    }

    for (id, node) in netlist.iter() {
        let new_id = match node.op() {
            Op::Input => scratch.add_input(netlist.node_name(id).unwrap_or("in").to_string()),
            Op::Const0 => get_const(&mut scratch, &mut const_nodes, false),
            Op::Const1 => get_const(&mut scratch, &mut const_nodes, true),
            Op::Buf => {
                stats.folded += 1;
                remap[node.fanins()[0].index()]
            }
            Op::Not => {
                let a = remap[node.fanins()[0].index()];
                if let Some(v) = const_value(&scratch, a) {
                    stats.folded += 1;
                    get_const(&mut scratch, &mut const_nodes, !v)
                } else if scratch.node(a).op() == Op::Not {
                    // NOT(NOT(x)) = x
                    stats.folded += 1;
                    scratch.node(a).fanins()[0]
                } else if let Some(&n) = hash.get(&(Op::Not, a, a)) {
                    stats.merged += 1;
                    n
                } else {
                    let n = scratch.add_gate1(Op::Not, a);
                    hash.insert((Op::Not, a, a), n);
                    n
                }
            }
            op => {
                let mut a = remap[node.fanins()[0].index()];
                let mut b = remap[node.fanins()[1].index()];
                if op.is_commutative() && b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                let ca = const_value(&scratch, a);
                let cb = const_value(&scratch, b);

                // Constant folding and algebraic rules. `simplified` is
                // Some(node) when the gate disappears.
                let simplified: Option<NodeId> = match (ca, cb) {
                    (Some(va), Some(vb)) => Some(get_const(
                        &mut scratch,
                        &mut const_nodes,
                        op.eval_bit(va, vb),
                    )),
                    (Some(v), None) | (None, Some(v)) => {
                        let x = if ca.is_some() { b } else { a };
                        match (op, v) {
                            (Op::And, false) | (Op::Nor, true) => {
                                Some(get_const(&mut scratch, &mut const_nodes, false))
                            }
                            (Op::Or, true) | (Op::Nand, false) => {
                                Some(get_const(&mut scratch, &mut const_nodes, true))
                            }
                            (Op::And, true)
                            | (Op::Or, false)
                            | (Op::Xor, false)
                            | (Op::Xnor, true) => Some(x),
                            // These reduce to NOT(x): emit via the Not path.
                            (Op::Nand, true)
                            | (Op::Nor, false)
                            | (Op::Xor, true)
                            | (Op::Xnor, false) => {
                                let n = if scratch.node(x).op() == Op::Not {
                                    scratch.node(x).fanins()[0]
                                } else if let Some(&n) = hash.get(&(Op::Not, x, x)) {
                                    n
                                } else {
                                    let n = scratch.add_gate1(Op::Not, x);
                                    hash.insert((Op::Not, x, x), n);
                                    n
                                };
                                Some(n)
                            }
                            _ => None,
                        }
                    }
                    (None, None) if a == b => Some(match op {
                        Op::And | Op::Or => a,
                        Op::Xor => get_const(&mut scratch, &mut const_nodes, false),
                        Op::Xnor => get_const(&mut scratch, &mut const_nodes, true),
                        Op::Nand | Op::Nor => {
                            if scratch.node(a).op() == Op::Not {
                                scratch.node(a).fanins()[0]
                            } else if let Some(&n) = hash.get(&(Op::Not, a, a)) {
                                n
                            } else {
                                let n = scratch.add_gate1(Op::Not, a);
                                hash.insert((Op::Not, a, a), n);
                                n
                            }
                        }
                        _ => unreachable!("all gate2 ops covered"),
                    }),
                    (None, None) if is_not_of(&scratch, a, b) || is_not_of(&scratch, b, a) => {
                        Some(match op {
                            Op::And | Op::Nor | Op::Xnor => {
                                get_const(&mut scratch, &mut const_nodes, false)
                            }
                            Op::Or | Op::Nand | Op::Xor => {
                                get_const(&mut scratch, &mut const_nodes, true)
                            }
                            _ => unreachable!("all gate2 ops covered"),
                        })
                    }
                    _ => None,
                };

                match simplified {
                    Some(n) => {
                        stats.folded += 1;
                        n
                    }
                    None => {
                        if let Some(&n) = hash.get(&(op, a, b)) {
                            stats.merged += 1;
                            n
                        } else {
                            let n = scratch.add_gate2(op, a, b);
                            hash.insert((op, a, b), n);
                            n
                        }
                    }
                }
            }
        };
        remap.push(new_id);
    }

    // Dead-node sweep: keep all PIs (interface stability) and every node
    // reachable from an output.
    let mut keep = vec![false; scratch.len()];
    let mut stack: Vec<NodeId> = netlist
        .outputs()
        .iter()
        .map(|o| remap[o.node.index()])
        .collect();
    while let Some(id) = stack.pop() {
        if keep[id.index()] {
            continue;
        }
        keep[id.index()] = true;
        for &f in scratch.node(id).fanins() {
            stack.push(f);
        }
    }

    let mut out = Netlist::new(netlist.name().to_string());
    let mut final_map: Vec<Option<NodeId>> = vec![None; scratch.len()];
    // Inputs in original order, always.
    for &pi in scratch.inputs() {
        let n = out.add_input(scratch.node_name(pi).unwrap_or("in").to_string());
        final_map[pi.index()] = Some(n);
    }
    for (id, node) in scratch.iter() {
        if node.op() == Op::Input || !keep[id.index()] {
            continue;
        }
        let fanins: Vec<NodeId> = node
            .fanins()
            .iter()
            .map(|f| final_map[f.index()].expect("topo order"))
            .collect();
        let n = out.add_node(node.op(), &fanins).expect("valid rebuild");
        final_map[id.index()] = Some(n);
    }
    for o in netlist.outputs() {
        let n = final_map[remap[o.node.index()].index()].expect("output reachable");
        out.add_output(n, o.name.clone());
    }

    stats.nodes_after = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_netlist::random::RandomDag;

    fn assert_equiv(a: &Netlist, b: &Netlist) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        let n = a.inputs().len();
        if n <= 12 {
            for m in 0..(1u64 << n) {
                let ins: Vec<bool> = (0..n).map(|v| m >> v & 1 != 0).collect();
                assert_eq!(a.eval_bools(&ins), b.eval_bools(&ins), "minterm {m:#b}");
            }
        } else {
            use rand::rngs::StdRng;
            use rand::{RngExt, SeedableRng};
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..256 {
                let ins: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
                assert_eq!(a.eval_bools(&ins), b.eval_bools(&ins));
            }
        }
    }

    #[test]
    fn merges_identical_gates() {
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate2(Op::And, a, b);
        let g2 = nl.add_gate2(Op::And, b, a); // commutative duplicate
        let y = nl.add_gate2(Op::Xor, g1, g2); // x ^ x = 0
        nl.add_output(y, "y");
        let (opt, stats) = strash(&nl);
        assert!(stats.merged >= 1);
        // XOR(x, x) folds to constant 0.
        assert_eq!(opt.gate2_count(), 0);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn constant_folding_cascades() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let zero = nl.add_const(false);
        let g1 = nl.add_gate2(Op::And, a, zero); // = 0
        let g2 = nl.add_gate2(Op::Or, g1, a); // = a
        let g3 = nl.add_gate2(Op::Xnor, g2, g2); // = 1
        let y = nl.add_gate2(Op::And, g3, a); // = a
        nl.add_output(y, "y");
        let (opt, _) = strash(&nl);
        assert_eq!(opt.gate_count(), 0, "everything folds to the input");
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn double_negation_and_buffers_collapse() {
        let mut nl = Netlist::new("nn");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_gate1(Op::Not, a);
        let buf = nl.add_gate1(Op::Buf, n1);
        let n2 = nl.add_gate1(Op::Not, buf);
        let y = nl.add_gate2(Op::And, n2, b);
        nl.add_output(y, "y");
        let (opt, _) = strash(&nl);
        assert_eq!(opt.gate_count(), 1, "just the AND survives");
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn complement_rules() {
        let mut nl = Netlist::new("comp");
        let a = nl.add_input("a");
        let na = nl.add_gate1(Op::Not, a);
        let t = nl.add_gate2(Op::Or, a, na); // = 1
        let u = nl.add_gate2(Op::And, a, na); // = 0
        let y = nl.add_gate2(Op::Xor, t, u); // = 1
        nl.add_output(y, "y");
        let (opt, _) = strash(&nl);
        assert_eq!(opt.gate2_count(), 0);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn dead_nodes_are_swept_but_inputs_kept() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let _dead = nl.add_gate2(Op::And, b, c);
        let y = nl.add_gate1(Op::Not, a);
        nl.add_output(y, "y");
        let (opt, _) = strash(&nl);
        assert_eq!(opt.inputs().len(), 3, "interface preserved");
        assert_eq!(opt.gate_count(), 1);
        assert_equiv(&nl, &opt);
    }

    #[test]
    fn random_netlists_stay_equivalent() {
        for seed in 0..8 {
            let nl = RandomDag::loose(8, 6, 10).outputs(4).generate(seed);
            let (opt, stats) = strash(&nl);
            assert!(stats.nodes_after <= stats.nodes_before);
            assert_equiv(&nl, &opt);
            // Idempotence: a second pass finds nothing new.
            let (opt2, stats2) = strash(&opt);
            assert_eq!(opt.len(), opt2.len());
            assert_eq!(stats2.folded, 0, "second pass folds nothing");
        }
    }

    #[test]
    fn nand_of_same_input_becomes_not() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate2(Op::Nand, a, a);
        nl.add_output(y, "y");
        let (opt, _) = strash(&nl);
        assert_eq!(opt.gate_count(), 1);
        assert_eq!(
            opt.node(opt.outputs()[0].node).op(),
            Op::Not,
            "NAND(x,x) = NOT x"
        );
        assert_equiv(&nl, &opt);
    }
}
