//! Espresso-style two-level minimization.
//!
//! Implements the classic EXPAND / IRREDUNDANT / REDUCE loop over
//! incompletely specified functions, plus a sample-based variant
//! ([`minimize_samples`]) that NullaNet-style extraction uses when the
//! ON/OFF sets are observed minterm lists rather than closed-form covers
//! (don't-cares are then implicit — exactly the situation described in the
//! NullaNet upstream of the paper).

use crate::cube::{Cover, Cube, Literal};

/// Recursion guard: tautology/complement recursion splits at most once per
/// variable, so depth is bounded by the variable count; this is a safety
/// net for pathological covers.
const MAX_DEPTH: usize = 128;

/// `true` if the cover is a tautology (covers every minterm).
///
/// Uses unate reduction: a unate cover is a tautology iff it contains the
/// full cube; binate covers split on the most binate variable.
pub fn is_tautology(cover: &Cover) -> bool {
    taut_rec(cover, 0)
}

fn taut_rec(cover: &Cover, depth: usize) -> bool {
    if cover.cubes().iter().any(Cube::is_full) {
        return true;
    }
    if cover.is_empty() {
        return false;
    }
    assert!(
        depth < MAX_DEPTH,
        "tautology recursion exceeded depth bound"
    );
    match cover.most_binate_var() {
        // No variable appears at all, and no cube is full: not a tautology.
        None => false,
        Some(v) => {
            // Unate in v? If v never appears in one phase, cubes with v in the
            // other phase can't help cover that cofactor — recursion handles
            // it naturally, so just split.
            taut_rec(&cover.cofactor(v, false), depth + 1)
                && taut_rec(&cover.cofactor(v, true), depth + 1)
        }
    }
}

/// Complement of a cover (Shannon recursion with single-cube De Morgan base
/// case). Exponential in the worst case — intended for the variable counts
/// NullaNet hands us (≤ 24).
pub fn complement(cover: &Cover) -> Cover {
    comp_rec(cover, 0)
}

fn comp_rec(cover: &Cover, depth: usize) -> Cover {
    let nvars = cover.nvars();
    if cover.is_empty() {
        return Cover::tautology(nvars);
    }
    if cover.cubes().iter().any(Cube::is_full) {
        return Cover::empty(nvars);
    }
    assert!(
        depth < MAX_DEPTH,
        "complement recursion exceeded depth bound"
    );
    if cover.cube_count() == 1 {
        // De Morgan: (l1 l2 … lk)' = l1' + l2' + … + lk'
        let cube = &cover.cubes()[0];
        let mut out = Cover::empty(nvars);
        for v in 0..nvars {
            match cube.literal(v) {
                Literal::Pos => out.push(Cube::from_literals(nvars, &[(v, false)])),
                Literal::Neg => out.push(Cube::from_literals(nvars, &[(v, true)])),
                Literal::DontCare => {}
            }
        }
        return out;
    }
    let v = cover
        .most_binate_var()
        .expect("non-empty, non-full cover mentions a variable");
    let c0 = comp_rec(&cover.cofactor(v, false), depth + 1);
    let c1 = comp_rec(&cover.cofactor(v, true), depth + 1);
    let mut out = Cover::empty(nvars);
    for c in c0.cubes() {
        let mut c = c.clone();
        c.set(v, Literal::Neg);
        out.push(c);
    }
    for c in c1.cubes() {
        let mut c = c.clone();
        c.set(v, Literal::Pos);
        out.push(c);
    }
    out.remove_contained();
    out
}

/// `true` if `cover ∪ dc` covers `cube` entirely.
pub fn covers_cube(cover: &Cover, dc: &Cover, cube: &Cube) -> bool {
    let mut restricted = cover.cofactor_cube(cube);
    for c in dc.cofactor_cube(cube).cubes() {
        restricted.push(c.clone());
    }
    is_tautology(&restricted)
}

/// EXPAND: enlarge each cube to a prime implicant against the OFF-set,
/// dropping cubes that become contained in an already-expanded cube.
///
/// Literal removal order is "most freeing first": literals whose removal
/// lets the cube absorb the most other cubes are tried first; we use the
/// simple heuristic of trying variables in increasing frequency-in-OFF-set
/// order, which tends to keep expansion legal longer.
pub fn expand(cover: &mut Cover, off: &Cover) {
    let nvars = cover.nvars();
    // Frequency of each variable in the OFF-set: removing a rarely-blocked
    // literal first is more likely to succeed.
    let mut off_freq = vec![0usize; nvars];
    for c in off.cubes() {
        for (v, freq) in off_freq.iter_mut().enumerate() {
            if c.literal(v) != Literal::DontCare {
                *freq += 1;
            }
        }
    }
    let mut order: Vec<usize> = (0..nvars).collect();
    order.sort_by_key(|&v| off_freq[v]);

    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Expand small cubes first: they have the most to gain.
    cubes.sort_by_key(Cube::literal_count);
    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    'outer: for mut cube in cubes {
        // Skip cubes already swallowed by an expanded prime.
        for r in &result {
            if r.contains(&cube) {
                continue 'outer;
            }
        }
        for &v in &order {
            if cube.literal(v) == Literal::DontCare {
                continue;
            }
            let mut widened = cube.clone();
            widened.set(v, Literal::DontCare);
            let blocked = off.cubes().iter().any(|o| !widened.intersect(o).is_empty());
            if !blocked {
                cube = widened;
            }
        }
        result.retain(|r| !cube.contains(r));
        result.push(cube);
    }
    *cover = Cover::from_cubes(nvars, result);
}

/// IRREDUNDANT: drop every cube whose minterms are all covered by the rest
/// of the cover plus the don't-care set.
pub fn irredundant(cover: &mut Cover, dc: &Cover) {
    // Try to drop large cubes first (they are most likely to be the union
    // of smaller essential ones? — actually classic espresso drops
    // *redundant* cubes in increasing essentiality; simple order works).
    let mut i = 0;
    while i < cover.cube_count() {
        let cube = cover.cubes()[i].clone();
        let rest = Cover::from_cubes(
            cover.nvars(),
            cover
                .cubes()
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c.clone())
                .collect(),
        );
        if covers_cube(&rest, dc, &cube) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
}

/// REDUCE: shrink each cube to the smallest cube still covering the part of
/// the function not covered by the other cubes, opening room for the next
/// EXPAND to find different primes.
pub fn reduce(cover: &mut Cover, dc: &Cover) {
    let nvars = cover.nvars();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Classic heuristic: reduce in order of decreasing size.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.literal_count()));
    for i in 0..cubes.len() {
        let cube = cubes[i].clone();
        let mut rest = Cover::from_cubes(
            nvars,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| c.clone())
                .collect(),
        );
        for c in dc.cubes() {
            rest.push(c.clone());
        }
        // c~ = c ∩ supercube(complement(rest cofactored by c))
        let not_rest = comp_rec(&rest.cofactor_cube(&cube), 0);
        if not_rest.is_empty() {
            // Entirely covered by the others: shrink to nothing.
            cubes[i] = {
                let mut dead = Cube::full(nvars);
                if nvars > 0 {
                    // Make it empty by giving variable 0 no phase: emulate
                    // by intersecting opposite literals.
                    dead = Cube::from_literals(nvars, &[(0, true)])
                        .intersect(&Cube::from_literals(nvars, &[(0, false)]));
                }
                dead
            };
            continue;
        }
        let mut sup = not_rest.cubes()[0].clone();
        for c in &not_rest.cubes()[1..] {
            sup = sup.supercube(c);
        }
        cubes[i] = cube.intersect(&sup);
    }
    *cover = Cover::empty(nvars);
    for c in cubes {
        cover.push(c); // push drops empty cubes
    }
}

/// Cost used to decide whether an iteration improved the cover.
fn cost(cover: &Cover) -> (usize, usize) {
    (cover.cube_count(), cover.literal_cost())
}

/// Minimizes an incompletely specified function given as ON-set and DC-set
/// covers. Returns a cover `F` with `ON ⊆ F ⊆ ON ∪ DC` whose cube/literal
/// cost is locally minimal under the EXPAND/IRREDUNDANT/REDUCE loop.
///
/// # Example
///
/// ```
/// use lbnn_logic_synth::cube::Cover;
/// use lbnn_logic_synth::espresso::minimize;
/// // f = sum of all 4 minterms of 2 vars = constant 1.
/// let on = Cover::from_minterms(2, &[0, 1, 2, 3]);
/// let min = minimize(&on, &Cover::empty(2));
/// assert_eq!(min.cube_count(), 1);
/// assert_eq!(min.literal_cost(), 0);
/// ```
pub fn minimize(on: &Cover, dc: &Cover) -> Cover {
    assert_eq!(on.nvars(), dc.nvars(), "ON/DC universe mismatch");
    let nvars = on.nvars();
    if on.is_empty() {
        return Cover::empty(nvars);
    }
    // OFF = (ON ∪ DC)'
    let mut union = on.clone();
    for c in dc.cubes() {
        union.push(c.clone());
    }
    let off = complement(&union);

    let mut f = on.clone();
    f.remove_contained();
    expand(&mut f, &off);
    irredundant(&mut f, dc);
    let mut best = f.clone();
    for _ in 0..8 {
        reduce(&mut f, dc);
        expand(&mut f, &off);
        irredundant(&mut f, dc);
        if cost(&f) < cost(&best) {
            best = f.clone();
        } else {
            break;
        }
    }
    best
}

/// Fraction of samples in which variable `v` appears in positive phase.
fn phase_rate(samples: &[Cube], v: usize) -> f64 {
    if samples.is_empty() {
        return 0.5;
    }
    let pos = samples
        .iter()
        .filter(|s| s.literal(v) == Literal::Pos)
        .count();
    pos as f64 / samples.len() as f64
}

/// Sample-based minimization for NullaNet-style incompletely specified
/// functions: `on` and `off` are observed minterms (full cubes, any width);
/// everything unobserved is a don't-care.
///
/// Scales to hundreds of variables because primality is checked against the
/// explicit OFF *sample list* instead of a complemented cover.
///
/// # Panics
///
/// Panics if a sample's width differs from `nvars`.
pub fn minimize_samples(nvars: usize, on: &[Cube], off: &[Cube]) -> Cover {
    for s in on.iter().chain(off) {
        assert_eq!(s.nvars(), nvars, "sample width mismatch");
    }
    if on.is_empty() {
        return Cover::empty(nvars);
    }

    // EXPAND each ON sample against the OFF samples. Variables are dropped
    // in order of *increasing* label correlation: a variable whose phase
    // barely differs between ON and OFF samples carries little information,
    // so freeing it first keeps the discriminative variables as the cube's
    // surviving literals (better generalization, smaller covers).
    let correlation: Vec<f64> = (0..nvars)
        .map(|v| {
            let p_on = phase_rate(on, v);
            let p_off = phase_rate(off, v);
            (p_on - p_off).abs()
        })
        .collect();
    let mut order: Vec<usize> = (0..nvars).collect();
    order.sort_by(|&a, &b| {
        correlation[a]
            .partial_cmp(&correlation[b])
            .expect("correlations are finite")
    });

    let mut expanded: Vec<Cube> = Vec::with_capacity(on.len());
    'outer: for sample in on {
        for e in &expanded {
            if e.contains(sample) {
                continue 'outer;
            }
        }
        let mut cube = sample.clone();
        for &v in &order {
            if cube.literal(v) == Literal::DontCare {
                continue;
            }
            let mut widened = cube.clone();
            widened.set(v, Literal::DontCare);
            let blocked = off.iter().any(|o| widened.contains(o));
            if !blocked {
                cube = widened;
            }
        }
        expanded.retain(|e| !cube.contains(e));
        expanded.push(cube);
    }

    // Greedy minimal cover: repeatedly pick the prime covering the most
    // still-uncovered ON samples.
    let mut covered = vec![false; on.len()];
    let mut chosen: Vec<Cube> = Vec::new();
    loop {
        let mut best: Option<(usize, usize)> = None; // (cube idx, gain)
        for (ci, cube) in expanded.iter().enumerate() {
            let gain = on
                .iter()
                .enumerate()
                .filter(|&(si, s)| !covered[si] && cube.contains(s))
                .count();
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((ci, gain));
            }
        }
        let Some((ci, _)) = best else { break };
        let cube = expanded[ci].clone();
        for (si, s) in on.iter().enumerate() {
            if cube.contains(s) {
                covered[si] = true;
            }
        }
        chosen.push(cube);
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    Cover::from_cubes(nvars, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    #[test]
    fn tautology_detection() {
        assert!(is_tautology(&Cover::tautology(3)));
        assert!(!is_tautology(&Cover::empty(3)));
        // x + x' is a tautology.
        let f = Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, true)]),
                Cube::from_literals(2, &[(0, false)]),
            ],
        );
        assert!(is_tautology(&f));
        // x + x y' is not.
        let g = Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, true)]),
                Cube::from_literals(2, &[(0, true), (1, false)]),
            ],
        );
        assert!(!is_tautology(&g));
    }

    #[test]
    fn complement_is_exact() {
        // Check complement on every 3-variable function given by minterms.
        for f_bits in [0u8, 1, 0b1010_1010, 0b1100_0011, 0b0110_1001, 0xFF] {
            let minterms: Vec<u64> = (0..8u64).filter(|&m| f_bits >> m & 1 != 0).collect();
            let cover = Cover::from_minterms(3, &minterms);
            let comp = complement(&cover);
            let t = TruthTable::from_cover(&cover);
            let tc = TruthTable::from_cover(&comp);
            assert_eq!(t.not(), tc, "f_bits={f_bits:#010b}");
        }
    }

    #[test]
    fn minimize_majority() {
        let on = Cover::from_minterms(3, &[0b011, 0b101, 0b110, 0b111]);
        let min = minimize(&on, &Cover::empty(3));
        let t = TruthTable::from_cover(&on);
        assert!(t.equals_cover(&min));
        assert_eq!(min.cube_count(), 3, "majority = ab + ac + bc");
        assert_eq!(min.literal_cost(), 6);
    }

    #[test]
    fn minimize_with_dont_cares() {
        // ON = {000}, DC = everything else: minimizes to constant 1.
        let on = Cover::from_minterms(2, &[0]);
        let dc = Cover::from_minterms(2, &[1, 2, 3]);
        let min = minimize(&on, &dc);
        assert_eq!(min.cube_count(), 1);
        assert!(min.cubes()[0].is_full());
    }

    #[test]
    fn minimize_is_sound_for_random_isfs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..30 {
            let nvars = 4 + (trial % 3);
            let mut on = Vec::new();
            let mut dc = Vec::new();
            for m in 0..(1u64 << nvars) {
                match rng.random_range(0..3) {
                    0 => on.push(m),
                    1 => dc.push(m),
                    _ => {}
                }
            }
            let on_c = Cover::from_minterms(nvars, &on);
            let dc_c = Cover::from_minterms(nvars, &dc);
            let min = minimize(&on_c, &dc_c);
            // Soundness: ON ⊆ min ⊆ ON ∪ DC.
            for &m in &on {
                assert!(min.covers_minterm(m), "trial {trial}: lost minterm {m}");
            }
            for m in 0..(1u64 << nvars) {
                if min.covers_minterm(m) {
                    assert!(
                        on.contains(&m) || dc.contains(&m),
                        "trial {trial}: minimized cover spilled into OFF at {m}"
                    );
                }
            }
            // Effectiveness: never more cubes than raw ON minterms.
            assert!(min.cube_count() <= on.len().max(1));
        }
    }

    #[test]
    fn minimize_samples_fully_observed() {
        // 6-var function, fully observed: f = x0. Full observation forces
        // every expansion to keep x0, so the result is the single literal.
        let mut on = Vec::new();
        let mut off = Vec::new();
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|v| m >> v & 1 != 0).collect();
            if bits[0] {
                on.push(Cube::from_bools(&bits));
            } else {
                off.push(Cube::from_bools(&bits));
            }
        }
        let min = minimize_samples(6, &on, &off);
        assert_eq!(min.cube_count(), 1, "single literal explains the data");
        assert_eq!(min.literal_cost(), 1);
        for s in &on {
            assert!(min.cubes().iter().any(|c| c.contains(s)));
        }
        for s in &off {
            assert!(!min.cubes().iter().any(|c| c.contains(s)));
        }
    }

    #[test]
    fn minimize_samples_sparse_observation_is_sound() {
        // Only a third of the minterms are observed: the minimizer may
        // generalize differently from the hidden function, but it must
        // stay consistent with every observation.
        let mut on = Vec::new();
        let mut off = Vec::new();
        for m in (0..64u64).step_by(3) {
            let bits: Vec<bool> = (0..6).map(|v| m >> v & 1 != 0).collect();
            if bits[0] {
                on.push(Cube::from_bools(&bits));
            } else {
                off.push(Cube::from_bools(&bits));
            }
        }
        let min = minimize_samples(6, &on, &off);
        for s in &on {
            assert!(min.cubes().iter().any(|c| c.contains(s)));
        }
        for s in &off {
            assert!(!min.cubes().iter().any(|c| c.contains(s)));
        }
        // The correlation-ordered expansion should find a compact cover.
        assert!(min.cube_count() <= on.len() / 2);
    }

    #[test]
    fn minimize_samples_wide_universe() {
        // 100 variables — far beyond truth-table reach.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let nvars = 100;
        let mut on = Vec::new();
        let mut off = Vec::new();
        for _ in 0..80 {
            let bits: Vec<bool> = (0..nvars).map(|_| rng.random_bool(0.5)).collect();
            // Hidden function: x0 & !x1. Both variables correlate strongly
            // with the label, so the correlation-ordered expansion keeps
            // them as the surviving literals.
            if bits[0] && !bits[1] {
                on.push(Cube::from_bools(&bits));
            } else {
                off.push(Cube::from_bools(&bits));
            }
        }
        assert!(!on.is_empty() && !off.is_empty());
        let min = minimize_samples(nvars, &on, &off);
        for s in &on {
            assert!(min.cubes().iter().any(|c| c.contains(s)));
        }
        for s in &off {
            assert!(!min.cubes().iter().any(|c| c.contains(s)));
        }
        assert_eq!(min.cube_count(), 1, "x0·x1' explains all samples");
        assert_eq!(min.literal_cost(), 2);
    }

    #[test]
    fn reduce_then_expand_keeps_function() {
        let on = Cover::from_minterms(4, &[1, 3, 5, 7, 9, 11, 15]);
        let dc = Cover::empty(4);
        let min = minimize(&on, &dc);
        let t = TruthTable::from_cover(&on);
        assert!(t.equals_cover(&min));
    }

    #[test]
    fn empty_on_set() {
        let min = minimize(&Cover::empty(3), &Cover::empty(3));
        assert!(min.is_empty());
        let min2 = minimize_samples(3, &[], &[Cube::from_bools(&[true, true, true])]);
        assert!(min2.is_empty());
    }
}
