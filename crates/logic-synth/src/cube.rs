//! Positional-cube representation of product terms and covers.
//!
//! A [`Cube`] is a product term over `n` Boolean variables. Each variable is
//! encoded with two bits, PLA style: `(pos, neg) = (1,0)` is the positive
//! literal, `(0,1)` the negative literal, `(1,1)` a don't-care (variable
//! absent from the product), and `(0,0)` an empty (contradictory) cube.
//! A [`Cover`] is a set of cubes — a sum-of-products.

use std::fmt;

/// Number of `u64` words needed for `n` variable bits.
#[inline]
fn words_for(nvars: usize) -> usize {
    nvars.div_ceil(64)
}

/// The three states a variable can take inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Literal {
    /// Variable appears positively.
    Pos,
    /// Variable appears negated.
    Neg,
    /// Variable does not appear (don't care).
    DontCare,
}

/// A product term over `nvars` variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    nvars: usize,
    pos: Vec<u64>,
    neg: Vec<u64>,
}

impl Cube {
    /// The full cube (all variables don't-care): the constant-1 product.
    pub fn full(nvars: usize) -> Self {
        let w = words_for(nvars);
        let mut c = Cube {
            nvars,
            pos: vec![!0u64; w],
            neg: vec![!0u64; w],
        };
        c.mask_tail();
        c
    }

    /// The cube of a single minterm: bit `v` of `minterm` gives variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 64`; use explicit literal construction for wider
    /// functions.
    pub fn from_minterm(nvars: usize, minterm: u64) -> Self {
        assert!(nvars <= 64, "minterm construction limited to 64 variables");
        let mut c = Cube::full(nvars);
        for v in 0..nvars {
            c.set(
                v,
                if minterm >> v & 1 != 0 {
                    Literal::Pos
                } else {
                    Literal::Neg
                },
            );
        }
        c
    }

    /// The full-minterm cube of a sample: variable `v` takes phase
    /// `bits[v]`. Unlike [`Cube::from_minterm`] this supports any width.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut c = Cube::full(bits.len());
        for (v, &b) in bits.iter().enumerate() {
            c.set(v, if b { Literal::Pos } else { Literal::Neg });
        }
        c
    }

    /// Builds a cube from explicit literals (`(var, phase)` pairs); all other
    /// variables are don't-care.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range.
    pub fn from_literals(nvars: usize, literals: &[(usize, bool)]) -> Self {
        let mut c = Cube::full(nvars);
        for &(v, phase) in literals {
            c.set(v, if phase { Literal::Pos } else { Literal::Neg });
        }
        c
    }

    /// Number of variables in the cube's universe.
    #[inline]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The literal state of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or the cube is empty at `v`.
    pub fn literal(&self, v: usize) -> Literal {
        assert!(v < self.nvars, "variable {v} out of range {}", self.nvars);
        let (w, b) = (v / 64, v % 64);
        match (self.pos[w] >> b & 1, self.neg[w] >> b & 1) {
            (1, 1) => Literal::DontCare,
            (1, 0) => Literal::Pos,
            (0, 1) => Literal::Neg,
            _ => panic!("cube is empty at variable {v}"),
        }
    }

    /// Sets the literal state of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: usize, lit: Literal) {
        assert!(v < self.nvars, "variable {v} out of range {}", self.nvars);
        let (w, b) = (v / 64, v % 64);
        let (p, n) = match lit {
            Literal::Pos => (1u64, 0u64),
            Literal::Neg => (0, 1),
            Literal::DontCare => (1, 1),
        };
        self.pos[w] = self.pos[w] & !(1 << b) | (p << b);
        self.neg[w] = self.neg[w] & !(1 << b) | (n << b);
    }

    /// Number of literals (variables not don't-care).
    pub fn literal_count(&self) -> usize {
        let dc: usize = self
            .pos
            .iter()
            .zip(&self.neg)
            .map(|(&p, &n)| (p & n).count_ones() as usize)
            .sum();
        self.nvars - dc
    }

    /// `true` when some variable has neither phase (contradictory product).
    pub fn is_empty(&self) -> bool {
        let w = words_for(self.nvars);
        for i in 0..w {
            let mut present = self.pos[i] | self.neg[i];
            if i == w - 1 && !self.nvars.is_multiple_of(64) {
                present |= !((1u64 << (self.nvars % 64)) - 1);
            }
            if present != !0u64 {
                return true;
            }
        }
        false
    }

    /// `true` when every variable is don't-care (the constant-1 product).
    pub fn is_full(&self) -> bool {
        self.literal_count() == 0 && !self.is_empty()
    }

    /// Cube intersection (product of products). Empty if contradictory.
    pub fn intersect(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.nvars, other.nvars);
        Cube {
            nvars: self.nvars,
            pos: self
                .pos
                .iter()
                .zip(&other.pos)
                .map(|(a, b)| a & b)
                .collect(),
            neg: self
                .neg
                .iter()
                .zip(&other.neg)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// `true` if `other` is contained in `self` (every minterm of `other`
    /// is a minterm of `self`).
    pub fn contains(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.nvars, other.nvars);
        self.pos.iter().zip(&other.pos).all(|(s, o)| s & o == *o)
            && self.neg.iter().zip(&other.neg).all(|(s, o)| s & o == *o)
    }

    /// The smallest cube containing both (bitwise union of phases).
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.nvars, other.nvars);
        Cube {
            nvars: self.nvars,
            pos: self
                .pos
                .iter()
                .zip(&other.pos)
                .map(|(a, b)| a | b)
                .collect(),
            neg: self
                .neg
                .iter()
                .zip(&other.neg)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `true` if the cube contains the given minterm.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 64`.
    pub fn covers_minterm(&self, minterm: u64) -> bool {
        assert!(self.nvars <= 64);
        for v in 0..self.nvars {
            let (w, b) = (v / 64, v % 64);
            let bit = minterm >> v & 1 != 0;
            let ok = if bit {
                self.pos[w] >> b & 1 != 0
            } else {
                self.neg[w] >> b & 1 != 0
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Cofactor with respect to the literal `(v, phase)`: `None` if the cube
    /// requires the opposite phase (it vanishes), otherwise the cube with
    /// variable `v` freed.
    pub fn cofactor(&self, v: usize, phase: bool) -> Option<Cube> {
        match (self.literal(v), phase) {
            (Literal::Pos, false) | (Literal::Neg, true) => None,
            _ => {
                let mut c = self.clone();
                c.set(v, Literal::DontCare);
                Some(c)
            }
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.nvars % 64;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            if let Some(last) = self.pos.last_mut() {
                *last &= mask;
            }
            if let Some(last) = self.neg.last_mut() {
                *last &= mask;
            }
        }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("<empty>");
        }
        for v in 0..self.nvars {
            let c = match self.literal(v) {
                Literal::Pos => '1',
                Literal::Neg => '0',
                Literal::DontCare => '-',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A sum-of-products: a set of cubes over a common variable universe.
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    nvars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty(nvars: usize) -> Self {
        Cover {
            nvars,
            cubes: Vec::new(),
        }
    }

    /// A cover containing only the full cube (constant 1).
    pub fn tautology(nvars: usize) -> Self {
        Cover {
            nvars,
            cubes: vec![Cube::full(nvars)],
        }
    }

    /// Builds a cover from a list of minterms.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 64`.
    pub fn from_minterms(nvars: usize, minterms: &[u64]) -> Self {
        Cover {
            nvars,
            cubes: minterms
                .iter()
                .map(|&m| Cube::from_minterm(nvars, m))
                .collect(),
        }
    }

    /// Builds a cover from explicit cubes.
    ///
    /// # Panics
    ///
    /// Panics if cubes disagree on the variable count.
    pub fn from_cubes(nvars: usize, cubes: Vec<Cube>) -> Self {
        for c in &cubes {
            assert_eq!(c.nvars(), nvars, "cube universe mismatch");
        }
        Cover { nvars, cubes }
    }

    /// Number of variables in the universe.
    #[inline]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of cubes.
    #[inline]
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count across cubes (the classic PLA cost metric).
    pub fn literal_cost(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// `true` when the cover has no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube (non-empty ones only; empty cubes are dropped).
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.nvars(), self.nvars, "cube universe mismatch");
        if !cube.is_empty() {
            self.cubes.push(cube);
        }
    }

    /// Removes the cube at `index` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove(&mut self, index: usize) -> Cube {
        self.cubes.remove(index)
    }

    /// `true` if any cube covers the minterm.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 64`.
    pub fn covers_minterm(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(minterm))
    }

    /// Cofactor of the whole cover by literal `(v, phase)`.
    pub fn cofactor(&self, v: usize, phase: bool) -> Cover {
        Cover {
            nvars: self.nvars,
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.cofactor(v, phase))
                .collect(),
        }
    }

    /// Cofactor of the cover with respect to a *cube* (Shannon cofactor
    /// against every literal of `cube`).
    pub fn cofactor_cube(&self, cube: &Cube) -> Cover {
        let mut out = Vec::new();
        'next: for c in &self.cubes {
            let mut r = c.clone();
            for v in 0..self.nvars {
                match cube.literal(v) {
                    Literal::Pos => match r.literal(v) {
                        Literal::Neg => continue 'next,
                        _ => r.set(v, Literal::DontCare),
                    },
                    Literal::Neg => match r.literal(v) {
                        Literal::Pos => continue 'next,
                        _ => r.set(v, Literal::DontCare),
                    },
                    Literal::DontCare => {}
                }
            }
            out.push(r);
        }
        Cover {
            nvars: self.nvars,
            cubes: out,
        }
    }

    /// Removes cubes single-cube-contained in another cube of the cover.
    pub fn remove_contained(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i != j
                    && keep[j]
                    && keep[i]
                    && self.cubes[j].contains(&self.cubes[i])
                    && (!self.cubes[i].contains(&self.cubes[j]) || i > j)
                {
                    keep[i] = false;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Variable selection for recursion: the *most binate* variable (appears
    /// in both phases in the largest number of cubes), falling back to the
    /// most frequently used variable. `None` when all cubes are full.
    pub fn most_binate_var(&self) -> Option<usize> {
        let mut pos_count = vec![0usize; self.nvars];
        let mut neg_count = vec![0usize; self.nvars];
        for c in &self.cubes {
            for v in 0..self.nvars {
                match c.literal(v) {
                    Literal::Pos => pos_count[v] += 1,
                    Literal::Neg => neg_count[v] += 1,
                    Literal::DontCare => {}
                }
            }
        }
        (0..self.nvars)
            .filter(|&v| pos_count[v] + neg_count[v] > 0)
            .max_by_key(|&v| {
                let binate = pos_count[v].min(neg_count[v]);
                (binate, pos_count[v] + neg_count[v])
            })
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cover({} vars, {} cubes):", self.nvars, self.cubes.len())?;
        for c in &self.cubes {
            writeln!(f, "  {c:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_round_trip() {
        for m in 0..8u64 {
            let c = Cube::from_minterm(3, m);
            assert_eq!(c.literal_count(), 3);
            for other in 0..8u64 {
                assert_eq!(c.covers_minterm(other), m == other);
            }
        }
    }

    #[test]
    fn intersect_and_contains() {
        // ab (c free) ∩ bc (a free) = abc
        let ab = Cube::from_literals(3, &[(0, true), (1, true)]);
        let bc = Cube::from_literals(3, &[(1, true), (2, true)]);
        let abc = ab.intersect(&bc);
        assert_eq!(abc.literal_count(), 3);
        assert!(ab.contains(&abc));
        assert!(bc.contains(&abc));
        assert!(!abc.contains(&ab));

        // a ∩ a' = empty
        let a = Cube::from_literals(1, &[(0, true)]);
        let na = Cube::from_literals(1, &[(0, false)]);
        assert!(a.intersect(&na).is_empty());
    }

    #[test]
    fn supercube_drops_conflicting_literals() {
        let ab = Cube::from_literals(2, &[(0, true), (1, true)]);
        let anb = Cube::from_literals(2, &[(0, true), (1, false)]);
        let sup = ab.supercube(&anb);
        assert_eq!(sup.literal(0), Literal::Pos);
        assert_eq!(sup.literal(1), Literal::DontCare);
    }

    #[test]
    fn cofactor_behaviour() {
        let ab = Cube::from_literals(3, &[(0, true), (1, true)]);
        assert!(ab.cofactor(0, false).is_none());
        let cof = ab.cofactor(0, true).unwrap();
        assert_eq!(cof.literal(0), Literal::DontCare);
        assert_eq!(cof.literal(1), Literal::Pos);
        // Cofactor on an absent variable keeps the cube.
        assert!(ab.cofactor(2, false).is_some());
    }

    #[test]
    fn cover_cofactor_cube() {
        // F = ab + a'c ; cofactor by cube a -> b + c... wait: F_a = b + c? No:
        // F_a = b (from ab) — a'c vanishes. Check precisely.
        let f = Cover::from_cubes(
            3,
            vec![
                Cube::from_literals(3, &[(0, true), (1, true)]),
                Cube::from_literals(3, &[(0, false), (2, true)]),
            ],
        );
        let fa = f.cofactor_cube(&Cube::from_literals(3, &[(0, true)]));
        assert_eq!(fa.cube_count(), 1);
        assert_eq!(fa.cubes()[0].literal(1), Literal::Pos);
    }

    #[test]
    fn remove_contained_keeps_maximal_cubes() {
        let mut f = Cover::from_cubes(
            3,
            vec![
                Cube::from_literals(3, &[(0, true)]),                        // a
                Cube::from_literals(3, &[(0, true), (1, true)]),             // ab ⊆ a
                Cube::from_literals(3, &[(1, false), (2, true)]),            // b'c
                Cube::from_literals(3, &[(0, true), (1, false), (2, true)]), // ab'c ⊆ both
            ],
        );
        f.remove_contained();
        assert_eq!(f.cube_count(), 2);
    }

    #[test]
    fn remove_contained_deduplicates_equal_cubes() {
        let c = Cube::from_literals(2, &[(0, true)]);
        let mut f = Cover::from_cubes(2, vec![c.clone(), c.clone(), c]);
        f.remove_contained();
        assert_eq!(f.cube_count(), 1);
    }

    #[test]
    fn binate_selection() {
        // x0 appears in both phases; x1 only positive.
        let f = Cover::from_cubes(
            2,
            vec![
                Cube::from_literals(2, &[(0, true), (1, true)]),
                Cube::from_literals(2, &[(0, false)]),
            ],
        );
        assert_eq!(f.most_binate_var(), Some(0));
        let full = Cover::tautology(2);
        assert_eq!(full.most_binate_var(), None);
    }

    #[test]
    fn wide_cubes_beyond_64_vars() {
        let mut c = Cube::full(100);
        c.set(70, Literal::Pos);
        c.set(99, Literal::Neg);
        assert_eq!(c.literal_count(), 2);
        assert_eq!(c.literal(70), Literal::Pos);
        assert_eq!(c.literal(99), Literal::Neg);
        assert!(!c.is_empty());
        let d = Cube::from_literals(100, &[(70, false)]);
        assert!(c.intersect(&d).is_empty());
    }

    #[test]
    fn push_drops_empty_cubes() {
        let a = Cube::from_literals(1, &[(0, true)]);
        let na = Cube::from_literals(1, &[(0, false)]);
        let mut f = Cover::empty(1);
        f.push(a.intersect(&na));
        assert!(f.is_empty());
    }
}
