//! # lbnn-logic-synth
//!
//! Logic synthesis substrate for the `lbnn` workspace: the stand-in for the
//! Yosys + ABC pre-processing stage of the paper's design flow (Fig 1,
//! "run logic minimization, map to standard cell library").
//!
//! Provided passes:
//!
//! * [`cube`]/[`truth`] — positional-cube covers and dense truth tables,
//!   the two Boolean function representations used throughout;
//! * [`espresso`] — an Espresso-style two-level minimizer
//!   (EXPAND / IRREDUNDANT / REDUCE over incompletely specified functions);
//! * [`factor`] — literal factoring of a minimized cover into a multi-level
//!   network of two-input gates;
//! * [`strash`] — structural hashing, constant propagation, and dead-code
//!   elimination on gate netlists;
//! * [`techmap`] — inverter absorption into the LPE cell library
//!   (`NOT(AND) → NAND` etc.) and final mapping checks;
//! * [`synth`] — the combined `optimize` pipeline used by the compiler flow;
//! * [`bdd`] — a hash-consed ROBDD package used as the scalable
//!   equivalence oracle for everything above.
//!
//! ## Example: minimize and map a function
//!
//! ```
//! use lbnn_logic_synth::cube::Cover;
//! use lbnn_logic_synth::espresso::minimize;
//! use lbnn_logic_synth::factor::cover_to_netlist;
//!
//! // f(a,b,c) = majority-of-3, given as its four ON-set minterms.
//! let on = Cover::from_minterms(3, &[0b011, 0b101, 0b110, 0b111]);
//! let min = minimize(&on, &Cover::empty(3));
//! assert!(min.cube_count() <= 3); // majority needs only ab + ac + bc
//! let nl = cover_to_netlist(&min, 3, "maj3");
//! assert_eq!(nl.eval_bools(&[true, true, false]), vec![true]);
//! ```

pub mod bdd;
pub mod cube;
pub mod espresso;
pub mod factor;
pub mod strash;
pub mod synth;
pub mod techmap;
pub mod truth;

pub use bdd::{netlists_equivalent, Bdd};
pub use cube::{Cover, Cube};
pub use synth::{optimize, OptimizeOptions, SynthStats};
pub use truth::TruthTable;
