//! Technology mapping onto the LPE cell library.
//!
//! The logic processing elements execute two-input `AND/OR/XOR/XNOR/NAND/
//! NOR` plus `NOT/BUF` (§IV of the paper). Netlists built by this workspace
//! are two-input by construction, so mapping reduces to:
//!
//! * [`absorb_inverters`] — fuse `NOT(g)` into the negated gate (`NOT(AND)
//!   → NAND`, …) when the inner gate has no other consumer, shortening the
//!   critical path by one level per fusion;
//! * [`check_mapped`] — verify every node is an LPE-executable cell.

use lbnn_netlist::{Netlist, NetlistError, NodeId, Op};

/// Statistics reported by [`absorb_inverters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbsorbStats {
    /// Number of inverters fused into their driving gate.
    pub fused: usize,
}

/// Fuses single-fanout `gate → NOT` pairs into the negated gate.
///
/// A `NOT` whose fanin is a two-input gate that (a) drives only this `NOT`
/// and (b) does not itself drive a primary output is replaced by the
/// negated gate (`AND→NAND`, `OR→NOR`, `XOR→XNOR` and vice versa). Dead
/// inner gates are swept by the subsequent [`crate::strash`] pass.
pub fn absorb_inverters(netlist: &Netlist) -> (Netlist, AbsorbStats) {
    let fanout = netlist.fanout_counts();
    let mut po_driver = vec![false; netlist.len()];
    for o in netlist.outputs() {
        po_driver[o.node.index()] = true;
    }

    let mut out = Netlist::new(netlist.name().to_string());
    let mut remap: Vec<NodeId> = Vec::with_capacity(netlist.len());
    let mut stats = AbsorbStats::default();

    for (id, node) in netlist.iter() {
        let new_id = match node.op() {
            Op::Input => out.add_input(netlist.node_name(id).unwrap_or("in").to_string()),
            Op::Not => {
                let src = node.fanins()[0];
                let src_node = netlist.node(src);
                let fusable =
                    src_node.op().is_gate2() && fanout[src.index()] == 1 && !po_driver[src.index()];
                if fusable {
                    let neg = src_node.op().negated().expect("gate2 ops have negations");
                    let a = remap[src_node.fanins()[0].index()];
                    let b = remap[src_node.fanins()[1].index()];
                    stats.fused += 1;
                    out.add_gate2(neg, a, b)
                } else {
                    out.add_gate1(Op::Not, remap[src.index()])
                }
            }
            op => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| remap[f.index()]).collect();
                out.add_node(op, &fanins).expect("topo order preserved")
            }
        };
        remap.push(new_id);
    }
    for o in netlist.outputs() {
        out.add_output(remap[o.node.index()], o.name.clone());
    }
    (out, stats)
}

/// Verifies the netlist uses only LPE-executable cells and is structurally
/// valid.
///
/// # Errors
///
/// Returns the first structural violation found (see
/// [`Netlist::validate`]); the cell-library check cannot fail for netlists
/// built through this workspace but guards externally parsed input.
pub fn check_mapped(netlist: &Netlist) -> Result<(), NetlistError> {
    netlist.validate()?;
    for (_, node) in netlist.iter() {
        // All `Op` variants are LPE-executable except `Input`, which is a
        // port, and arity is enforced by the arena; nothing more to check.
        debug_assert!(node.op() == Op::Input || node.op().is_executable());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equiv(a: &Netlist, b: &Netlist) {
        let n = a.inputs().len();
        for m in 0..(1u64 << n) {
            let ins: Vec<bool> = (0..n).map(|v| m >> v & 1 != 0).collect();
            assert_eq!(a.eval_bools(&ins), b.eval_bools(&ins), "minterm {m:#b}");
        }
    }

    #[test]
    fn fuses_not_and_into_nand() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate2(Op::And, a, b);
        let y = nl.add_gate1(Op::Not, g);
        nl.add_output(y, "y");
        let (mapped, stats) = absorb_inverters(&nl);
        assert_eq!(stats.fused, 1);
        assert_eq!(mapped.node(mapped.outputs()[0].node).op(), Op::Nand);
        assert_equiv(&nl, &mapped);
    }

    #[test]
    fn keeps_inverter_when_gate_has_other_consumers() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate2(Op::Or, a, b);
        let n = nl.add_gate1(Op::Not, g);
        let z = nl.add_gate2(Op::Xor, g, n); // g consumed twice
        nl.add_output(z, "z");
        let (mapped, stats) = absorb_inverters(&nl);
        assert_eq!(stats.fused, 0);
        assert_equiv(&nl, &mapped);
    }

    #[test]
    fn keeps_inverter_when_gate_drives_po() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate2(Op::Xor, a, b);
        let y = nl.add_gate1(Op::Not, g);
        nl.add_output(g, "g");
        nl.add_output(y, "y");
        let (mapped, stats) = absorb_inverters(&nl);
        assert_eq!(stats.fused, 0, "fusing would orphan the PO");
        assert_equiv(&nl, &mapped);
    }

    #[test]
    fn check_mapped_accepts_all_built_netlists() {
        let nl = lbnn_netlist::random::RandomDag::strict(6, 4, 5).generate(3);
        assert!(check_mapped(&nl).is_ok());
    }
}
