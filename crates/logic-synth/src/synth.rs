//! The combined logic-optimization pipeline used by the compiler flow.
//!
//! Mirrors the "pre-processing" box of the paper's Fig 1: run logic
//! minimization, map to the LPE cell library, and hand a clean two-input
//! netlist to depth levelization.

use lbnn_netlist::Netlist;

use crate::strash::{strash, StrashStats};
use crate::techmap::{absorb_inverters, check_mapped, AbsorbStats};

/// Options for [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Fuse `NOT(gate)` pairs into negated gates (`NAND`/`NOR`/`XNOR`).
    pub absorb_inverters: bool,
    /// Maximum strash/absorb iterations (the pipeline stops early once a
    /// fixpoint is reached).
    pub max_iterations: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            absorb_inverters: true,
            max_iterations: 4,
        }
    }
}

/// Aggregate statistics of an [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthStats {
    /// Node count before optimization.
    pub nodes_before: usize,
    /// Node count after optimization.
    pub nodes_after: usize,
    /// Total gates folded/merged by structural hashing.
    pub strash_folded: usize,
    /// Total inverters absorbed into negated gates.
    pub inverters_fused: usize,
    /// Number of pipeline iterations executed.
    pub iterations: usize,
}

/// Optimizes a netlist: iterated structural hashing and inverter
/// absorption until fixpoint (or the iteration cap).
///
/// The result computes the same function over the same inputs/outputs and
/// uses only LPE-executable cells.
///
/// # Example
///
/// ```
/// use lbnn_netlist::{Netlist, Op};
/// use lbnn_logic_synth::{optimize, OptimizeOptions};
/// let mut nl = Netlist::new("f");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate2(Op::And, a, b);
/// let y = nl.add_gate1(Op::Not, g); // NOT(AND) fuses to NAND
/// nl.add_output(y, "y");
/// let (opt, stats) = optimize(&nl, OptimizeOptions::default());
/// assert_eq!(opt.gate_count(), 1);
/// assert_eq!(stats.inverters_fused, 1);
/// ```
pub fn optimize(netlist: &Netlist, options: OptimizeOptions) -> (Netlist, SynthStats) {
    let mut stats = SynthStats {
        nodes_before: netlist.len(),
        ..Default::default()
    };
    let mut current = netlist.clone();
    for _ in 0..options.max_iterations.max(1) {
        stats.iterations += 1;
        let (hashed, s): (Netlist, StrashStats) = strash(&current);
        stats.strash_folded += s.folded + s.merged;
        let mut next = hashed;
        if options.absorb_inverters {
            let (absorbed, a): (Netlist, AbsorbStats) = absorb_inverters(&next);
            stats.inverters_fused += a.fused;
            if a.fused > 0 {
                // Sweep the dead inner gates the fusion left behind.
                let (clean, s2) = strash(&absorbed);
                stats.strash_folded += s2.folded + s2.merged;
                next = clean;
            }
        }
        let fixpoint = next.len() == current.len() && next == current;
        current = next;
        if fixpoint {
            break;
        }
    }
    check_mapped(&current).expect("optimize preserves structural validity");
    stats.nodes_after = current.len();
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_netlist::random::RandomDag;
    use lbnn_netlist::Op;

    #[test]
    fn optimize_reaches_fixpoint() {
        let nl = RandomDag::loose(10, 8, 12).outputs(6).generate(5);
        let (opt, stats) = optimize(&nl, OptimizeOptions::default());
        assert!(stats.nodes_after <= stats.nodes_before);
        // Re-optimizing is a no-op.
        let (opt2, stats2) = optimize(&opt, OptimizeOptions::default());
        assert_eq!(opt.len(), opt2.len());
        assert_eq!(stats2.strash_folded, 0);
        assert_eq!(stats2.inverters_fused, 0);
    }

    #[test]
    fn optimize_preserves_function_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        for seed in 0..6 {
            let nl = RandomDag::loose(9, 5, 8).outputs(3).generate(seed);
            let (opt, _) = optimize(&nl, OptimizeOptions::default());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                let ins: Vec<bool> = (0..9).map(|_| rng.random_bool(0.5)).collect();
                assert_eq!(nl.eval_bools(&ins), opt.eval_bools(&ins));
            }
        }
    }

    #[test]
    fn absorb_can_be_disabled() {
        let mut nl = Netlist::new("f");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate2(Op::And, a, b);
        let y = nl.add_gate1(Op::Not, g);
        nl.add_output(y, "y");
        let (opt, stats) = optimize(
            &nl,
            OptimizeOptions {
                absorb_inverters: false,
                ..Default::default()
            },
        );
        assert_eq!(stats.inverters_fused, 0);
        assert_eq!(opt.gate_count(), 2);
    }
}
