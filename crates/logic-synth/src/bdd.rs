//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The synthesis pipeline needs a *scalable* equivalence oracle: truth
//! tables stop at 24 variables and exhaustive simulation stops sooner.
//! This is a classic hash-consed BDD package (unique table + computed
//! table, complement-free, natural variable order) sufficient to check
//! netlist-vs-netlist equivalence for every circuit this workspace
//! produces, and used by [`crate::synth`]'s verification helpers and the
//! test suites.

use std::collections::HashMap;

use lbnn_netlist::{Netlist, Op};

/// A node reference within one [`Bdd`] manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-0 leaf.
    pub const ZERO: BddRef = BddRef(0);
    /// The constant-1 leaf.
    pub const ONE: BddRef = BddRef(1);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32, // u32::MAX for leaves
    lo: BddRef,
    hi: BddRef,
}

/// A BDD manager: owns the node arena, unique table and computed table.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
}

impl Bdd {
    /// Creates an empty manager (leaves pre-allocated).
    pub fn new() -> Self {
        let mut bdd = Bdd {
            nodes: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        };
        // Index 0 = ZERO, 1 = ONE (self-referential leaves).
        bdd.nodes.push(Node {
            var: u32::MAX,
            lo: BddRef::ZERO,
            hi: BddRef::ZERO,
        });
        bdd.nodes.push(Node {
            var: u32::MAX,
            lo: BddRef::ONE,
            hi: BddRef::ONE,
        });
        bdd
    }

    /// Number of live nodes (including the two leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `var`.
    pub fn var(&mut self, var: u32) -> BddRef {
        self.mk(var, BddRef::ZERO, BddRef::ONE)
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    #[inline]
    fn node(&self, r: BddRef) -> Node {
        self.nodes[r.0 as usize]
    }

    #[inline]
    fn is_leaf(&self, r: BddRef) -> bool {
        r == BddRef::ZERO || r == BddRef::ONE
    }

    /// Top variable of up to three nodes (minimum in the order).
    fn top_var(&self, f: BddRef, g: BddRef, h: BddRef) -> u32 {
        [f, g, h]
            .into_iter()
            .filter(|&r| !self.is_leaf(r))
            .map(|r| self.node(r).var)
            .min()
            .expect("at least one non-leaf")
    }

    fn cofactor(&self, f: BddRef, var: u32, phase: bool) -> BddRef {
        if self.is_leaf(f) {
            return f;
        }
        let n = self.node(f);
        if n.var != var {
            return f;
        }
        if phase {
            n.hi
        } else {
            n.lo
        }
    }

    /// If-then-else: the universal connective all operators reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::ONE {
            return g;
        }
        if f == BddRef::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::ONE && h == BddRef::ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let v = self.top_var(f, g, h);
        let (f0, f1) = (self.cofactor(f, v, false), self.cofactor(f, v, true));
        let (g0, g1) = (self.cofactor(g, v, false), self.cofactor(g, v, true));
        let (h0, h1) = (self.cofactor(h, v, false), self.cofactor(h, v, true));
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Complement.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::ZERO, BddRef::ONE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Applies a cell-library operation.
    pub fn apply(&mut self, op: Op, a: BddRef, b: Option<BddRef>) -> BddRef {
        match op {
            Op::Input => a,
            Op::Const0 => BddRef::ZERO,
            Op::Const1 => BddRef::ONE,
            Op::Buf => a,
            Op::Not => self.not(a),
            Op::And => self.and(a, b.expect("two-input op")),
            Op::Or => self.or(a, b.expect("two-input op")),
            Op::Xor => self.xor(a, b.expect("two-input op")),
            Op::Nand => {
                let t = self.and(a, b.expect("two-input op"));
                self.not(t)
            }
            Op::Nor => {
                let t = self.or(a, b.expect("two-input op"));
                self.not(t)
            }
            Op::Xnor => {
                let t = self.xor(a, b.expect("two-input op"));
                self.not(t)
            }
        }
    }

    /// Builds the BDDs of every primary output of a netlist, with input
    /// `i` mapped to BDD variable `i`.
    pub fn from_netlist(&mut self, netlist: &Netlist) -> Vec<BddRef> {
        let mut of_node: Vec<BddRef> = Vec::with_capacity(netlist.len());
        let var_of: HashMap<_, _> = netlist
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        for (id, node) in netlist.iter() {
            let r = match node.op() {
                Op::Input => {
                    let v = var_of[&id];
                    self.var(v)
                }
                op => {
                    let a = node.fanins().first().map(|f| of_node[f.index()]);
                    let b = node.fanins().get(1).map(|f| of_node[f.index()]);
                    self.apply(op, a.unwrap_or(BddRef::ZERO), b)
                }
            };
            of_node.push(r);
        }
        netlist
            .outputs()
            .iter()
            .map(|o| of_node[o.node.index()])
            .collect()
    }

    /// Evaluates a BDD on an assignment (`bits[v]` = variable `v`).
    pub fn eval(&self, f: BddRef, bits: &[bool]) -> bool {
        let mut cur = f;
        while !self.is_leaf(cur) {
            let n = self.node(cur);
            cur = if bits[n.var as usize] { n.hi } else { n.lo };
        }
        cur == BddRef::ONE
    }

    /// Number of satisfying assignments over `nvars` variables.
    pub fn sat_count(&self, f: BddRef, nvars: u32) -> u64 {
        fn rec(
            bdd: &Bdd,
            f: BddRef,
            from_var: u32,
            nvars: u32,
            memo: &mut HashMap<BddRef, u64>,
        ) -> u64 {
            if f == BddRef::ZERO {
                return 0;
            }
            if f == BddRef::ONE {
                return 1u64 << (nvars - from_var);
            }
            let n = bdd.node(f);
            let below = if let Some(&c) = memo.get(&f) {
                c
            } else {
                let lo = rec(bdd, n.lo, n.var + 1, nvars, memo);
                let hi = rec(bdd, n.hi, n.var + 1, nvars, memo);
                let c = lo + hi;
                memo.insert(f, c);
                c
            };
            below << (n.var - from_var)
        }
        let mut memo = HashMap::new();
        rec(self, f, 0, nvars, &mut memo)
    }
}

/// Checks functional equivalence of two netlists via BDDs.
///
/// Netlists must have the same input count (inputs correspond by
/// position) and the same output count. Scales far past the exhaustive
/// and truth-table oracles.
///
/// # Panics
///
/// Panics if the interfaces differ in arity.
pub fn netlists_equivalent(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input arity differs");
    assert_eq!(a.outputs().len(), b.outputs().len(), "output arity differs");
    let mut bdd = Bdd::new();
    let fa = bdd.from_netlist(a);
    let fb = bdd.from_netlist(b);
    fa == fb // hash-consing makes equivalence a pointer comparison
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_netlist::random::RandomDag;
    use lbnn_netlist::Netlist;

    #[test]
    fn ite_terminal_identities() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        assert_eq!(bdd.ite(BddRef::ONE, x, BddRef::ZERO), x);
        assert_eq!(bdd.ite(BddRef::ZERO, x, BddRef::ONE), BddRef::ONE);
        assert_eq!(bdd.ite(x, BddRef::ONE, BddRef::ZERO), x);
        let nx = bdd.not(x);
        let nnx = bdd.not(nx);
        assert_eq!(nnx, x, "double negation is identity (hash-consed)");
    }

    #[test]
    fn boolean_algebra_laws() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let y = bdd.var(1);
        let xy = bdd.and(x, y);
        let yx = bdd.and(y, x);
        assert_eq!(xy, yx, "commutativity");
        let x_or_xy = bdd.or(x, xy);
        assert_eq!(x_or_xy, x, "absorption");
        let x_xor_x = bdd.xor(x, x);
        assert_eq!(x_xor_x, BddRef::ZERO);
        // De Morgan.
        let nx = bdd.not(x);
        let ny = bdd.not(y);
        let lhs = bdd.not(xy);
        let rhs = bdd.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_netlist() {
        let nl = RandomDag::loose(8, 5, 6).outputs(3).generate(3);
        let mut bdd = Bdd::new();
        let outs = bdd.from_netlist(&nl);
        for m in 0..256u64 {
            let bits: Vec<bool> = (0..8).map(|i| m >> i & 1 != 0).collect();
            let want = nl.eval_bools(&bits);
            for (o, &f) in outs.iter().enumerate() {
                assert_eq!(bdd.eval(f, &bits), want[o], "m={m:#b} out={o}");
            }
        }
    }

    #[test]
    fn sat_count_parity() {
        // Parity of n vars has exactly 2^(n-1) satisfying assignments.
        let mut bdd = Bdd::new();
        for n in 1..=10u32 {
            let mut f = BddRef::ZERO;
            for v in 0..n {
                let x = bdd.var(v);
                f = bdd.xor(f, x);
            }
            assert_eq!(bdd.sat_count(f, n), 1u64 << (n - 1), "n={n}");
        }
    }

    #[test]
    fn equivalence_checking_positive_and_negative() {
        let a = RandomDag::strict(10, 5, 8).outputs(4).generate(9);
        // Optimized version must stay equivalent.
        let (opt, _) = crate::synth::optimize(&a, crate::synth::OptimizeOptions::default());
        assert!(netlists_equivalent(&a, &opt));

        // A netlist with one inverted output must differ.
        let mut b = Netlist::new("tweaked");
        let mut remap = Vec::new();
        for (id, node) in a.iter() {
            let new = match node.op() {
                Op::Input => b.add_input(a.node_name(id).unwrap_or("in").to_string()),
                op => {
                    let f: Vec<_> = node.fanins().iter().map(|f| remap[f.index()]).collect();
                    b.add_node(op, &f).unwrap()
                }
            };
            remap.push(new);
        }
        for (i, o) in a.outputs().iter().enumerate() {
            let node = if i == 0 {
                b.add_gate1(Op::Not, remap[o.node.index()])
            } else {
                remap[o.node.index()]
            };
            b.add_output(node, o.name.clone());
        }
        assert!(!netlists_equivalent(&a, &b));
    }

    #[test]
    fn scales_past_exhaustive_oracles() {
        // 40 inputs: exhaustive evaluation would need 2^40 vectors.
        let nl = RandomDag::strict(40, 6, 20).outputs(5).generate(4);
        let (opt, _) = crate::synth::optimize(&nl, crate::synth::OptimizeOptions::default());
        assert!(netlists_equivalent(&nl, &opt));
    }
}
