//! Dense truth tables for functions of up to 24 variables.
//!
//! Truth tables are the exact-representation workhorse for small-fan-in
//! neurons (NullaNet enumerates them outright) and for equivalence checking
//! in tests. Bit `m` of the table is the function value on minterm `m`,
//! where bit `v` of `m` is the value of variable `v`.

use crate::cube::{Cover, Cube, Literal};

/// A dense truth table over `nvars <= 24` variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    nvars: usize,
    words: Vec<u64>,
}

/// Maximum supported variable count (2^24 bits = 2 MiB per table).
pub const MAX_VARS: usize = 24;

impl TruthTable {
    /// The constant-0 function.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 24`.
    pub fn zeros(nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS, "truth tables limited to {MAX_VARS} vars");
        let bits = 1usize << nvars;
        TruthTable {
            nvars,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The constant-1 function.
    pub fn ones(nvars: usize) -> Self {
        let mut t = TruthTable::zeros(nvars);
        for w in &mut t.words {
            *w = !0;
        }
        t.mask_tail();
        t
    }

    /// Builds a table by evaluating `f` on every minterm.
    pub fn from_fn(nvars: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut t = TruthTable::zeros(nvars);
        for m in 0..(1u64 << nvars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= nvars`.
    pub fn variable(nvars: usize, v: usize) -> Self {
        assert!(v < nvars);
        TruthTable::from_fn(nvars, |m| m >> v & 1 != 0)
    }

    /// Number of variables.
    #[inline]
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The value on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^nvars`.
    #[inline]
    pub fn get(&self, m: u64) -> bool {
        assert!(m < 1u64 << self.nvars);
        self.words[(m / 64) as usize] >> (m % 64) & 1 != 0
    }

    /// Sets the value on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^nvars`.
    #[inline]
    pub fn set(&mut self, m: u64, value: bool) {
        assert!(m < 1u64 << self.nvars);
        let mask = 1u64 << (m % 64);
        if value {
            self.words[(m / 64) as usize] |= mask;
        } else {
            self.words[(m / 64) as usize] &= !mask;
        }
    }

    /// Number of ON-set minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// `true` if the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` if the function is constant 1.
    pub fn is_one(&self) -> bool {
        self.count_ones() == 1u64 << self.nvars
    }

    /// Complement.
    pub fn not(&self) -> Self {
        let mut t = TruthTable {
            nvars: self.nvars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        t.mask_tail();
        t
    }

    /// Conjunction.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }

    /// Disjunction.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }

    /// Exclusive or.
    ///
    /// # Panics
    ///
    /// Panics on variable-count mismatch.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a ^ b)
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.nvars, other.nvars, "variable count mismatch");
        let mut t = TruthTable {
            nvars: self.nvars,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        };
        t.mask_tail();
        t
    }

    /// The ON-set as a minterm cover.
    pub fn to_cover(&self) -> Cover {
        let minterms: Vec<u64> = (0..1u64 << self.nvars).filter(|&m| self.get(m)).collect();
        Cover::from_minterms(self.nvars, &minterms)
    }

    /// Evaluates a cover into a truth table over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the cover has more than 24 variables.
    pub fn from_cover(cover: &Cover) -> Self {
        let nvars = cover.nvars();
        assert!(nvars <= MAX_VARS, "truth tables limited to {MAX_VARS} vars");
        let mut t = TruthTable::zeros(nvars);
        for cube in cover.cubes() {
            // Enumerate the cube's minterms by iterating its free variables.
            let mut fixed = 0u64;
            let mut free_vars = Vec::new();
            for v in 0..nvars {
                match cube.literal(v) {
                    Literal::Pos => fixed |= 1 << v,
                    Literal::Neg => {}
                    Literal::DontCare => free_vars.push(v),
                }
            }
            for combo in 0..(1u64 << free_vars.len()) {
                let mut m = fixed;
                for (i, &v) in free_vars.iter().enumerate() {
                    if combo >> i & 1 != 0 {
                        m |= 1 << v;
                    }
                }
                t.set(m, true);
            }
        }
        t
    }

    /// Checks functional equivalence with a cover (used heavily in tests).
    pub fn equals_cover(&self, cover: &Cover) -> bool {
        *self == TruthTable::from_cover(cover)
    }

    /// Builds the truth table of one cube.
    pub fn from_cube(cube: &Cube, nvars: usize) -> Self {
        TruthTable::from_cover(&Cover::from_cubes(nvars, vec![cube.clone()]))
    }

    fn mask_tail(&mut self) {
        let bits = 1usize << self.nvars;
        let rem = bits % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_counting() {
        let z = TruthTable::zeros(4);
        let o = TruthTable::ones(4);
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(o.count_ones(), 16);
        assert_eq!(z.not(), o);
    }

    #[test]
    fn variable_projection() {
        let x1 = TruthTable::variable(3, 1);
        for m in 0..8u64 {
            assert_eq!(x1.get(m), m >> 1 & 1 != 0);
        }
    }

    #[test]
    fn boolean_ops() {
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(2, 1);
        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        for m in 0..4u64 {
            let (va, vb) = (m & 1 != 0, m & 2 != 0);
            assert_eq!(and.get(m), va && vb);
            assert_eq!(or.get(m), va || vb);
            assert_eq!(xor.get(m), va ^ vb);
        }
    }

    #[test]
    fn cover_round_trip() {
        // xor of 3 vars: odd parity minterms.
        let t = TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1);
        let cover = t.to_cover();
        assert_eq!(cover.cube_count(), 4);
        assert!(t.equals_cover(&cover));
    }

    #[test]
    fn from_cover_expands_dont_cares() {
        // Single cube "a" over 3 vars covers 4 minterms.
        let c = Cover::from_cubes(3, vec![Cube::from_literals(3, &[(0, true)])]);
        let t = TruthTable::from_cover(&c);
        assert_eq!(t.count_ones(), 4);
        for m in 0..8u64 {
            assert_eq!(t.get(m), m & 1 != 0);
        }
    }

    #[test]
    fn seven_var_tables_span_words() {
        let t = TruthTable::from_fn(7, |m| m % 3 == 0);
        assert_eq!(t.words.len(), 2);
        let ones = (0..128u64).filter(|m| m % 3 == 0).count() as u64;
        assert_eq!(t.count_ones(), ones);
    }
}
