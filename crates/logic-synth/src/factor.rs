//! Algebraic factoring of two-level covers into multi-level two-input logic.
//!
//! The LPU's cell library is two-input gates, so a minimized sum-of-products
//! must be rebuilt as a gate network. [`factor`] performs classic *literal
//! factoring* (repeatedly dividing by the most frequent literal, as in SIS's
//! `quick_factor`), producing far fewer gates than a flat AND/OR expansion;
//! [`cover_to_netlist`] then emits balanced two-input trees.

use std::collections::HashMap;

use lbnn_netlist::{Netlist, NodeId, Op};

use crate::cube::{Cover, Cube, Literal};

/// A factored Boolean expression over numbered input variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant 0 or 1.
    Const(bool),
    /// Literal: variable index and phase (`true` = positive).
    Lit(usize, bool),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Conjunction with constant folding.
    pub fn and(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(false), _) | (_, Expr::Const(false)) => Expr::Const(false),
            (Expr::Const(true), e) | (e, Expr::Const(true)) => e,
            (a, b) => Expr::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with constant folding.
    pub fn or(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(true), _) | (_, Expr::Const(true)) => Expr::Const(true),
            (Expr::Const(false), e) | (e, Expr::Const(false)) => e,
            (a, b) => Expr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Number of literal occurrences in the expression.
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Lit(..) => 1,
            Expr::And(a, b) | Expr::Or(a, b) => a.literal_count() + b.literal_count(),
        }
    }

    /// Evaluates the expression on an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Const(c) => *c,
            Expr::Lit(v, phase) => assignment[*v] == *phase,
            Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
        }
    }
}

/// Builds a balanced binary combination of `exprs` under `combine`.
fn balanced(mut exprs: Vec<Expr>, combine: fn(Expr, Expr) -> Expr, identity: bool) -> Expr {
    if exprs.is_empty() {
        return Expr::Const(identity);
    }
    while exprs.len() > 1 {
        let mut next = Vec::with_capacity(exprs.len().div_ceil(2));
        let mut it = exprs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        exprs = next;
    }
    exprs.pop().expect("non-empty")
}

/// The product expression of one cube (balanced AND tree of its literals).
fn cube_expr(cube: &Cube) -> Expr {
    let lits: Vec<Expr> = (0..cube.nvars())
        .filter_map(|v| match cube.literal(v) {
            Literal::Pos => Some(Expr::Lit(v, true)),
            Literal::Neg => Some(Expr::Lit(v, false)),
            Literal::DontCare => None,
        })
        .collect();
    balanced(lits, Expr::and, true)
}

/// Factors a cover into a multi-level expression by repeated division by
/// the most frequent literal.
///
/// # Example
///
/// ```
/// use lbnn_logic_synth::cube::{Cover, Cube};
/// use lbnn_logic_synth::factor::factor;
/// // ab + ac factors to a(b + c): 3 literals instead of 4.
/// let f = Cover::from_cubes(3, vec![
///     Cube::from_literals(3, &[(0, true), (1, true)]),
///     Cube::from_literals(3, &[(0, true), (2, true)]),
/// ]);
/// assert_eq!(factor(&f).literal_count(), 3);
/// ```
pub fn factor(cover: &Cover) -> Expr {
    if cover.is_empty() {
        return Expr::Const(false);
    }
    if cover.cubes().iter().any(Cube::is_full) {
        return Expr::Const(true);
    }
    if cover.cube_count() == 1 {
        return cube_expr(&cover.cubes()[0]);
    }

    // Count literal frequencies.
    let nvars = cover.nvars();
    let mut freq: HashMap<(usize, bool), usize> = HashMap::new();
    for cube in cover.cubes() {
        for v in 0..nvars {
            match cube.literal(v) {
                Literal::Pos => *freq.entry((v, true)).or_insert(0) += 1,
                Literal::Neg => *freq.entry((v, false)).or_insert(0) += 1,
                Literal::DontCare => {}
            }
        }
    }
    // Fully ordered tie-break (count, then lowest variable, then positive
    // phase) so factoring is deterministic across runs.
    let best = freq
        .iter()
        .max_by_key(|&(&(v, phase), &count)| (count, std::cmp::Reverse(v), phase))
        .map(|(&lit, &count)| (lit, count));

    match best {
        Some(((v, phase), count)) if count >= 2 => {
            // Divide: quotient = cubes containing the literal (literal
            // removed), remainder = the rest.
            let mut quotient = Cover::empty(nvars);
            let mut remainder = Cover::empty(nvars);
            for cube in cover.cubes() {
                let has = match cube.literal(v) {
                    Literal::Pos => phase,
                    Literal::Neg => !phase,
                    Literal::DontCare => false,
                };
                if has {
                    let mut c = cube.clone();
                    c.set(v, Literal::DontCare);
                    quotient.push(c);
                } else {
                    remainder.push(cube.clone());
                }
            }
            let q = Expr::and(Expr::Lit(v, phase), factor(&quotient));
            Expr::or(q, factor(&remainder))
        }
        _ => {
            // No shared literal: balanced OR of the cube products.
            let cubes: Vec<Expr> = cover.cubes().iter().map(cube_expr).collect();
            balanced(cubes, Expr::or, false)
        }
    }
}

/// Emits an expression into a netlist, sharing inverters via `not_cache`.
///
/// `inputs[v]` is the node for variable `v`.
///
/// # Panics
///
/// Panics if the expression references a variable outside `inputs`.
pub fn build_expr(
    nl: &mut Netlist,
    inputs: &[NodeId],
    not_cache: &mut HashMap<usize, NodeId>,
    expr: &Expr,
) -> NodeId {
    match expr {
        Expr::Const(c) => nl.add_const(*c),
        Expr::Lit(v, true) => inputs[*v],
        Expr::Lit(v, false) => {
            if let Some(&n) = not_cache.get(v) {
                n
            } else {
                let n = nl.add_gate1(Op::Not, inputs[*v]);
                not_cache.insert(*v, n);
                n
            }
        }
        Expr::And(a, b) => {
            let na = build_expr(nl, inputs, not_cache, a);
            let nb = build_expr(nl, inputs, not_cache, b);
            nl.add_gate2(Op::And, na, nb)
        }
        Expr::Or(a, b) => {
            let na = build_expr(nl, inputs, not_cache, a);
            let nb = build_expr(nl, inputs, not_cache, b);
            nl.add_gate2(Op::Or, na, nb)
        }
    }
}

/// Factors a single-output cover and emits it as a netlist with inputs
/// `x0..x{nvars-1}` and output `y`.
pub fn cover_to_netlist(cover: &Cover, nvars: usize, name: &str) -> Netlist {
    covers_to_netlist(&[("y".to_string(), cover.clone())], nvars, name)
}

/// Factors several covers over a shared input universe into one
/// multi-output netlist (inputs `x0..`, one named output per cover).
///
/// Inverters are shared across outputs; deeper sharing is left to the
/// [`crate::strash`] pass.
pub fn covers_to_netlist(outputs: &[(String, Cover)], nvars: usize, name: &str) -> Netlist {
    let mut nl = Netlist::new(name);
    let inputs: Vec<NodeId> = (0..nvars).map(|v| nl.add_input(format!("x{v}"))).collect();
    let mut not_cache = HashMap::new();
    for (out_name, cover) in outputs {
        assert_eq!(cover.nvars(), nvars, "cover universe mismatch");
        let expr = factor(cover);
        let node = build_expr(&mut nl, &inputs, &mut not_cache, &expr);
        nl.add_output(node, out_name.clone());
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::TruthTable;

    fn check_equiv(cover: &Cover, nvars: usize) {
        let nl = cover_to_netlist(cover, nvars, "f");
        for m in 0..(1u64 << nvars) {
            let ins: Vec<bool> = (0..nvars).map(|v| m >> v & 1 != 0).collect();
            assert_eq!(
                nl.eval_bools(&ins)[0],
                cover.covers_minterm(m),
                "minterm {m:#b}"
            );
        }
    }

    #[test]
    fn factoring_shares_literals() {
        // ab + ac + ad -> a(b + c + d): 4 literals.
        let f = Cover::from_cubes(
            4,
            vec![
                Cube::from_literals(4, &[(0, true), (1, true)]),
                Cube::from_literals(4, &[(0, true), (2, true)]),
                Cube::from_literals(4, &[(0, true), (3, true)]),
            ],
        );
        let e = factor(&f);
        assert_eq!(e.literal_count(), 4);
        check_equiv(&f, 4);
    }

    #[test]
    fn constants() {
        assert_eq!(factor(&Cover::empty(3)), Expr::Const(false));
        assert_eq!(factor(&Cover::tautology(3)), Expr::Const(true));
    }

    #[test]
    fn netlist_matches_cover_for_random_functions() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let nvars = rng.random_range(2..6);
            let minterms: Vec<u64> = (0..1u64 << nvars)
                .filter(|_| rng.random_bool(0.4))
                .collect();
            let cover = Cover::from_minterms(nvars, &minterms);
            check_equiv(&cover, nvars);
        }
    }

    #[test]
    fn expr_eval_matches_truth_table() {
        let f = Cover::from_minterms(3, &[1, 2, 4, 7]); // parity
        let e = factor(&f);
        let t = TruthTable::from_cover(&f);
        for m in 0..8u64 {
            let ins: Vec<bool> = (0..3).map(|v| m >> v & 1 != 0).collect();
            assert_eq!(e.eval(&ins), t.get(m));
        }
    }

    #[test]
    fn inverter_sharing_across_outputs() {
        // Two outputs both using x0': only one NOT gate emitted.
        let f1 = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(0, false), (1, true)])]);
        let f2 = Cover::from_cubes(2, vec![Cube::from_literals(2, &[(0, false), (1, false)])]);
        let nl = covers_to_netlist(&[("a".to_string(), f1), ("b".to_string(), f2)], 2, "two");
        let nots = nl
            .iter()
            .filter(|(_, n)| n.op() == lbnn_netlist::Op::Not)
            .count();
        assert_eq!(nots, 2, "one NOT for x0 shared, one for x1 in f2");
    }

    #[test]
    fn balanced_trees_keep_depth_logarithmic() {
        // Single cube of 16 literals -> AND tree of depth 4.
        let cube = Cube::from_literals(16, &(0..16).map(|v| (v, true)).collect::<Vec<_>>());
        let f = Cover::from_cubes(16, vec![cube]);
        let nl = cover_to_netlist(&f, 16, "wide");
        let lv = lbnn_netlist::Levels::compute(&nl);
        assert_eq!(lv.depth(), 4);
    }
}
