//! Property-based tests for the synthesis substrate, using the BDD engine
//! as the scalable equivalence oracle.

use lbnn_logic_synth::bdd::{netlists_equivalent, Bdd};
use lbnn_logic_synth::cube::Cover;
use lbnn_logic_synth::espresso::minimize;
use lbnn_logic_synth::factor::cover_to_netlist;
use lbnn_logic_synth::truth::TruthTable;
use lbnn_logic_synth::{optimize, OptimizeOptions};
use lbnn_netlist::random::RandomDag;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// `optimize` preserves the function of arbitrary netlists (checked by
    /// BDD equivalence, not sampling).
    #[test]
    fn optimize_preserves_function(
        seed in 0u64..10_000,
        inputs in 2usize..16,
        depth in 1usize..7,
        width in 1usize..10,
        outputs in 1usize..5,
    ) {
        let nl = RandomDag::loose(inputs, depth, width).outputs(outputs).generate(seed);
        let (opt, stats) = optimize(&nl, OptimizeOptions::default());
        prop_assert!(netlists_equivalent(&nl, &opt));
        prop_assert!(stats.nodes_after <= stats.nodes_before);
    }

    /// Espresso minimization of a completely specified function is exact.
    #[test]
    fn espresso_exact_on_csf(
        nvars in 2usize..6,
        onset in proptest::collection::btree_set(0u64..32, 0..20),
    ) {
        let minterms: Vec<u64> = onset.into_iter().filter(|&m| m < (1 << nvars)).collect();
        let on = Cover::from_minterms(nvars, &minterms);
        let min = minimize(&on, &Cover::empty(nvars));
        let want = TruthTable::from_cover(&on);
        prop_assert!(want.equals_cover(&min));
        prop_assert!(min.cube_count() <= minterms.len().max(1));
    }

    /// Factoring a cover into gates preserves the function.
    #[test]
    fn factoring_preserves_function(
        nvars in 2usize..6,
        onset in proptest::collection::btree_set(0u64..32, 1..20),
    ) {
        let minterms: Vec<u64> = onset.into_iter().filter(|&m| m < (1 << nvars)).collect();
        prop_assume!(!minterms.is_empty());
        let cover = Cover::from_minterms(nvars, &minterms);
        let nl = cover_to_netlist(&cover, nvars, "f");
        for m in 0..(1u64 << nvars) {
            let bits: Vec<bool> = (0..nvars).map(|i| m >> i & 1 != 0).collect();
            prop_assert_eq!(nl.eval_bools(&bits)[0], cover.covers_minterm(m));
        }
    }

    /// The BDD engine agrees with direct netlist evaluation.
    #[test]
    fn bdd_agrees_with_eval(
        seed in 0u64..10_000,
        inputs in 2usize..8,
        depth in 1usize..6,
        width in 1usize..8,
    ) {
        let nl = RandomDag::loose(inputs, depth, width).outputs(3).generate(seed);
        let mut bdd = Bdd::new();
        let outs = bdd.from_netlist(&nl);
        for m in 0..(1u64 << inputs) {
            let bits: Vec<bool> = (0..inputs).map(|i| m >> i & 1 != 0).collect();
            let want = nl.eval_bools(&bits);
            for (o, &f) in outs.iter().enumerate() {
                prop_assert_eq!(bdd.eval(f, &bits), want[o]);
            }
        }
    }
}
