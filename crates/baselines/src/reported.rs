//! FPS values as printed in the paper (Tables II and III).
//!
//! The paper's baseline numbers are themselves quoted from prior art
//! (\[12\], \[16\], \[17\], \[8\], \[1\]); keeping them verbatim lets every bench
//! print *paper vs reproduction* rows and lets the tests check the
//! reproduced ratios against the claimed ones.

/// Implementations of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Impl2 {
    /// MAC-array accelerator (AutoSA-style, \[14\] improved per \[12\]).
    Mac,
    /// NullaDSP: FFCL mapped onto DSP blocks (\[12\]).
    NullaDsp,
    /// XNOR/FINN-based accelerator (\[16\] improved by packing).
    Xnor,
    /// The paper's logic processor (LPV count 16).
    Lpu,
}

/// Implementations of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Impl3 {
    /// LogicNets \[17\].
    LogicNets,
    /// Google + CERN optimized implementation \[8\].
    GoogleCern,
    /// FINN MVU RTL implementation \[1\].
    FinnRtl,
    /// The paper's logic processor (LPV count 16).
    Lpu,
}

/// Table II (FPS), `None` where the paper prints a dash.
pub fn table2_fps(model: &str, imp: Impl2) -> Option<f64> {
    let v = match (model, imp) {
        ("VGG16", Impl2::Mac) => 0.12e3,
        ("VGG16", Impl2::NullaDsp) => 0.33e3,
        ("VGG16", Impl2::Xnor) => 0.83e3,
        ("VGG16", Impl2::Lpu) => 103.99e3,
        ("LENET5", Impl2::Mac) => 0.48e3,
        ("LENET5", Impl2::NullaDsp) => 4.12e3,
        ("LENET5", Impl2::Xnor) => 3.31e3,
        ("LENET5", Impl2::Lpu) => 1035.60e3,
        ("MLPMixer-S/4", Impl2::Mac) => 4.17e3,
        ("MLPMixer-S/4", Impl2::Xnor) => 50.00e3,
        ("MLPMixer-S/4", Impl2::Lpu) => 179.23e3,
        ("MLPMixer-B/4", Impl2::Mac) => 0.88e3,
        ("MLPMixer-B/4", Impl2::Xnor) => 16.67e3,
        ("MLPMixer-B/4", Impl2::Lpu) => 102.01e3,
        _ => return None,
    };
    Some(v)
}

/// Table III (FPS), `None` where the paper prints a dash.
pub fn table3_fps(model: &str, imp: Impl3) -> Option<f64> {
    let v = match (model, imp) {
        ("NID", Impl3::LogicNets) => 95.24e6,
        ("NID", Impl3::FinnRtl) => 49.58e6,
        ("NID", Impl3::Lpu) => 8.39e6,
        ("JSC-M", Impl3::LogicNets) => 2995.0e6,
        ("JSC-M", Impl3::Lpu) => 0.69e6,
        ("JSC-L", Impl3::LogicNets) => 76.92e6,
        ("JSC-L", Impl3::GoogleCern) => 76.92e6,
        ("JSC-L", Impl3::Lpu) => 0.21e6,
        _ => return None,
    };
    Some(v)
}

/// The headline speedups of the paper's abstract/§VI-B, used by tests:
/// LPU vs (MAC, NullaDSP, XNOR) on VGG16 and LeNet-5.
pub fn claimed_speedups(model: &str) -> Option<[f64; 3]> {
    // Raw Table II ratios (the §VI-B prose quotes 14.01x/4.86x/1.95x for
    // VGG16 and 33.43x/3.93x/4.89x for LeNet-5 on a different
    // normalization; the table ratios below are what the benches check).
    match model {
        "VGG16" => Some([103.99e3 / 0.12e3, 103.99e3 / 0.33e3, 103.99e3 / 0.83e3]),
        "LENET5" => Some([1035.6e3 / 0.48e3, 1035.6e3 / 4.12e3, 1035.6e3 / 3.31e3]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_known_cells() {
        assert_eq!(table2_fps("VGG16", Impl2::Lpu), Some(103_990.0));
        assert_eq!(table2_fps("MLPMixer-S/4", Impl2::NullaDsp), None, "dash");
        assert_eq!(table2_fps("LENET5", Impl2::Mac), Some(480.0));
    }

    #[test]
    fn table3_known_cells() {
        assert_eq!(table3_fps("JSC-M", Impl3::LogicNets), Some(2.995e9));
        assert_eq!(table3_fps("NID", Impl3::GoogleCern), None, "dash");
        assert_eq!(table3_fps("JSC-L", Impl3::Lpu), Some(0.21e6));
    }

    #[test]
    fn lpu_loses_table3_wins_table2() {
        // The paper's shape: the programmable LPU dominates Table II but
        // is orders slower than hardwired LogicNets in Table III.
        for model in ["VGG16", "LENET5", "MLPMixer-S/4", "MLPMixer-B/4"] {
            let lpu = table2_fps(model, Impl2::Lpu).unwrap();
            for imp in [Impl2::Mac, Impl2::NullaDsp, Impl2::Xnor] {
                if let Some(other) = table2_fps(model, imp) {
                    assert!(lpu > other, "{model}: LPU must win Table II");
                }
            }
        }
        for model in ["NID", "JSC-M", "JSC-L"] {
            let lpu = table3_fps(model, Impl3::Lpu).unwrap();
            let ln = table3_fps(model, Impl3::LogicNets).unwrap();
            assert!(ln > lpu, "{model}: LogicNets wins Table III");
        }
    }
}
