//! MAC-array accelerator model (the Table II "MAC" column).
//!
//! Models a weight-stationary systolic array à la AutoSA \[14\] (with the
//! improvements of \[12\]): a `rows × cols` grid of MACs, per-layer
//! utilization limited by how well the layer's fan-in/neuron dimensions
//! fill the array, a fixed per-layer launch + off-chip round-trip
//! overhead (intermediate feature maps travel through DRAM at batch 1 —
//! the cost the LPU avoids by keeping everything on-chip, §VI-B), and a
//! weight-streaming bandwidth bound.

use lbnn_models::zoo::{LayerShape, ModelShape};

/// A systolic MAC-array accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacAccelerator {
    /// Array rows (reduction / fan-in dimension).
    pub rows: usize,
    /// Array columns (neuron dimension).
    pub cols: usize,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Per-layer fixed cost in microseconds (launch + off-chip feature
    /// round trip at batch 1).
    pub layer_overhead_us: f64,
    /// Weight-streaming bandwidth in G-weights/s (8-bit weights).
    pub weight_gps: f64,
}

impl Default for MacAccelerator {
    /// Calibrated against the paper's VGG16 and LeNet-5 MAC rows
    /// (0.12K / 0.48K FPS).
    fn default() -> Self {
        MacAccelerator {
            rows: 128,
            cols: 128,
            freq_mhz: 550.0,
            layer_overhead_us: 400.0,
            weight_gps: 25.0,
        }
    }
}

impl MacAccelerator {
    /// Seconds spent on one layer.
    pub fn layer_seconds(&self, layer: &LayerShape) -> f64 {
        let macs = layer.macs() as f64;
        // Utilization: both array dimensions must be filled.
        let util_rows = (layer.fan_in() as f64 / self.rows as f64).min(1.0);
        let util_cols = (layer.neurons() as f64 / self.cols as f64).min(1.0);
        let peak = self.rows as f64 * self.cols as f64 * self.freq_mhz * 1e6;
        let compute = macs / (peak * util_rows * util_cols);
        // Weights streamed from DRAM once per image at batch 1.
        let weights = layer.fan_in() as f64 * layer.neurons() as f64;
        let streaming = weights / (self.weight_gps * 1e9);
        compute.max(streaming) + self.layer_overhead_us * 1e-6
    }

    /// Frames per second over a whole model.
    ///
    /// # Panics
    ///
    /// Panics if the model has no layers.
    pub fn fps(&self, model: &ModelShape) -> f64 {
        assert!(!model.layers.is_empty(), "model has no layers");
        let total: f64 = model.layers.iter().map(|l| self.layer_seconds(l)).sum();
        1.0 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_models::zoo;

    #[test]
    fn vgg16_and_lenet_land_near_paper() {
        let acc = MacAccelerator::default();
        let vgg = acc.fps(&zoo::vgg16_layers_2_13());
        let lenet = acc.fps(&zoo::lenet5());
        // Paper: 0.12K and 0.48K. Accept a 2x band (analytic model).
        assert!((60.0..240.0).contains(&vgg), "VGG16 MAC fps = {vgg}");
        assert!((240.0..960.0).contains(&lenet), "LeNet MAC fps = {lenet}");
    }

    #[test]
    fn bigger_models_are_slower() {
        let acc = MacAccelerator::default();
        assert!(acc.fps(&zoo::vgg16_layers_2_13()) < acc.fps(&zoo::chewbacca_vgg()));
        assert!(acc.fps(&zoo::chewbacca_vgg()) < acc.fps(&zoo::lenet5()));
    }

    #[test]
    fn overhead_dominates_tiny_layers() {
        let acc = MacAccelerator::default();
        let t = acc.layer_seconds(&zoo::lenet5().layers[0]);
        assert!(
            (t - acc.layer_overhead_us * 1e-6).abs() / t < 0.1,
            "tiny conv should be overhead-bound"
        );
    }
}
