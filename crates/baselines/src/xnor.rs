//! XNOR (FINN-style) accelerator model (the Table II "XNOR" column).
//!
//! FINN \[16\] builds one matrix-vector-threshold unit per layer and
//! streams activations through a dataflow pipeline. With the operation
//! packing of the paper's improved baseline, the fabric sustains
//! `binops_per_cycle` XNOR-popcount operations; per-layer folding still
//! costs a fixed pipeline-fill overhead per image at batch 1.

use lbnn_models::zoo::{LayerShape, ModelShape};

/// A FINN-style binarized accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XnorAccelerator {
    /// Sustained binary operations per cycle across all MVTUs.
    pub binops_per_cycle: f64,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Per-layer pipeline-fill/synchronization overhead in microseconds.
    pub layer_overhead_us: f64,
}

impl Default for XnorAccelerator {
    /// Calibrated against the paper's VGG16 XNOR row (0.83K FPS).
    fn default() -> Self {
        XnorAccelerator {
            binops_per_cycle: 65_536.0,
            freq_mhz: 250.0,
            layer_overhead_us: 55.0,
        }
    }
}

impl XnorAccelerator {
    /// Seconds spent on one layer.
    pub fn layer_seconds(&self, layer: &LayerShape) -> f64 {
        let binops = layer.macs() as f64;
        let peak = self.binops_per_cycle * self.freq_mhz * 1e6;
        binops / peak + self.layer_overhead_us * 1e-6
    }

    /// Frames per second over a whole model.
    ///
    /// # Panics
    ///
    /// Panics if the model has no layers.
    pub fn fps(&self, model: &ModelShape) -> f64 {
        assert!(!model.layers.is_empty(), "model has no layers");
        let total: f64 = model.layers.iter().map(|l| self.layer_seconds(l)).sum();
        1.0 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_models::zoo;

    #[test]
    fn vgg16_lands_near_paper() {
        let acc = XnorAccelerator::default();
        let vgg = acc.fps(&zoo::vgg16_layers_2_13());
        // Paper: 0.83K FPS; accept a 2x band.
        assert!((415.0..1660.0).contains(&vgg), "VGG16 XNOR fps = {vgg}");
    }

    #[test]
    fn xnor_beats_mac_on_binary_workloads() {
        let xnor = XnorAccelerator::default();
        let mac = crate::mac::MacAccelerator::default();
        for model in [zoo::vgg16_layers_2_13(), zoo::lenet5(), zoo::mlpmixer_s4()] {
            assert!(
                xnor.fps(&model) > mac.fps(&model),
                "{}: binary fabric should outrun the MAC array",
                model.name
            );
        }
    }
}
