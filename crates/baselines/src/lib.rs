//! # lbnn-baselines
//!
//! The comparison points of Tables II and III: analytic throughput models
//! of the accelerators the paper measures the LPU against, plus the
//! FPS numbers the paper itself quotes (its baselines are taken from
//! prior publications — \[12\], \[16\], \[17\], \[8\], \[1\]).
//!
//! Each model is built from first principles (array shapes, folding,
//! per-layer overheads, memory bandwidth) with constants calibrated once
//! against the paper's VGG16 row; [`reported`] carries the quoted values
//! so the benches can print *paper vs model vs our-LPU* side by side.
//! EXPERIMENTS.md records where an analytic model deviates from a quoted
//! number (e.g. the MLPMixer MAC baseline, which the source publication
//! ran in large batches).

pub mod logicnets;
pub mod mac;
pub mod nulladsp;
pub mod reported;
pub mod xnor;

pub use logicnets::LogicNets;
pub use mac::MacAccelerator;
pub use nulladsp::NullaDsp;
pub use xnor::XnorAccelerator;
