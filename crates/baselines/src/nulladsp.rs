//! NullaDSP model (the Table II "NullaDSP" column).
//!
//! NullaDSP \[12\] maps NullaNet's FFCL onto the FPGA's DSP48 blocks: each
//! DSP's wide ALU evaluates a packed bundle of Boolean operations per
//! cycle, time-multiplexed over the whole logic graph. Throughput scales
//! with the DSP count and the gate density of the extracted logic; like
//! the MAC baseline it pays off-chip traffic per layer (the LPU's on-chip
//! advantage the paper calls out in §VI-B).

use lbnn_models::zoo::{LayerShape, ModelShape};

/// A DSP-mapped FFCL accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NullaDsp {
    /// DSP blocks used.
    pub dsp_count: usize,
    /// Packed Boolean operations evaluated per DSP per cycle (the 48-bit
    /// ALU packs two-input ops across its datapath).
    pub ops_per_dsp: f64,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Extracted-logic density: gate evaluations per original MAC
    /// (NullaNet minimization collapses most of the arithmetic).
    pub gates_per_mac: f64,
    /// Per-layer overhead in microseconds (instruction fetch + feature
    /// round trip).
    pub layer_overhead_us: f64,
}

impl Default for NullaDsp {
    /// Calibrated against the paper's VGG16 NullaDSP row (0.33K FPS).
    fn default() -> Self {
        NullaDsp {
            dsp_count: 4_000,
            ops_per_dsp: 4.0,
            freq_mhz: 500.0,
            gates_per_mac: 1.4,
            layer_overhead_us: 45.0,
        }
    }
}

impl NullaDsp {
    /// Seconds spent on one layer.
    pub fn layer_seconds(&self, layer: &LayerShape) -> f64 {
        let gate_evals = layer.macs() as f64 * self.gates_per_mac;
        let peak = self.dsp_count as f64 * self.ops_per_dsp * self.freq_mhz * 1e6;
        gate_evals / peak + self.layer_overhead_us * 1e-6
    }

    /// Frames per second over a whole model.
    ///
    /// # Panics
    ///
    /// Panics if the model has no layers.
    pub fn fps(&self, model: &ModelShape) -> f64 {
        assert!(!model.layers.is_empty(), "model has no layers");
        let total: f64 = model.layers.iter().map(|l| self.layer_seconds(l)).sum();
        1.0 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_models::zoo;

    #[test]
    fn vgg16_lands_near_paper() {
        let acc = NullaDsp::default();
        let vgg = acc.fps(&zoo::vgg16_layers_2_13());
        // Paper: 0.33K FPS; accept a 2x band.
        assert!((165.0..660.0).contains(&vgg), "VGG16 NullaDSP fps = {vgg}");
    }

    #[test]
    fn sits_between_mac_and_xnor_on_vgg16() {
        // The paper's Table II ordering for VGG16: MAC < NullaDSP < XNOR.
        let model = zoo::vgg16_layers_2_13();
        let mac = crate::mac::MacAccelerator::default().fps(&model);
        let dsp = NullaDsp::default().fps(&model);
        let xnor = crate::xnor::XnorAccelerator::default().fps(&model);
        assert!(mac < dsp && dsp < xnor, "mac={mac} dsp={dsp} xnor={xnor}");
    }
}
