//! LogicNets model (Table III).
//!
//! LogicNets \[17\] hardens each trained network into a fixed pipeline of
//! LUTs: every layer is fully unrolled, so the design accepts one input
//! per clock (initiation interval 1) and the clock is set by the pipeline
//! stage depth. Throughput is therefore `freq × replicas` — independent
//! of the model's arithmetic cost — which is why it dominates Table III
//! while being *unchangeable* after synthesis: the paper's programmability
//! argument (§VI-B).

use lbnn_models::zoo::ModelShape;

/// A fully-unrolled hardwired pipeline (LogicNets-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicNets {
    /// Pipeline clock in MHz (drops as the hardened network deepens).
    pub base_freq_mhz: f64,
    /// Parallel replicas of the pipeline placed on the fabric.
    pub replicas: usize,
}

impl Default for LogicNets {
    fn default() -> Self {
        LogicNets {
            base_freq_mhz: 471.0,
            replicas: 1,
        }
    }
}

impl LogicNets {
    /// Achievable clock for a model: deeper hardened pipelines close
    /// timing at lower frequency (calibrated to the spread between the
    /// NID and JSC-L rows of Table III).
    pub fn clock_mhz(&self, model: &ModelShape) -> f64 {
        let depth = model.layers.len() as f64;
        (self.base_freq_mhz * (1.0 - 0.07 * (depth - 3.0))).max(40.0)
    }

    /// Frames per second: one result per clock per replica (II = 1).
    pub fn fps(&self, model: &ModelShape) -> f64 {
        self.clock_mhz(model) * 1e6 * self.replicas as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_models::zoo;

    #[test]
    fn nid_lands_near_paper() {
        // Paper: 95.24 MFPS for NID (one replica at ~95 MHz... the quoted
        // implementations vary in clock; our default lands within 5x,
        // and the *shape* tests below are the real check).
        let fps = LogicNets::default().fps(&zoo::nid());
        assert!(
            (20.0e6..500.0e6).contains(&fps),
            "NID LogicNets fps = {fps}"
        );
    }

    #[test]
    fn throughput_independent_of_macs() {
        // A hardened pipeline's FPS depends on depth, not arithmetic.
        let ln = LogicNets::default();
        let jsc_m = ln.fps(&zoo::jsc_m());
        let jsc_l = ln.fps(&zoo::jsc_l());
        let ratio = jsc_m / jsc_l;
        assert!(
            (0.5..4.0).contains(&ratio),
            "similar-depth pipelines have similar fps: {ratio}"
        );
    }

    #[test]
    fn replicas_multiply() {
        let one = LogicNets::default();
        let many = LogicNets { replicas: 8, ..one };
        let m = zoo::jsc_m();
        assert!((many.fps(&m) / one.fps(&m) - 8.0).abs() < 1e-9);
    }
}
