//! Regenerates **Fig 8**: throughput (a) and MFG count (b) before/after
//! the merging procedure, across all benchmark models.
//! Paper: 5.2x average throughput gain; MFG count reduced up to 9.4x.

use lbnn_bench::{bench_workload_options, evaluate_model, fmt_fps};
use lbnn_core::lpu::LpuConfig;
use lbnn_models::zoo;

fn main() {
    let config = LpuConfig::paper_default();
    let wl = bench_workload_options();

    println!("Fig 8: effect of the MFG merging procedure (all models)");
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>9} {:>9} {:>8}",
        "model", "fps before", "fps after", "gain", "MFGs", "merged", "reduct"
    );
    let mut gains = Vec::new();
    let mut max_reduction: f64 = 0.0;
    for model in zoo::all_models() {
        let merged = evaluate_model(&model, &config, &wl, true);
        let unmerged = evaluate_model(&model, &config, &wl, false);
        let gain = merged.fps / unmerged.fps;
        let reduction = unmerged.mfgs_after() as f64 / merged.mfgs_after() as f64;
        gains.push(gain);
        max_reduction = max_reduction.max(reduction);
        println!(
            "{:<22} {:>12} {:>12} {:>7.2}x {:>9} {:>9} {:>7.2}x",
            model.name,
            fmt_fps(unmerged.fps),
            fmt_fps(merged.fps),
            gain,
            unmerged.mfgs_after(),
            merged.mfgs_after(),
            reduction
        );
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!();
    println!(
        "Average throughput gain {avg:.1}x (paper: 5.2x); max MFG reduction {max_reduction:.1}x (paper: up to 9.4x)"
    );
}
