//! Runs every table and figure binary in sequence (the data behind
//! EXPERIMENTS.md).

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    for name in ["table1", "table2", "table3", "fig7", "fig8", "fig9"] {
        println!("================================================================");
        println!("==== {name}");
        println!("================================================================");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
        println!();
    }
}
