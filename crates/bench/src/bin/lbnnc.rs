//! `lbnnc` — the command-line compiler driver: structural Verilog in,
//! compiled/verified LPU program out. The CLI face of the paper's Fig 1
//! flow, including the artifact boundary: `--emit-artifact` writes a
//! self-contained binary a later `--from-artifact` run (any process, any
//! machine) loads straight into a serving engine without recompiling.
//!
//! ```text
//! lbnnc <input.v> [options]            compile a netlist
//! lbnnc --from-artifact <F> [input.v]  load a compiled artifact (the
//!                                      optional netlist re-attaches the
//!                                      original verification oracle)
//!   --m <N>             LPEs per LPV            (default 64)
//!   --n <N>             LPVs per LPU            (default 16)
//!   --backend <B>       execution backend: scalar | bitsliced64 |
//!                       bitsliced:<64|128|256|512|1024> (bit-sliced
//!                       lane width); with --from-artifact, overrides the
//!                       recorded backend (all serve bit-identically)
//!   --partitions <N>    split the bit-sliced kernel tape into N
//!                       partitions with a compile-time cross-partition
//!                       exchange schedule (1..=64, default 1); ignored
//!                       by the scalar backend
//!   --no-merge          skip the MFG merging procedure (Algorithm 3)
//!   --no-opt            skip logic optimization
//!   --geq               use the pseudocode stop rule (>= m) instead of > m
//!   --verify <SEED>     run the cycle-accurate machine against the netlist
//!   --serve <N>         replay N synthetic single-sample requests through
//!                       the Runtime worker pool (dynamic micro-batching
//!                       to the engine's lane width) and print throughput
//!                       + latency percentiles; with --verify, every
//!                       response is also checked against the netlist
//!                       oracle
//!   --workers <N>       runtime worker threads for --serve (0 = one per CPU)
//!   --diagram           print the time-space schedule
//!   --emit-verilog <F>  write the mapped, balanced netlist as Verilog
//!   --emit-artifact [F] write the compiled flow as a serving artifact;
//!                       without a value, the filename is derived from
//!                       the input netlist stem (`foo.v` → `foo.lbnn`)
//!   --emit-negate-patch <F>
//!                       write a `.lbnnp` delta that negates every
//!                       primary-output cell — the smallest patch whose
//!                       effect is visible on every inference (each
//!                       output bit flips), for hot-reconfiguration
//!                       smoke tests against a running server
//!   --encode            report the binary program image size
//! ```
//!
//! Every compile prints the pass pipeline's `CompileReport` (per-pass
//! wall time and stat deltas); `--from-artifact` prints the report
//! persisted inside the artifact.

use std::process::ExitCode;

use lbnn_bench::{print_runtime_serve, synthetic_requests};
use lbnn_core::compiler::isa::encode_program;
use lbnn_core::compiler::partition::PartitionOptions;
use lbnn_core::compiler::partition::StopRule;
use lbnn_core::compiler::schedule::lpv_of_level;
use lbnn_core::lpu::resource::estimate_with_depth;
use lbnn_core::lpu::LpuConfig;
use lbnn_core::runtime::{RequestHandle, RuntimeOptions};
use lbnn_core::{Backend, Flow};
use lbnn_netlist::verilog::{parse_verilog, write_verilog};

struct Args {
    input: String,
    m: usize,
    n: usize,
    /// `Some` only when `--backend` appeared on the command line; in
    /// `--from-artifact` mode an explicit backend overrides the one
    /// recorded in the artifact (both serve bit-identically).
    backend: Option<Backend>,
    partitions: usize,
    merge: bool,
    optimize: bool,
    geq: bool,
    verify: Option<u64>,
    serve: Option<usize>,
    serve_workers: usize,
    diagram: bool,
    emit_verilog: Option<String>,
    emit_artifact: Option<String>,
    emit_patch: Option<String>,
    from_artifact: Option<String>,
    encode: bool,
    /// Compile-only flags seen on the command line, for a loud warning
    /// when `--from-artifact` makes them meaningless.
    compile_flags_seen: Vec<&'static str>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lbnnc <input.v> [--m N] [--n N] [--backend scalar|bitsliced64|bitsliced:<lanes>]\n\
         \u{20}             [--partitions N]\n\
         \u{20}             [--no-merge] [--no-opt] [--geq] [--verify SEED] [--diagram]\n\
         \u{20}             [--serve N] [--workers N]\n\
         \u{20}             [--emit-verilog FILE] [--emit-artifact [FILE]]\n\
         \u{20}             [--emit-negate-patch FILE] [--encode]\n\
         \u{20}      lbnnc --from-artifact FILE [input.v] [--backend B] [--verify SEED]\n\
         \u{20}             [--serve N] [--workers N] [--encode]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        m: 64,
        n: 16,
        backend: None,
        partitions: 1,
        merge: true,
        optimize: true,
        geq: false,
        verify: None,
        serve: None,
        serve_workers: 0,
        diagram: false,
        emit_verilog: None,
        emit_artifact: None,
        emit_patch: None,
        from_artifact: None,
        encode: false,
        compile_flags_seen: Vec::new(),
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--m" => {
                args.compile_flags_seen.push("--m");
                args.m = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--n" => {
                args.compile_flags_seen.push("--n");
                args.n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--backend" => {
                args.backend = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--partitions" => {
                args.compile_flags_seen.push("--partitions");
                args.partitions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-merge" => {
                args.compile_flags_seen.push("--no-merge");
                args.merge = false
            }
            "--no-opt" => {
                args.compile_flags_seen.push("--no-opt");
                args.optimize = false
            }
            "--geq" => {
                args.compile_flags_seen.push("--geq");
                args.geq = true
            }
            "--verify" => {
                args.verify = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--serve" => {
                args.serve = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--workers" => {
                args.serve_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--diagram" => args.diagram = true,
            "--emit-verilog" => args.emit_verilog = Some(it.next().unwrap_or_else(|| usage())),
            // The value is optional: `--emit-artifact` alone derives the
            // filename from the input netlist stem at emit time.
            "--emit-artifact" => match it.peek() {
                Some(v) if !v.starts_with('-') => args.emit_artifact = it.next(),
                _ => args.emit_artifact = Some(String::new()),
            },
            "--emit-negate-patch" => args.emit_patch = Some(it.next().unwrap_or_else(|| usage())),
            "--from-artifact" => args.from_artifact = Some(it.next().unwrap_or_else(|| usage())),
            "--encode" => args.encode = true,
            "--help" | "-h" => usage(),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.input.is_empty() && args.from_artifact.is_none() {
        usage();
    }
    args
}

fn read_netlist_arg(path: &str) -> Result<lbnn_netlist::Netlist, ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbnnc: cannot read {path}: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    match parse_verilog(&src) {
        Ok(nl) => Ok(nl),
        Err(e) => {
            eprintln!("lbnnc: parse error: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn print_flow_summary(flow: &Flow) {
    let config = &flow.config;
    println!(
        "compiled for m={}, n={} @ {:.0} MHz (tc = {}), backend {}:",
        config.m,
        config.n,
        config.freq_mhz,
        config.tc(),
        flow.backend
    );
    println!(
        "  {} gates, depth {}, {} balance buffers",
        flow.stats.gates, flow.stats.depth, flow.stats.balance_buffers
    );
    println!(
        "  {} MFGs ({} before merging), {} node executions",
        flow.stats.mfgs, flow.stats.mfgs_before_merge, flow.stats.executed_nodes
    );
    println!(
        "  latency {} clk, steady-state II {} clk, queue depth {}",
        flow.stats.clock_cycles, flow.stats.steady_clock_cycles, flow.stats.queue_depth
    );
    let t = flow.throughput();
    println!(
        "  throughput {:.3} M results/s at {} lanes/pass, occupancy {:.1}%",
        t.fps / 1e6,
        t.batch,
        100.0 * flow.occupancy()
    );
    let r = estimate_with_depth(config, flow.stats.queue_depth);
    println!(
        "  estimated FPGA cost: {} FF, {} LUT, {} Kb BRAM",
        r.ff, r.lut, r.bram_kb
    );
}

fn print_compile_report(flow: &Flow) {
    if flow.report.is_empty() {
        println!("compile passes: (none recorded in this artifact)");
        return;
    }
    println!("compile passes:");
    for line in flow.report.to_string().lines() {
        println!("  {line}");
    }
}

fn print_tape_stats(flow: &Flow) {
    let Some(stats) = flow.tape_stats() else {
        return; // scalar flow, or a loaded artifact without a cached tape
    };
    let words = match flow.backend {
        Backend::BitSliced { words } => words,
        Backend::Scalar => return,
    };
    println!("kernel tape (locality pass):");
    println!(
        "  {} instructions, {} fused chains ({} accumulator-resident results)",
        stats.tape_len, stats.fused_chains, stats.fused_instrs
    );
    println!(
        "  frame slots {} -> {} live ({:.1} KiB at {} lanes)",
        stats.frame_slots_unoptimized,
        stats.frame_slots,
        stats.frame_bytes(words) as f64 / 1024.0,
        64 * words
    );
    println!(
        "  peak level working set {} slots ({:.1} KiB), {} tile(s)/block at cap {} words",
        stats.max_level_working_set,
        stats.max_level_working_set_bytes(words) as f64 / 1024.0,
        stats.tiles_at(words),
        stats.tile_words()
    );
    println!("  simd kernels: {} (LBNN_SIMD to override)", stats.simd);
}

fn print_partition_stats(flow: &Flow) {
    let Some(engine) = &flow.partitioned else {
        return; // unpartitioned flow (or scalar backend: knob ignored)
    };
    let words = match flow.backend {
        Backend::BitSliced { words } => words,
        Backend::Scalar => return,
    };
    let stats = engine.partition_stats();
    println!("partitioned execution (exchange pass):");
    println!(
        "  {} partitions over {} levels, {} tape instructions total",
        stats.partitions, stats.levels, stats.tape_len
    );
    println!(
        "  cut {} nets -> {} scheduled copies ({:.1} KiB exchanged per block at {} lanes)",
        stats.cut_nets,
        stats.cut_copies,
        stats.exchange_words(words) as f64 * 8.0 / 1024.0,
        64 * words
    );
    println!(
        "  frame slots: {} total, {} in the widest partition ({:.1} KiB at {} lanes)",
        stats.total_frame_slots,
        stats.max_frame_slots,
        (stats.max_frame_slots * words * 8) as f64 / 1024.0,
        64 * words
    );
    println!("  executor: LBNN_PARTITION_EXEC=auto|seq|par to override");
}

fn main() -> ExitCode {
    let args = parse_args();

    let flow = match &args.from_artifact {
        // Serve-anywhere path: load a compiled artifact, no recompilation.
        Some(path) => {
            if !args.compile_flags_seen.is_empty() {
                eprintln!(
                    "lbnnc: warning: {} only affect compilation and are ignored with \
                     --from-artifact (the artifact is already compiled)",
                    args.compile_flags_seen.join(", ")
                );
            }
            let mut flow = match Flow::load(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("lbnnc: cannot load artifact {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // The backend is a serving-time choice (both are
            // bit-identical): an explicit --backend overrides the one
            // recorded in the artifact.
            if let Some(backend) = args.backend {
                if backend != flow.backend {
                    println!(
                        "backend override: artifact recorded {}, serving on {backend}",
                        flow.backend
                    );
                }
                flow.backend = backend;
            }
            println!(
                "loaded artifact `{path}`: {} inputs, {} outputs, {} gates",
                flow.source.inputs().len(),
                flow.source.outputs().len(),
                flow.stats.gates
            );
            // An accompanying netlist re-attaches the original oracle, so
            // --verify checks the served program against the *source*, not
            // just the mapped netlist stored in the artifact.
            if !args.input.is_empty() {
                let netlist = match read_netlist_arg(&args.input) {
                    Ok(nl) => nl,
                    Err(code) => return code,
                };
                if netlist.inputs().len() != flow.source.inputs().len()
                    || netlist.outputs().len() != flow.source.outputs().len()
                {
                    eprintln!(
                        "lbnnc: {} has {} inputs / {} outputs but the artifact serves {} / {}",
                        args.input,
                        netlist.inputs().len(),
                        netlist.outputs().len(),
                        flow.source.inputs().len(),
                        flow.source.outputs().len()
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "verification oracle: `{}` from {}",
                    netlist.name(),
                    args.input
                );
                flow.source = netlist;
            }
            flow
        }
        // Compile path: Verilog in, compiled flow out.
        None => {
            let netlist = match read_netlist_arg(&args.input) {
                Ok(nl) => nl,
                Err(code) => return code,
            };
            println!(
                "parsed `{}`: {} inputs, {} outputs, {} gates",
                netlist.name(),
                netlist.inputs().len(),
                netlist.outputs().len(),
                netlist.gate_count()
            );
            let config = LpuConfig::new(args.m, args.n);
            let mut partition = PartitionOptions::default();
            if args.geq {
                partition.stop_rule = StopRule::GeqM;
            }
            match Flow::builder(&netlist)
                .config(config)
                .merge(args.merge)
                .optimize(args.optimize)
                .backend(args.backend.unwrap_or_default())
                .partitions(args.partitions)
                .partition(partition)
                .compile()
            {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("lbnnc: compilation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    print_flow_summary(&flow);
    print_compile_report(&flow);
    print_tape_stats(&flow);
    print_partition_stats(&flow);

    // Loaded artifacts go straight to a resident engine (that is their
    // point); surface the serving parameters.
    if args.from_artifact.is_some() {
        match flow.engine() {
            Ok(engine) => println!(
                "engine ready: backend {}, {} clk between batches, {} lanes/kernel pass",
                engine.backend(),
                engine.steady_clock_cycles_per_batch(),
                engine.lane_width()
            ),
            Err(e) => {
                eprintln!("lbnnc: engine construction failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(seed) = args.verify {
        match flow.verify_against_netlist(seed) {
            Ok(rep) => println!(
                "verify: OK — bit-exact on {} lanes x {} outputs (seed {seed})",
                rep.lanes_checked, rep.outputs_checked
            ),
            Err(e) => {
                eprintln!("lbnnc: VERIFICATION FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Serving mode: replay N synthetic single-sample requests through the
    // persistent Runtime worker pool; the micro-batcher packs them into
    // full bit-sliced frames (the engine's lane width) dynamically.
    if let Some(requests) = args.serve {
        let engine = match flow.engine() {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("lbnnc: engine construction failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let runtime =
            match engine.into_runtime(RuntimeOptions::default().workers(args.serve_workers)) {
                Ok(runtime) => runtime,
                Err(e) => {
                    eprintln!("lbnnc: runtime construction failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        let width = flow.program.num_inputs;
        let inputs = synthetic_requests(width, requests, 0x5e12_2023);
        println!(
            "serving {requests} single-sample requests through the runtime \
             (dynamic micro-batching, flush target {} lanes)...",
            runtime.flush_target()
        );
        let handles: Vec<RequestHandle> = match inputs
            .iter()
            .map(|bits| runtime.submit(bits))
            .collect::<Result<_, _>>()
        {
            Ok(handles) => handles,
            Err(e) => {
                eprintln!("lbnnc: request submission failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        runtime.flush();
        let mut responses = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.wait() {
                Ok(bits) => responses.push(bits),
                Err(e) => {
                    eprintln!("lbnnc: request failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        print_runtime_serve("compiled block", &runtime.stats(), &runtime.report());
        // With --verify, every served response is also checked against
        // direct evaluation of the (source) netlist oracle.
        if args.verify.is_some() {
            let packed = lbnn_netlist::Lanes::pack_rows(&inputs, width);
            let oracle = match lbnn_netlist::eval::evaluate(&flow.source, &packed) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("lbnnc: oracle evaluation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for (j, response) in responses.iter().enumerate() {
                let want: Vec<bool> = oracle.iter().map(|o| o.get(j)).collect();
                if response != &want {
                    eprintln!(
                        "lbnnc: SERVE VERIFICATION FAILED: request {j} disagrees with the \
                         netlist oracle"
                    );
                    return ExitCode::FAILURE;
                }
            }
            println!("  serve verify: OK — all {requests} responses bit-exact against the oracle");
        }
    }

    if args.encode {
        match encode_program(&flow.program) {
            Ok(img) => println!(
                "encoded image: {} bits ({} Kb) across {} x {} queue slots of {} bits",
                img.total_bits(),
                img.total_bits() / 1024,
                flow.config.n,
                img.queue_depth,
                img.format.word_bits()
            ),
            Err(e) => {
                eprintln!("lbnnc: encoding failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.diagram {
        match &flow.artifacts {
            None => println!(
                "(no schedule diagram: artifacts store the program, not the compiler's \
                 intermediate schedule)"
            ),
            Some(artifacts) => {
                println!("\ntime-space schedule (rows = LPVs, cols = compute cycles):");
                let cycles = artifacts.schedule.total_cycles;
                let mut grid = vec![vec![' '; cycles]; flow.config.n];
                for (i, mfg) in artifacts.partition.mfgs.iter().enumerate() {
                    let letter = (b'A' + (i % 26) as u8) as char;
                    for &start in &artifacts.schedule.executions[i] {
                        for d in 0..mfg.depth() {
                            let lpv = lpv_of_level(mfg.bottom() + d as u32, flow.config.n);
                            grid[lpv][start + d] = letter;
                        }
                    }
                }
                for (lpv, row) in grid.iter().enumerate() {
                    let line: String = row.iter().collect();
                    println!("  LPV{lpv:<3} |{line}|");
                }
            }
        }
    }

    if let Some(path) = args.emit_verilog {
        let text = write_verilog(&flow.netlist);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("lbnnc: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("mapped netlist written to {path}");
    }

    if let Some(path) = args.emit_artifact {
        // Bare `--emit-artifact`: derive the filename from the input stem.
        let path = if path.is_empty() {
            if args.input.is_empty() {
                eprintln!(
                    "lbnnc: --emit-artifact without a filename needs an input netlist \
                     to derive one from"
                );
                return ExitCode::FAILURE;
            }
            std::path::Path::new(&args.input)
                .with_extension("lbnn")
                .display()
                .to_string()
        } else {
            path
        };
        match flow.save(&path) {
            Ok(()) => {
                let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                println!("artifact written to {path} ({size} bytes) — reload with --from-artifact");
            }
            Err(e) => {
                eprintln!("lbnnc: cannot write artifact {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = args.emit_patch {
        let outputs: std::collections::BTreeSet<_> =
            flow.netlist.outputs().iter().map(|o| o.node).collect();
        let patches: lbnn_netlist::PatchSet = outputs
            .into_iter()
            .filter_map(|id| Some((id, flow.netlist.node(id).op().negated()?)))
            .collect();
        if patches.is_empty() {
            eprintln!("lbnnc: no negatable output cell — cannot emit a patch");
            return ExitCode::FAILURE;
        }
        let delta = match flow.make_delta(&patches) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("lbnnc: cannot build patch delta: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, &delta) {
            eprintln!("lbnnc: cannot write patch {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "negate-outputs patch written to {path} ({} bytes, {} cells) — apply with \
             POST /admin/patch/<model> or a `.lbnnp` sidecar",
            delta.len(),
            patches.len()
        );
    }

    ExitCode::SUCCESS
}
