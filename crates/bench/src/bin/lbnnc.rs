//! `lbnnc` — the command-line compiler driver: structural Verilog in,
//! compiled/verified LPU program out. The CLI face of the paper's Fig 1
//! flow.
//!
//! ```text
//! lbnnc <input.v> [options]
//!   --m <N>            LPEs per LPV            (default 64)
//!   --n <N>            LPVs per LPU            (default 16)
//!   --no-merge         skip the MFG merging procedure (Algorithm 3)
//!   --no-opt           skip logic optimization
//!   --geq              use the pseudocode stop rule (>= m) instead of > m
//!   --verify <SEED>    run the cycle-accurate machine against the netlist
//!   --diagram          print the time-space schedule
//!   --emit-verilog <F> write the mapped, balanced netlist as Verilog
//!   --encode           report the binary program image size
//! ```

use std::process::ExitCode;

use lbnn_core::compiler::isa::encode_program;
use lbnn_core::compiler::partition::PartitionOptions;
use lbnn_core::compiler::partition::StopRule;
use lbnn_core::compiler::schedule::lpv_of_level;
use lbnn_core::lpu::resource::estimate_with_depth;
use lbnn_core::lpu::LpuConfig;
use lbnn_core::Flow;
use lbnn_netlist::verilog::{parse_verilog, write_verilog};

struct Args {
    input: String,
    m: usize,
    n: usize,
    merge: bool,
    optimize: bool,
    geq: bool,
    verify: Option<u64>,
    diagram: bool,
    emit_verilog: Option<String>,
    encode: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lbnnc <input.v> [--m N] [--n N] [--no-merge] [--no-opt] [--geq]\n\
         \u{20}             [--verify SEED] [--diagram] [--emit-verilog FILE] [--encode]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        m: 64,
        n: 16,
        merge: true,
        optimize: true,
        geq: false,
        verify: None,
        diagram: false,
        emit_verilog: None,
        encode: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--m" => {
                args.m = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--n" => {
                args.n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-merge" => args.merge = false,
            "--no-opt" => args.optimize = false,
            "--geq" => args.geq = true,
            "--verify" => {
                args.verify = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--diagram" => args.diagram = true,
            "--emit-verilog" => args.emit_verilog = Some(it.next().unwrap_or_else(|| usage())),
            "--encode" => args.encode = true,
            "--help" | "-h" => usage(),
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.input.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbnnc: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let netlist = match parse_verilog(&src) {
        Ok(nl) => nl,
        Err(e) => {
            eprintln!("lbnnc: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "parsed `{}`: {} inputs, {} outputs, {} gates",
        netlist.name(),
        netlist.inputs().len(),
        netlist.outputs().len(),
        netlist.gate_count()
    );

    let config = LpuConfig::new(args.m, args.n);
    let mut partition = PartitionOptions::default();
    if args.geq {
        partition.stop_rule = StopRule::GeqM;
    }
    let flow = match Flow::builder(&netlist)
        .config(config)
        .merge(args.merge)
        .optimize(args.optimize)
        .partition(partition)
        .compile()
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lbnnc: compilation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "compiled for m={}, n={} @ {:.0} MHz (tc = {}):",
        config.m,
        config.n,
        config.freq_mhz,
        config.tc()
    );
    println!(
        "  {} gates, depth {}, {} balance buffers",
        flow.stats.gates, flow.stats.depth, flow.stats.balance_buffers
    );
    println!(
        "  {} MFGs ({} before merging), {} node executions",
        flow.stats.mfgs, flow.stats.mfgs_before_merge, flow.stats.executed_nodes
    );
    println!(
        "  latency {} clk, steady-state II {} clk, queue depth {}",
        flow.stats.clock_cycles, flow.stats.steady_clock_cycles, flow.stats.queue_depth
    );
    let t = flow.throughput();
    println!(
        "  throughput {:.3} M results/s at {} lanes/pass, occupancy {:.1}%",
        t.fps / 1e6,
        t.batch,
        100.0 * flow.occupancy()
    );
    let r = estimate_with_depth(&config, flow.stats.queue_depth);
    println!(
        "  estimated FPGA cost: {} FF, {} LUT, {} Kb BRAM",
        r.ff, r.lut, r.bram_kb
    );

    if let Some(seed) = args.verify {
        match flow.verify_against_netlist(seed) {
            Ok(rep) => println!(
                "verify: OK — bit-exact on {} lanes x {} outputs (seed {seed})",
                rep.lanes_checked, rep.outputs_checked
            ),
            Err(e) => {
                eprintln!("lbnnc: VERIFICATION FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.encode {
        match encode_program(&flow.program) {
            Ok(img) => println!(
                "encoded image: {} bits ({} Kb) across {} x {} queue slots of {} bits",
                img.total_bits(),
                img.total_bits() / 1024,
                config.n,
                img.queue_depth,
                img.format.word_bits()
            ),
            Err(e) => {
                eprintln!("lbnnc: encoding failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.diagram {
        println!("\ntime-space schedule (rows = LPVs, cols = compute cycles):");
        let cycles = flow.schedule.total_cycles;
        let mut grid = vec![vec![' '; cycles]; config.n];
        for (i, mfg) in flow.partition.mfgs.iter().enumerate() {
            let letter = (b'A' + (i % 26) as u8) as char;
            for &start in &flow.schedule.executions[i] {
                for d in 0..mfg.depth() {
                    let lpv = lpv_of_level(mfg.bottom() + d as u32, config.n);
                    grid[lpv][start + d] = letter;
                }
            }
        }
        for (lpv, row) in grid.iter().enumerate() {
            let line: String = row.iter().collect();
            println!("  LPV{lpv:<3} |{line}|");
        }
    }

    if let Some(path) = args.emit_verilog {
        let text = write_verilog(&flow.netlist);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("lbnnc: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("mapped netlist written to {path}");
    }

    ExitCode::SUCCESS
}
