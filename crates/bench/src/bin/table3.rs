//! Regenerates **Table III**: FPS of the extreme-throughput models
//! (network intrusion detection, jet substructure classification).
//!
//! The LPU runs these in single-stream latency mode (one event in
//! flight); LogicNets' hardened pipelines accept one sample per clock and
//! win by orders of magnitude — the paper's trade-off: raw speed vs
//! field-reprogrammability.

//! Pass `--backend <scalar|bitsliced64|bitsliced:<lanes>>` (lanes 64-1024) (and optionally `--workers <n>`,
//! `0` = one per CPU) to also measure host serving throughput of a
//! representative JSC-M block on that execution backend; add
//! `--serve <N>` to replay `N` synthetic single-sample requests through
//! the `Runtime` micro-batcher and print latency percentiles.

use lbnn_baselines::reported::{table3_fps, Impl3};
use lbnn_baselines::LogicNets;
use lbnn_bench::{
    backend_args, compile_model, evaluate_model_latency, fmt_fps, fmt_fps_opt, measure_block_wall,
    measure_runtime_serve, print_compile_pass_timings, print_runtime_serve,
    table3_workload_options, ModelReport,
};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::{CompiledModel, ServingMode};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;

fn main() {
    let args = backend_args();
    let config = LpuConfig::paper_default();
    let wl = table3_workload_options();
    let ln = LogicNets::default();

    println!("Table III: FPS, high-throughput models, LPV count = 16");
    println!("(columns: analytic model / paper-quoted; LPU: simulated / paper)");
    println!();
    println!(
        "{:<8} {:>21} {:>14} {:>12} {:>19}",
        "model", "LogicNets", "Google+CERN", "FINN-RTL", "LPU"
    );
    // JSC-M's compiled artifact is kept for the pass-timing section at
    // the end, so the model is not compiled an extra time just for that.
    let mut jsc_m: Option<CompiledModel> = None;
    for model in [zoo::nid(), zoo::jsc_m(), zoo::jsc_l()] {
        let lpu = if model.name == "JSC-M" {
            let compiled = compile_model(&model, &config, &wl, true);
            let report = ModelReport::from_compiled(&compiled, ServingMode::Latency);
            jsc_m = Some(compiled);
            report
        } else {
            evaluate_model_latency(&model, &config, &wl, true)
        };
        println!(
            "{:<8} {:>21} {:>14} {:>12} {:>19}",
            model.name,
            format!(
                "{} / {}",
                fmt_fps(ln.fps(&model)),
                fmt_fps_opt(table3_fps(model.name, Impl3::LogicNets))
            ),
            fmt_fps_opt(table3_fps(model.name, Impl3::GoogleCern)),
            fmt_fps_opt(table3_fps(model.name, Impl3::FinnRtl)),
            format!(
                "{} / {}",
                fmt_fps(lpu.fps),
                fmt_fps_opt(table3_fps(model.name, Impl3::Lpu))
            ),
        );
    }
    println!();
    println!("Shape check (the LPU loses Table III; programmability is the point):");
    for model in [zoo::nid(), zoo::jsc_m(), zoo::jsc_l()] {
        let lpu = evaluate_model_latency(&model, &config, &wl, true);
        let ln_fps = ln.fps(&model);
        println!(
            "  {}: LogicNets/LPU = {:.0}x (paper {:.0}x)",
            model.name,
            ln_fps / lpu.fps,
            table3_fps(model.name, Impl3::LogicNets).unwrap()
                / table3_fps(model.name, Impl3::Lpu).unwrap()
        );
    }

    if args.measure {
        // Host-side serving throughput of a representative block (JSC-M
        // first layer) on the selected execution backend.
        let model = zoo::jsc_m();
        let workload = layer_workload(&model.layers[0], 0, &wl);
        let report = measure_block_wall(&workload.netlist, &config, args.backend, args.workers, 32);
        let wall = report.wall.expect("measured run has wall timing");
        println!();
        println!(
            "Host serving throughput, JSC-M L0 block, backend = {}, workers = {}:",
            wall.backend, wall.workers
        );
        println!(
            "  {} batches x {} lanes in {:.1} ms -> {} samples/s on this host",
            wall.batches,
            config.operand_bits(),
            wall.elapsed_us / 1e3,
            fmt_fps(wall.samples_per_sec),
        );
    }

    if let Some(requests) = args.serve {
        // Single-event requests (the Table III deployment) through the
        // persistent Runtime pool with dynamic micro-batching.
        let model = zoo::jsc_m();
        let workload = layer_workload(&model.layers[0], 0, &wl);
        let (stats, report) = measure_runtime_serve(
            &workload.netlist,
            &config,
            args.backend,
            args.workers,
            requests,
        );
        println!();
        print_runtime_serve("JSC-M L0 block", &stats, &report);
    }

    // Per-pass compile cost of a representative detector model — the
    // one-time cost the single-stream serving numbers amortize. Reuses
    // the JSC-M artifact compiled for the table.
    println!();
    print_compile_pass_timings(jsc_m.as_ref().expect("JSC-M compiled above"));
}
