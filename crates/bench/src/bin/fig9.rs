//! Regenerates **Fig 9**: inference time of VGG16 and LeNet-5 versus the
//! LPV count, with the NullaDSP level marking the *effective LPV
//! threshold* (paper: 2 LPVs for VGG16).

use lbnn_baselines::NullaDsp;
use lbnn_bench::{bench_workload_options, evaluate_model};
use lbnn_core::lpu::LpuConfig;
use lbnn_models::zoo;

fn main() {
    let wl = bench_workload_options();
    let sweeps: &[usize] = &[1, 2, 4, 8, 12, 16, 20, 24, 32];
    let dsp = NullaDsp::default();

    for model in [zoo::vgg16_layers_2_13(), zoo::lenet5()] {
        let dsp_us = 1e6 / dsp.fps(&model);
        println!("Fig 9: {} inference time vs LPV count (m = 64)", model.name);
        println!(
            "{:>6} {:>16} {:>12}",
            "LPVs", "time/image (us)", "vs NullaDSP"
        );
        let mut threshold: Option<usize> = None;
        for &n in sweeps {
            let config = LpuConfig::new(64, n);
            let report = evaluate_model(&model, &config, &wl, true);
            let us = 1e6 / report.fps;
            if threshold.is_none() && us <= dsp_us {
                threshold = Some(n);
            }
            println!("{:>6} {:>16.2} {:>11.2}x", n, us, dsp_us / us);
        }
        println!(
            "NullaDSP reference: {:.2} us/image; effective LPV threshold = {} (paper: 2 for VGG16)",
            dsp_us,
            threshold.map_or("n/a".to_string(), |n| n.to_string())
        );
        println!();
    }
}
