//! Regenerates **Table II**: FPS of the high-accuracy models across the
//! MAC / NullaDSP / XNOR baselines and the LPU (LPV count 16).
//!
//! Baseline columns show both the analytic model of `lbnn-baselines`
//! (calibrated on the VGG16 row) and the value the paper quotes; the LPU
//! column is measured by compiling the FFCL workloads and counting cycles
//! in the cycle-accurate simulator.

//! Pass `--backend <scalar|bitsliced64|bitsliced:<lanes>>` (lanes 64-1024) (and optionally `--workers <n>`,
//! `0` = one per CPU) to also measure host serving throughput of a
//! representative VGG16 block on that execution backend; add
//! `--serve <N>` to replay `N` synthetic single-sample requests through
//! the `Runtime` micro-batcher and print latency percentiles.

use lbnn_baselines::reported::{table2_fps, Impl2};
use lbnn_baselines::{MacAccelerator, NullaDsp, XnorAccelerator};
use lbnn_bench::{
    backend_args, bench_workload_options, compile_model, evaluate_model, fmt_fps, fmt_fps_opt,
    measure_block_wall, measure_runtime_serve, print_compile_pass_timings, print_runtime_serve,
    ModelReport,
};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::{CompiledModel, ServingMode};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;

fn main() {
    let args = backend_args();
    let config = LpuConfig::paper_default();
    let wl = bench_workload_options();
    let mac = MacAccelerator::default();
    let dsp = NullaDsp::default();
    let xnor = XnorAccelerator::default();

    println!("Table II: FPS, high-accuracy models, LPV count = 16");
    println!("(columns: analytic model / paper-quoted; LPU: simulated / paper)");
    println!();
    println!(
        "{:<14} {:>17} {:>17} {:>17} {:>21}",
        "model", "MAC", "NullaDSP", "XNOR", "LPU"
    );
    // LeNet-5's compiled artifact is kept for the pass-timing section at
    // the end, so the model is not compiled a second time just for that.
    let mut lenet: Option<CompiledModel> = None;
    for model in [
        zoo::vgg16_layers_2_13(),
        zoo::lenet5(),
        zoo::mlpmixer_s4(),
        zoo::mlpmixer_b4(),
    ] {
        // Model names in the paper's tables.
        let paper_name = match model.name {
            "VGG16[2:13]" => "VGG16",
            other => other,
        };
        let lpu = if model.name == "LENET5" {
            let compiled = compile_model(&model, &config, &wl, true);
            let report = ModelReport::from_compiled(&compiled, ServingMode::Throughput);
            lenet = Some(compiled);
            report
        } else {
            evaluate_model(&model, &config, &wl, true)
        };
        let row = |m: f64, p: Option<f64>| format!("{} / {}", fmt_fps(m), fmt_fps_opt(p));
        // NullaDSP has no mixer rows in the paper (dash).
        let dsp_model = if paper_name.starts_with("MLPMixer") {
            None
        } else {
            Some(dsp.fps(&model))
        };
        println!(
            "{:<14} {:>17} {:>17} {:>17} {:>21}",
            paper_name,
            row(mac.fps(&model), table2_fps(paper_name, Impl2::Mac)),
            match dsp_model {
                Some(v) => row(v, table2_fps(paper_name, Impl2::NullaDsp)),
                None => "- / -".to_string(),
            },
            row(xnor.fps(&model), table2_fps(paper_name, Impl2::Xnor)),
            row(lpu.fps, table2_fps(paper_name, Impl2::Lpu)),
        );
    }
    println!();
    println!("Shape checks (paper's headline: LPU wins every Table II row):");
    for model in [zoo::vgg16_layers_2_13(), zoo::lenet5()] {
        let paper_name = if model.name == "VGG16[2:13]" {
            "VGG16"
        } else {
            model.name
        };
        let lpu = evaluate_model(&model, &config, &wl, true);
        println!(
            "  {paper_name}: LPU/XNOR = {:.1}x (paper {:.1}x), LPU/MAC = {:.0}x (paper {:.0}x)",
            lpu.fps / XnorAccelerator::default().fps(&model),
            table2_fps(paper_name, Impl2::Lpu).unwrap()
                / table2_fps(paper_name, Impl2::Xnor).unwrap(),
            lpu.fps / MacAccelerator::default().fps(&model),
            table2_fps(paper_name, Impl2::Lpu).unwrap()
                / table2_fps(paper_name, Impl2::Mac).unwrap(),
        );
    }

    if args.measure {
        // Host-side serving throughput of a representative mid-size block
        // (VGG16 L8, 256->512 conv) on the selected execution backend.
        let model = zoo::vgg16_layers_2_13();
        let workload = layer_workload(&model.layers[7], 7, &wl);
        let report = measure_block_wall(&workload.netlist, &config, args.backend, args.workers, 32);
        let wall = report.wall.expect("measured run has wall timing");
        println!();
        println!(
            "Host serving throughput, VGG16 L8 block, backend = {}, workers = {}:",
            wall.backend, wall.workers
        );
        println!(
            "  {} batches x {} lanes in {:.1} ms -> {} samples/s on this host",
            wall.batches,
            config.operand_bits(),
            wall.elapsed_us / 1e3,
            fmt_fps(wall.samples_per_sec),
        );
        println!(
            "  (modeled hardware: {} samples/s at {:.0} MHz)",
            fmt_fps(report.fps),
            report.freq_mhz
        );
    }

    if let Some(requests) = args.serve {
        // Individual requests through the persistent Runtime pool: the
        // micro-batcher packs them into 64-lane words dynamically.
        let model = zoo::vgg16_layers_2_13();
        let workload = layer_workload(&model.layers[7], 7, &wl);
        let (stats, report) = measure_runtime_serve(
            &workload.netlist,
            &config,
            args.backend,
            args.workers,
            requests,
        );
        println!();
        print_runtime_serve("VGG16 L8 block", &stats, &report);
    }

    // Where whole-model compile time goes, per pipeline pass (the serve
    // numbers above amortize this one-time cost forever). Reuses the
    // LeNet-5 artifact compiled for the table.
    println!();
    print_compile_pass_timings(lenet.as_ref().expect("LeNet-5 compiled above"));
}
