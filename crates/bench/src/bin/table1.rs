//! Regenerates **Table I**: VU9P resource utilization of the LPU with
//! LPV count 16, paper vs analytical model.

use lbnn_core::lpu::resource::{estimate, Vu9pCapacity};
use lbnn_core::lpu::LpuConfig;

fn main() {
    let config = LpuConfig::paper_default();
    let r = estimate(&config);
    let cap = Vu9pCapacity::default();

    println!(
        "Table I: resource utilization, LPV count = 16 (m = {}, 2m = {}-bit operands)",
        config.m,
        config.operand_bits()
    );
    println!();
    println!(
        "{:<10} {:>18} {:>22}",
        "resource", "paper", "this reproduction"
    );
    println!(
        "{:<10} {:>18} {:>22}",
        "FF",
        "478K (20.2%)",
        format!("{:.0}K ({:.1}%)", r.ff as f64 / 1e3, 100.0 * r.ff_util)
    );
    println!(
        "{:<10} {:>18} {:>22}",
        "LUT",
        "433K (36.7%)",
        format!("{:.0}K ({:.1}%)", r.lut as f64 / 1e3, 100.0 * r.lut_util)
    );
    println!(
        "{:<10} {:>18} {:>22}",
        "BRAM",
        "12240Kb (15.8%)",
        format!("{}Kb ({:.1}%)", r.bram_kb, 100.0 * r.bram_util)
    );
    println!(
        "{:<10} {:>18} {:>22}",
        "FREQ",
        "333MHz",
        format!("{:.0}MHz", r.freq_mhz)
    );
    println!();
    println!(
        "VU9P capacities used: {} FF, {} LUT, {} Kb BRAM",
        cap.ff, cap.lut, cap.bram_kb
    );
}
