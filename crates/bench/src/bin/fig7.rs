//! Regenerates **Fig 7**: per-layer computation time (a) and MFG count
//! (b) for VGG16 layers 2-13, with and without the merging procedure.

use lbnn_bench::{bench_workload_options, evaluate_model};
use lbnn_core::lpu::LpuConfig;
use lbnn_models::zoo;

fn main() {
    let config = LpuConfig::paper_default();
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();
    let merged = evaluate_model(&model, &config, &wl, true);
    let unmerged = evaluate_model(&model, &config, &wl, false);

    println!("Fig 7a: VGG16 layers [2:13], clock cycles per image (Kcycles)");
    println!(
        "{:<8} {:>16} {:>16} {:>9}",
        "layer", "no merging", "with merging", "gain"
    );
    for (u, m) in unmerged.layers.iter().zip(&merged.layers) {
        println!(
            "{:<8} {:>16.1} {:>16.1} {:>8.2}x",
            u.name,
            u.cycles_per_image / 1e3,
            m.cycles_per_image / 1e3,
            u.cycles_per_image / m.cycles_per_image
        );
    }
    println!();
    println!("Fig 7b: VGG16 layers [2:13], MFG count");
    println!(
        "{:<8} {:>16} {:>16} {:>9}",
        "layer", "no merging", "with merging", "gain"
    );
    for (u, m) in unmerged.layers.iter().zip(&merged.layers) {
        println!(
            "{:<8} {:>16} {:>16} {:>8.2}x",
            u.name,
            u.mfgs_after,
            m.mfgs_after,
            u.mfgs_after as f64 / m.mfgs_after as f64
        );
    }
    println!();
    println!(
        "Correlation (paper: computation time tracks MFG count): totals {} -> {} MFGs, {:.1}K -> {:.1}K cycles",
        unmerged.mfgs_after(),
        merged.mfgs_after(),
        unmerged.total_cycles_per_image / 1e3,
        merged.total_cycles_per_image / 1e3
    );
}
