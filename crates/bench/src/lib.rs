//! # lbnn-bench
//!
//! The evaluation harness: compiles the model-zoo workloads onto the LPU
//! through the serving API ([`CompiledModel`]), measures cycle counts with
//! the cycle-accurate simulator, combines them with the analytic
//! baselines, and formats the rows of every table and figure of the
//! paper. The `src/bin` binaries (`table1`–`table3`, `fig7`–`fig9`,
//! `all`) print paper-vs-reproduced rows; the Criterion benches under
//! `benches/` measure the implementation itself on the same workloads.

use lbnn_core::flow::{Flow, FlowOptions};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::model::{CompiledLayer, CompiledModel, ServingMode};
use lbnn_core::runtime::{RequestHandle, RuntimeOptions, RuntimeStats};
use lbnn_core::{Backend, ThroughputReport};
use lbnn_models::workload::{model_specs, LayerWorkload, WorkloadOptions};
use lbnn_models::zoo::ModelShape;
use lbnn_netlist::{Lanes, Netlist};

/// Per-layer evaluation result.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer label.
    pub name: String,
    /// Gates in the compiled block (after optimization + balancing).
    pub gates: usize,
    /// Logic depth of the block.
    pub depth: u32,
    /// MFG count before merging.
    pub mfgs_before: usize,
    /// MFG count after merging.
    pub mfgs_after: usize,
    /// Instruction-queue depth (steady-state initiation interval in
    /// compute cycles).
    pub queue_depth: usize,
    /// One-pass latency in clock cycles.
    pub latency_clk: u64,
    /// Steady-state clocks per pass (initiation interval × tc).
    pub ii_clk: u64,
    /// LPE occupancy of the steady-state schedule.
    pub occupancy: f64,
    /// Block passes per input image.
    pub passes_per_image: f64,
    /// Clock cycles per input image for this layer.
    pub cycles_per_image: f64,
}

impl LayerReport {
    /// Extracts the report of one compiled layer under `mode`.
    pub fn from_compiled(layer: &CompiledLayer, mode: ServingMode, lanes: usize) -> LayerReport {
        let stats = layer.stats();
        LayerReport {
            name: layer.name().to_string(),
            gates: stats.gates,
            depth: stats.depth,
            mfgs_before: stats.mfgs_before_merge,
            mfgs_after: stats.mfgs,
            queue_depth: stats.queue_depth,
            latency_clk: stats.clock_cycles,
            ii_clk: stats.steady_clock_cycles,
            occupancy: layer.flow().occupancy(),
            passes_per_image: layer.passes_per_image(mode, lanes),
            cycles_per_image: layer.cycles_per_image(mode, lanes),
        }
    }
}

/// Whole-model evaluation result.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Per-layer reports.
    pub layers: Vec<LayerReport>,
    /// Total clock cycles per image.
    pub total_cycles_per_image: f64,
    /// Frames per second at the configuration's clock.
    pub fps: f64,
    /// Machine configuration used.
    pub config: LpuConfig,
}

impl ModelReport {
    /// Derives the full report from a compiled model under `mode`.
    pub fn from_compiled(compiled: &CompiledModel, mode: ServingMode) -> ModelReport {
        let config = *compiled.config();
        let lanes = config.operand_bits();
        let layers: Vec<LayerReport> = compiled
            .layers()
            .iter()
            .map(|l| LayerReport::from_compiled(l, mode, lanes))
            .collect();
        ModelReport {
            model: compiled.name().to_string(),
            layers,
            total_cycles_per_image: compiled.cycles_per_image(mode),
            fps: compiled.fps(mode),
            config,
        }
    }

    /// Total MFGs across layers before merging.
    pub fn mfgs_before(&self) -> usize {
        self.layers.iter().map(|l| l.mfgs_before).sum()
    }

    /// Total MFGs across layers after merging.
    pub fn mfgs_after(&self) -> usize {
        self.layers.iter().map(|l| l.mfgs_after).sum()
    }
}

/// Workload defaults for the Table II / Fig 7-9 benches: NullaNet-Tiny
/// style bounded fan-in (6 inputs per neuron, exact truth-table
/// extraction) and blocks of up to 256 neurons so merged MFGs fill the
/// LPVs densely.
pub fn bench_workload_options() -> WorkloadOptions {
    WorkloadOptions {
        block_neurons: 256,
        max_fanin: 6,
        exact_fanin: 10,
        isf_samples: 48,
        seed: 2023,
    }
}

/// Compiles a zoo model's workloads into one serving artifact.
///
/// # Panics
///
/// Panics if compilation fails (bench workloads are all schedulable).
pub fn compile_model(
    model: &ModelShape,
    config: &LpuConfig,
    wl: &WorkloadOptions,
    merge: bool,
) -> CompiledModel {
    let options = FlowOptions {
        merge,
        ..Default::default()
    };
    CompiledModel::compile(model.name, model_specs(model, wl), config, &options)
        .unwrap_or_else(|e| panic!("model {} failed to compile: {e}", model.name))
}

/// Compiles one layer workload and derives its per-image cost.
///
/// # Panics
///
/// Panics if compilation fails (bench workloads are all schedulable).
pub fn evaluate_layer(workload: &LayerWorkload, config: &LpuConfig, merge: bool) -> LayerReport {
    let flow = Flow::builder(&workload.netlist)
        .config(*config)
        .merge(merge)
        .compile()
        .unwrap_or_else(|e| panic!("layer {} failed to compile: {e}", workload.name));
    let lanes = config.operand_bits();
    let ii_clk = flow.stats.steady_clock_cycles;
    let passes = workload.passes_per_image(lanes);
    LayerReport {
        name: workload.name.clone(),
        gates: flow.stats.gates,
        depth: flow.stats.depth,
        mfgs_before: flow.stats.mfgs_before_merge,
        mfgs_after: flow.stats.mfgs,
        queue_depth: flow.stats.queue_depth,
        latency_clk: flow.stats.clock_cycles,
        ii_clk,
        occupancy: flow.occupancy(),
        passes_per_image: passes,
        cycles_per_image: ii_clk as f64 * passes,
    }
}

/// Evaluates a whole model on the LPU in batched steady state (the Table
/// II deployment).
pub fn evaluate_model(
    model: &ModelShape,
    config: &LpuConfig,
    wl: &WorkloadOptions,
    merge: bool,
) -> ModelReport {
    ModelReport::from_compiled(
        &compile_model(model, config, wl, merge),
        ServingMode::Throughput,
    )
}

/// Evaluates a model in *latency* (single-stream) mode: one sample in
/// flight, each block pass costs its full fill+drain latency, and blocks
/// run sequentially. This matches the deployment of the Table III
/// extreme-throughput tasks, where a detector processes one event at a
/// time (LogicNets streams one sample per clock; the LPU runs one program
/// pass per sample).
pub fn evaluate_model_latency(
    model: &ModelShape,
    config: &LpuConfig,
    wl: &WorkloadOptions,
    merge: bool,
) -> ModelReport {
    ModelReport::from_compiled(
        &compile_model(model, config, wl, merge),
        ServingMode::Latency,
    )
}

/// Workload options for the Table III tasks: realistic fan-in (the
/// physics/security nets keep wide first layers; ISF extraction from
/// observed samples, as NullaNet does on real data).
pub fn table3_workload_options() -> WorkloadOptions {
    WorkloadOptions {
        block_neurons: 64,
        max_fanin: 64,
        exact_fanin: 8,
        isf_samples: 96,
        seed: 2023,
    }
}

/// Shared `--backend` / `--workers` / `--serve` CLI flags of the table
/// binaries.
///
/// `measure` is set when `--backend` was passed explicitly: the binaries
/// then append a host-side serving-throughput section measured on that
/// backend (see [`measure_block_wall`]). `serve` is set by `--serve <N>`:
/// the binaries then replay `N` synthetic single-sample requests through
/// the [`lbnn_core::Runtime`] micro-batcher (see [`measure_runtime_serve`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendArgs {
    /// Selected execution backend (default [`Backend::Scalar`]).
    pub backend: Backend,
    /// Worker threads for batch sharding (default 1; 0 = one per CPU).
    pub workers: usize,
    /// `true` when `--backend` appeared on the command line.
    pub measure: bool,
    /// `--serve <N>`: replay `N` single-sample requests through the
    /// runtime micro-batcher and report latency percentiles.
    pub serve: Option<usize>,
}

impl Default for BackendArgs {
    fn default() -> Self {
        BackendArgs {
            backend: Backend::Scalar,
            workers: 1,
            measure: false,
            serve: None,
        }
    }
}

/// Parses `--backend <scalar|bitsliced64|bitsliced:<lanes>>`,
/// `--workers <n>` and `--serve <n>` from an argument iterator
/// (unrecognized arguments are ignored so binaries can layer their own
/// flags).
///
/// # Panics
///
/// Panics with a usage message on a malformed value, the right behavior
/// for the reproduction binaries this serves.
pub fn parse_backend_args<I: IntoIterator<Item = String>>(args: I) -> BackendArgs {
    let mut parsed = BackendArgs::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--backend" => {
                let v = iter.next().expect("--backend needs a value");
                parsed.backend = v
                    .parse()
                    .unwrap_or_else(|e| panic!("bad --backend value: {e}"));
                parsed.measure = true;
            }
            "--workers" => {
                let v = iter.next().expect("--workers needs a value");
                parsed.workers = v.parse().expect("--workers needs an integer");
            }
            "--serve" => {
                let v = iter.next().expect("--serve needs a request count");
                parsed.serve = Some(v.parse().expect("--serve needs an integer"));
            }
            _ => {}
        }
    }
    parsed
}

/// Reads [`BackendArgs`] from the process command line.
pub fn backend_args() -> BackendArgs {
    parse_backend_args(std::env::args().skip(1))
}

/// Deterministic pseudo-random serving batches for one block: `batches`
/// batches of `lanes` samples across `width` primary inputs (xorshift64;
/// no RNG dependency in the measurement path).
pub fn serving_batches(width: usize, lanes: usize, batches: usize, seed: u64) -> Vec<Vec<Lanes>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..batches)
        .map(|_| {
            (0..width)
                .map(|_| {
                    let words: Vec<u64> = (0..lanes.div_ceil(64)).map(|_| next()).collect();
                    Lanes::from_words(words, lanes)
                })
                .collect()
        })
        .collect()
}

/// Compiles `netlist` for `backend` and measures host wall-clock serving
/// throughput over `batches` batches of `2m` lanes — the number behind
/// the table binaries' `--backend` section and the
/// `table2_fps_large` backend comparison bench.
///
/// # Panics
///
/// Panics if compilation or serving fails (bench workloads are all
/// schedulable).
pub fn measure_block_wall(
    netlist: &Netlist,
    config: &LpuConfig,
    backend: Backend,
    workers: usize,
    batches: usize,
) -> ThroughputReport {
    let flow = Flow::builder(netlist)
        .config(*config)
        .backend(backend)
        .compile()
        .unwrap_or_else(|e| panic!("block failed to compile: {e}"));
    let mut engine = flow
        .into_engine()
        .unwrap_or_else(|e| panic!("engine construction failed: {e}"))
        .with_workers(workers);
    let width = engine.program().num_inputs;
    let inputs = serving_batches(width, config.operand_bits(), batches, 0x1b22_2023);
    let (_, report) = engine
        .run_batches_timed(&inputs)
        .unwrap_or_else(|e| panic!("serving run failed: {e}"));
    report
}

/// Deterministic synthetic single-sample requests: `count` bit vectors
/// of `width` primary-input bits (xorshift64; no RNG dependency in the
/// measurement path). The runtime-serving counterpart of
/// [`serving_batches`].
pub fn synthetic_requests(width: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut state = seed | 1;
    (0..count)
        .map(|_| {
            let mut bits = Vec::with_capacity(width);
            let mut word = 0u64;
            for i in 0..width {
                if i % 64 == 0 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    word = state;
                }
                bits.push(word >> (i % 64) & 1 != 0);
            }
            bits
        })
        .collect()
}

/// Compiles `netlist` for `backend` and replays `requests` synthetic
/// single-sample requests through a [`lbnn_core::Runtime`] — individual `submit`
/// calls, dynamically micro-batched to the backend's lane width by the runtime —
/// returning the measured [`RuntimeStats`] and the wall-annotated
/// [`ThroughputReport`] (whose [`lbnn_core::WallTiming::queue`] carries
/// the latency percentiles). The number behind the table binaries'
/// `--serve` section and `lbnnc --serve`.
///
/// # Panics
///
/// Panics if compilation or serving fails (bench workloads are all
/// schedulable).
pub fn measure_runtime_serve(
    netlist: &Netlist,
    config: &LpuConfig,
    backend: Backend,
    workers: usize,
    requests: usize,
) -> (RuntimeStats, ThroughputReport) {
    let flow = Flow::builder(netlist)
        .config(*config)
        .backend(backend)
        .compile()
        .unwrap_or_else(|e| panic!("block failed to compile: {e}"));
    let width = flow.program.num_inputs;
    let runtime = flow
        .into_engine()
        .unwrap_or_else(|e| panic!("engine construction failed: {e}"))
        .into_runtime(RuntimeOptions::default().workers(workers))
        .unwrap_or_else(|e| panic!("runtime construction failed: {e}"));
    let handles: Vec<RequestHandle> = synthetic_requests(width, requests, 0x1b22_2023)
        .iter()
        .map(|bits| {
            runtime
                .submit(bits)
                .unwrap_or_else(|e| panic!("submit failed: {e}"))
        })
        .collect();
    runtime.flush();
    for handle in handles {
        handle
            .wait()
            .unwrap_or_else(|e| panic!("request failed: {e}"));
    }
    (runtime.stats(), runtime.report())
}

/// Prints the standard runtime-serving section of the table binaries:
/// throughput, packing efficiency, queue depth, latency percentiles.
pub fn print_runtime_serve(label: &str, stats: &RuntimeStats, report: &ThroughputReport) {
    let wall = report.wall.expect("runtime report has wall timing");
    println!(
        "Runtime micro-batched serving, {label}, backend = {}, workers = {}:",
        wall.backend, wall.workers
    );
    println!(
        "  {} requests -> {} micro-batches ({:.1} lanes/batch; {} full, {} deadline) \
         in {:.1} ms",
        stats.requests,
        stats.micro_batches,
        stats.mean_lanes_per_batch,
        stats.full_flushes,
        stats.deadline_flushes,
        stats.elapsed_us / 1e3,
    );
    println!(
        "  {} requests/s on this host; peak queue depth {}",
        fmt_fps(stats.requests_per_sec),
        stats.queue.peak_depth
    );
    println!(
        "  latency p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
        stats.queue.p50_us, stats.queue.p95_us, stats.queue.p99_us
    );
}

/// One pipeline pass's compile cost aggregated across all layers of a
/// [`CompiledModel`] (the whole-model view of the per-flow
/// [`lbnn_core::CompileReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PassTiming {
    /// Pass name (`optimize`, `balance`, …, `codegen`).
    pub name: String,
    /// Total wall time across layers, in microseconds.
    pub total_us: f64,
    /// Layers whose report recorded this pass.
    pub layers: usize,
}

/// Aggregates per-pass compile wall time across a model's layers, in
/// pipeline pass order.
pub fn compile_pass_timings(model: &CompiledModel) -> Vec<PassTiming> {
    let mut totals: Vec<PassTiming> = Vec::new();
    for layer in model.layers() {
        for pass in &layer.report().passes {
            match totals.iter_mut().find(|t| t.name == pass.name) {
                Some(t) => {
                    t.total_us += pass.wall_us;
                    t.layers += 1;
                }
                None => totals.push(PassTiming {
                    name: pass.name.clone(),
                    total_us: pass.wall_us,
                    layers: 1,
                }),
            }
        }
    }
    totals
}

/// Prints the per-pass compile-time breakdown of a model — the table
/// binaries' window into where whole-model compile time goes.
pub fn print_compile_pass_timings(model: &CompiledModel) {
    let timings = compile_pass_timings(model);
    let total: f64 = timings.iter().map(|t| t.total_us).sum();
    println!(
        "Compile pass timings, {} ({} layers, total {:.1} ms):",
        model.name(),
        model.layers().len(),
        total / 1e3
    );
    for t in &timings {
        let share = if total > 0.0 {
            100.0 * t.total_us / total
        } else {
            0.0
        };
        println!(
            "  {:<9} {:>10.1} us  ({share:>4.1}% across {} layer compiles)",
            t.name, t.total_us, t.layers
        );
    }
}

/// Formats an FPS value the way the paper's tables do (`0.12K`,
/// `103.99K`, `8.39M`).
pub fn fmt_fps(fps: f64) -> String {
    if fps >= 1e6 {
        format!("{:.2}M", fps / 1e6)
    } else if fps >= 1e3 {
        format!("{:.2}K", fps / 1e3)
    } else {
        format!("{fps:.2}")
    }
}

/// Formats an optional FPS cell (dash for `None`, like the paper).
pub fn fmt_fps_opt(fps: Option<f64>) -> String {
    fps.map_or_else(|| "-".to_string(), fmt_fps)
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_models::zoo;

    #[test]
    fn fmt_matches_paper_style() {
        assert_eq!(fmt_fps(103_990.0), "103.99K");
        assert_eq!(fmt_fps(8_390_000.0), "8.39M");
        assert_eq!(fmt_fps(120.0), "120.00");
        assert_eq!(fmt_fps_opt(None), "-");
    }

    #[test]
    fn small_model_evaluates() {
        let model = zoo::jsc_m();
        let config = LpuConfig::new(16, 4);
        let report = evaluate_model(&model, &config, &bench_workload_options(), true);
        assert_eq!(report.layers.len(), model.layers.len());
        assert!(report.fps > 0.0);
        assert!(report.total_cycles_per_image > 0.0);
        for layer in &report.layers {
            assert!(layer.occupancy > 0.0 && layer.occupancy <= 1.0);
            assert!(layer.ii_clk <= layer.latency_clk);
        }
    }

    #[test]
    fn model_report_agrees_with_per_layer_evaluation() {
        // The CompiledModel path must reproduce exactly what per-layer
        // compilation computed before the serving API existed.
        let model = zoo::jsc_m();
        let config = LpuConfig::new(16, 4);
        let wl = bench_workload_options();
        let report = evaluate_model(&model, &config, &wl, true);
        let workloads = lbnn_models::workload::model_workloads(&model, &wl);
        for (layer, workload) in report.layers.iter().zip(&workloads) {
            let solo = evaluate_layer(workload, &config, true);
            assert_eq!(layer.gates, solo.gates);
            assert_eq!(layer.ii_clk, solo.ii_clk);
            assert_eq!(layer.latency_clk, solo.latency_clk);
            assert_eq!(layer.cycles_per_image, solo.cycles_per_image);
        }
    }

    #[test]
    fn backend_flags_parse() {
        let args = |v: &[&str]| parse_backend_args(v.iter().map(|s| s.to_string()));
        assert_eq!(args(&[]), BackendArgs::default());
        let a = args(&["--backend", "bitsliced64", "--workers", "4"]);
        assert_eq!(a.backend, Backend::BitSliced64);
        assert_eq!(a.workers, 4);
        assert!(a.measure);
        let b = args(&["--unrelated", "--backend", "scalar"]);
        assert_eq!(b.backend, Backend::Scalar);
        assert!(b.measure);
        let c = args(&["--backend", "bitsliced:256"]);
        assert_eq!(c.backend, Backend::BitSliced { words: 4 });
        assert!(c.measure);
    }

    #[test]
    fn serving_batches_are_deterministic_and_shaped() {
        let a = serving_batches(5, 130, 3, 7);
        let b = serving_batches(5, 130, 3, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 5);
        assert_eq!(a[0][0].len(), 130);
        assert_ne!(a, serving_batches(5, 130, 3, 8));
    }

    #[test]
    fn measure_block_wall_reports_both_backends() {
        use lbnn_netlist::random::RandomDag;
        let nl = RandomDag::strict(16, 5, 12).outputs(4).generate(3);
        let config = LpuConfig::new(8, 4);
        for backend in [Backend::Scalar, Backend::BitSliced64] {
            let report = measure_block_wall(&nl, &config, backend, 1, 4);
            let wall = report.wall.expect("measured run has wall timing");
            assert_eq!(wall.backend, backend);
            assert_eq!(wall.batches, 4);
            assert!(wall.samples_per_sec > 0.0);
        }
    }

    #[test]
    fn synthetic_requests_are_deterministic_and_shaped() {
        let a = synthetic_requests(10, 20, 7);
        let b = synthetic_requests(10, 20, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert_eq!(a[0].len(), 10);
        assert_ne!(a, synthetic_requests(10, 20, 8));
        // Not degenerate: some bits of each polarity.
        let ones: usize = a.iter().flatten().filter(|&&b| b).count();
        assert!(ones > 0 && ones < 200);
    }

    #[test]
    fn measure_runtime_serve_reports_both_backends() {
        use lbnn_netlist::random::RandomDag;
        let nl = RandomDag::strict(16, 5, 12).outputs(4).generate(3);
        let config = LpuConfig::new(8, 4);
        for backend in [Backend::Scalar, Backend::BitSliced64] {
            let (stats, report) = measure_runtime_serve(&nl, &config, backend, 2, 100);
            assert_eq!(stats.requests, 100);
            assert!(stats.micro_batches >= 2, "100 requests over 64-lane words");
            let wall = report.wall.expect("runtime report has wall timing");
            assert_eq!(wall.backend, backend);
            let queue = wall.queue.expect("runtime wall carries queue stats");
            assert!(queue.p50_us <= queue.p99_us);
        }
    }

    #[test]
    fn backend_serve_flag_parses() {
        let args = |v: &[&str]| parse_backend_args(v.iter().map(|s| s.to_string()));
        assert_eq!(args(&[]).serve, None);
        assert_eq!(args(&["--serve", "256"]).serve, Some(256));
    }

    #[test]
    fn merging_improves_or_matches_throughput() {
        let model = zoo::jsc_m();
        let config = LpuConfig::new(16, 4);
        let wl = bench_workload_options();
        let merged = evaluate_model(&model, &config, &wl, true);
        let unmerged = evaluate_model(&model, &config, &wl, false);
        assert!(merged.mfgs_after() <= unmerged.mfgs_after());
        assert!(merged.fps >= unmerged.fps * 0.95, "merging should not hurt");
    }
}
