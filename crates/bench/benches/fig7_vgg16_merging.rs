//! Criterion bench behind **Fig 7**: the partition + merge pipeline on a
//! VGG16 layer block, merging on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::bench_workload_options;
use lbnn_core::compiler::merge::merge_mfgs;
use lbnn_core::compiler::partition::{partition, PartitionOptions};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::balance::balance;
use lbnn_netlist::Levels;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();
    let workload = layer_workload(&model.layers[3], 3, &wl);
    let (balanced, _) = balance(&workload.netlist);
    let levels = Levels::compute(&balanced);
    let m = 64;

    let mut g = c.benchmark_group("fig7_partition_merge");
    g.bench_function("partition", |b| {
        b.iter(|| black_box(partition(&balanced, &levels, m, PartitionOptions::default()).unwrap()))
    });
    let part = partition(&balanced, &levels, m, PartitionOptions::default()).unwrap();
    g.bench_function("merge", |b| b.iter(|| black_box(merge_mfgs(&part, m))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
