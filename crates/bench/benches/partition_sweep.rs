//! Criterion bench behind partitioned multi-engine execution (ISSUE 10):
//! serving throughput of one wide, shallow banded DAG (~24.6k nets) swept
//! across partition counts {1, 2, 3, 8} at 1024 lanes per block.
//!
//! The netlist is built so the *single-engine* live frame (~8.2k slots ×
//! 16 words × 8 B ≈ 1 MiB) exceeds the 256 KiB cache budget: the tape
//! must execute in narrow cache tiles, re-streaming all ~16k kernel
//! instructions once per tile. Contiguous partitioning splits each level
//! into per-partition frames small enough for full-width tiles, so every
//! partition replays its tape segment exactly once per block — same
//! word-ops, a fraction of the tape traffic. The banded wiring (each gate
//! reads its own column and a column `STRIDE` away in the previous level)
//! keeps the cut small, so the exchange overhead the schedule pays for
//! that locality is measured and reported per block.
//!
//! Every partition count serves the *same* 8192 samples, so samples/s is
//! directly comparable. The summary writes `BENCH_partition_sweep.json`
//! with ns/sample per partition count, the exchange-overhead breakdown
//! (cut nets, copies, KiB moved per block), and the speedup ratios the
//! CI smoke asserts on (acceptance: ≥ 1.5x at some partitions ≥ 2).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_netlist::eval::{BitSliceEvaluator, SliceFrame, TapeOptions};
use lbnn_netlist::{Lanes, Netlist, Op, PartitionAssignment, PartitionedEngine};
use std::hint::black_box;
use std::time::Instant;

/// Netlist shape: `WIDTH` inputs, `DEPTH` gate levels of `WIDTH` gates.
const WIDTH: usize = 8192;
const DEPTH: usize = 2;
/// Band offset: gate `(l, j)` reads `(l-1, j)` and `(l-1, (j+STRIDE) % WIDTH)`.
const STRIDE: usize = 16;
/// Words per net per block (1024 lanes — the widest slice).
const WORDS: usize = 16;
/// Total samples served per measurement (8 full 1024-lane blocks).
const SAMPLES: usize = 8192;
/// Partition counts swept (1 = the plain single-tape engine).
const PARTS: [usize; 4] = [1, 2, 3, 8];

/// The banded DAG. Contiguous level chunks keep the cut at
/// `STRIDE` nets per partition boundary per level, so partitioning
/// trades ~1 MiB of frame thrash for a few KiB of exchange per block.
fn banded_dag() -> Netlist {
    let mut nl = Netlist::new("partition_sweep_band");
    let ops = [Op::And, Op::Or, Op::Xor, Op::Nand, Op::Nor, Op::Xnor];
    let mut prev: Vec<_> = (0..WIDTH).map(|j| nl.add_input(format!("i{j}"))).collect();
    for l in 0..DEPTH {
        prev = (0..WIDTH)
            .map(|j| {
                let op = ops[(l * 31 + j) % ops.len()];
                nl.add_gate2(op, prev[j], prev[(j + STRIDE) % WIDTH])
            })
            .collect();
    }
    for (k, j) in (0..WIDTH).step_by(32).enumerate() {
        nl.add_output(prev[j], format!("y{k}"));
    }
    nl
}

/// 8192 samples of 8192 input bits, as one column of lanes per input.
fn sample_columns(seed: u64) -> Vec<Lanes> {
    let stride = SAMPLES / 64;
    let mut x = seed | 1;
    (0..WIDTH)
        .map(|_| {
            let words = (0..stride)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                })
                .collect();
            Lanes::from_words(words, SAMPLES)
        })
        .collect()
}

/// The tile width cap a frame of `slots` live slots executes with under
/// `budget` — the same `{16, 8, 4, 2, 1}` ladder the tape compilers use.
fn tile_for(slots: usize, budget: usize) -> usize {
    if budget == 0 {
        return 16;
    }
    [16usize, 8, 4, 2]
        .into_iter()
        .find(|t| slots * t * 8 <= budget)
        .unwrap_or(1)
}

/// One swept configuration: the single tape at `parts == 1`, the
/// partitioned engine otherwise. Both replay through the same kernels.
enum Exec {
    Single(BitSliceEvaluator, SliceFrame),
    Parts(PartitionedEngine, Vec<SliceFrame>),
}

impl Exec {
    fn compile(netlist: &Netlist, parts: usize, options: TapeOptions) -> Exec {
        if parts == 1 {
            let single = BitSliceEvaluator::compile_with(netlist, options);
            let frame = single.frame_with_words(WORDS);
            Exec::Single(single, frame)
        } else {
            let assignment = PartitionAssignment::contiguous(netlist, parts).unwrap();
            let engine = PartitionedEngine::compile_with(netlist, &assignment, options).unwrap();
            let frames = engine.frames_with_words(WORDS);
            Exec::Parts(engine, frames)
        }
    }

    fn run(&mut self, inputs: &[Lanes]) -> Vec<Lanes> {
        match self {
            Exec::Single(e, frame) => e.evaluate_with(inputs, SAMPLES, frame).unwrap(),
            Exec::Parts(e, frames) => e.evaluate_with(inputs, SAMPLES, frames).unwrap(),
        }
    }
}

/// `LBNN_PARTITION_SWEEP_FAST=1` skips the criterion group and shrinks
/// the summary to six timing runs per partition count — CI smoke mode.
/// The JSON artifact is still written, so the speedup stays
/// machine-checkable.
fn fast_mode() -> bool {
    std::env::var("LBNN_PARTITION_SWEEP_FAST").is_ok_and(|v| !matches!(v.as_str(), "" | "0"))
}

fn bench(c: &mut Criterion) {
    let netlist = banded_dag();

    if fast_mode() {
        summary(&netlist, 6);
        return;
    }

    let inputs = sample_columns(0xDAC23);
    let mut g = c.benchmark_group("partition_sweep_banded_dag");
    g.sample_size(10);
    for parts in PARTS {
        let mut exec = Exec::compile(&netlist, parts, TapeOptions::from_env());
        g.bench_function(format!("serve_partitions_{parts}"), |b| {
            b.iter(|| black_box(exec.run(&inputs)))
        });
    }
    g.finish();

    summary(&netlist, 15);
}

/// The machine-readable acceptance measurement: serving time for the
/// same `SAMPLES` samples at every partition count, printed as a table
/// and written to `BENCH_partition_sweep.json` with the exchange
/// breakdown and the partitioned-over-single speedups. Timings are
/// *interleaved* best-of-`runs` — every pass times each partition count
/// once, round-robin — so a noisy stretch on a shared host degrades all
/// counts alike instead of skewing one ratio.
fn summary(netlist: &Netlist, runs: usize) {
    let options = TapeOptions::from_env();
    let budget = options.cache_budget;
    let inputs = sample_columns(0xDAC23);
    let mut setups: Vec<(usize, Exec)> = PARTS
        .iter()
        .map(|&parts| (parts, Exec::compile(netlist, parts, options)))
        .collect();

    // Correctness guard: every partition count serves identical bits.
    let want = setups[0].1.run(&inputs);
    for (parts, exec) in setups.iter_mut().skip(1) {
        assert_eq!(exec.run(&inputs), want, "partitions={parts} diverged");
    }

    let single_stats = match &setups[0].1 {
        Exec::Single(e, _) => e.tape_stats(),
        Exec::Parts(..) => unreachable!("PARTS[0] is the single engine"),
    };
    println!(
        "\npartition sweep summary ({SAMPLES} samples, {} nets, best of {runs}):",
        netlist.len()
    );
    println!(
        "  single-engine frame: {} slots = {} KiB at {WORDS} words \
         (budget {} KiB -> {}-word tiles, {} tape passes/block)",
        single_stats.frame_slots,
        single_stats.frame_bytes(WORDS) / 1024,
        budget / 1024,
        single_stats.tile_words(),
        single_stats.tiles_at(WORDS),
    );

    let mut best = vec![f64::MAX; setups.len()];
    for _ in 0..runs {
        for (i, (_, exec)) in setups.iter_mut().enumerate() {
            let start = Instant::now();
            black_box(exec.run(&inputs));
            best[i] = best[i].min(start.elapsed().as_secs_f64());
        }
    }

    let mut rows = Vec::new();
    for (i, (parts, exec)) in setups.iter().enumerate() {
        let secs = best[i];
        let (cut_nets, cut_copies, max_slots) = match exec {
            Exec::Single(..) => (0, 0, single_stats.frame_slots),
            Exec::Parts(e, _) => {
                let s = e.partition_stats();
                (s.cut_nets, s.cut_copies, s.max_frame_slots)
            }
        };
        let exchange_kib = (cut_copies * WORDS * 8) as f64 / 1024.0;
        let tile = tile_for(max_slots, budget);
        println!(
            "  partitions={parts}: {:>8.1} us -> {:>9.0} samples/s  \
             (max frame {max_slots} slots, {tile}-word tiles; \
             cut {cut_nets} nets -> {cut_copies} copies = {exchange_kib:.1} KiB/block)",
            secs * 1e6,
            SAMPLES as f64 / secs,
        );
        rows.push((
            *parts,
            secs,
            cut_nets,
            cut_copies,
            exchange_kib,
            max_slots,
            tile,
        ));
    }

    let t1 = rows[0].1;
    let ratio = |i: usize| t1 / rows[i].1;
    let (r2, r3, r8) = (ratio(1), ratio(2), ratio(3));
    let best_ratio = r2.max(r3).max(r8);
    println!(
        "  speedup over partitions=1: p2 {r2:.2}x, p3 {r3:.2}x, p8 {r8:.2}x \
         (acceptance: best >= 1.50x, got {best_ratio:.2}x)"
    );

    // Hand-built JSON (no serde in-tree): one object per partition count
    // plus the speedups the CI smoke asserts on.
    let rows_json: Vec<String> = rows
        .iter()
        .map(
            |&(parts, secs, cut_nets, cut_copies, exchange_kib, max_slots, tile)| {
                format!(
                    "    {{\"partitions\": {parts}, \"ns_per_sample\": {:.2}, \
                 \"samples_per_sec\": {:.0}, \"cut_nets\": {cut_nets}, \
                 \"cut_copies\": {cut_copies}, \"exchange_kib_per_block\": {exchange_kib:.2}, \
                 \"max_frame_slots\": {max_slots}, \"tile_words\": {tile}}}",
                    secs * 1e9 / SAMPLES as f64,
                    SAMPLES as f64 / secs,
                )
            },
        )
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"partition_sweep\",\n  \"workload\": \"banded_dag_{WIDTH}x{DEPTH}\",\n  \
         \"nets\": {},\n  \"samples\": {SAMPLES},\n  \"lanes_per_block\": {},\n  \
         \"runs_per_count\": {runs},\n  \"cache_budget_bytes\": {budget},\n  \
         \"single_frame_bytes\": {},\n  \"partitions\": [\n{}\n  ],\n  \
         \"speedup\": {{\"p2_over_p1\": {r2:.3}, \"p3_over_p1\": {r3:.3}, \
         \"p8_over_p1\": {r8:.3}, \"best_over_p1\": {best_ratio:.3}}}\n}}\n",
        netlist.len(),
        WORDS * 64,
        single_stats.frame_bytes(WORDS),
        rows_json.join(",\n")
    );
    // Benches run with the crate as CWD; anchor the artifact at the
    // workspace root so CI and humans find it in one place.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_partition_sweep.json");
    std::fs::write(&path, &json).expect("write partition-sweep JSON artifact");
    println!("  wrote {}", path.canonicalize().unwrap_or(path).display());
}

criterion_group!(benches, bench);
criterion_main!(benches);
