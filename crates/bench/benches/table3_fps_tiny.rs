//! Criterion bench behind **Table III**: compile + cycle-accurate
//! simulation of the NID first-layer FFCL block.

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::table3_workload_options;
use lbnn_core::lpu::LpuConfig;
use lbnn_core::Flow;
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::Lanes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let config = LpuConfig::paper_default();
    let wl = table3_workload_options();
    let model = zoo::nid();
    let workload = layer_workload(&model.layers[0], 0, &wl);

    let mut g = c.benchmark_group("table3_nid_block");
    g.sample_size(10);
    g.bench_function("compile_block", |b| {
        b.iter(|| {
            black_box(
                Flow::builder(&workload.netlist)
                    .config(config)
                    .compile()
                    .unwrap(),
            )
        })
    });
    let flow = Flow::builder(&workload.netlist)
        .config(config)
        .compile()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let inputs: Vec<Lanes> = (0..workload.netlist.inputs().len())
        .map(|_| {
            let bits: Vec<bool> = (0..config.operand_bits())
                .map(|_| rng.random_bool(0.5))
                .collect();
            Lanes::from_bools(&bits)
        })
        .collect();
    g.bench_function("simulate_block_128_lanes", |b| {
        b.iter(|| black_box(flow.simulate(&inputs).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
