//! Criterion bench behind **Fig 8**: merging across the model zoo's
//! small models (JSC-M, NID).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::bench_workload_options;
use lbnn_core::compiler::merge::merge_mfgs;
use lbnn_core::compiler::partition::{partition, PartitionOptions};
use lbnn_models::workload::model_workloads;
use lbnn_models::zoo;
use lbnn_netlist::balance::balance;
use lbnn_netlist::Levels;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let mut g = c.benchmark_group("fig8_merge_models");
    for model in [zoo::jsc_m(), zoo::nid()] {
        let workloads = model_workloads(&model, &wl);
        let prepared: Vec<_> = workloads
            .iter()
            .map(|w| {
                let (balanced, _) = balance(&w.netlist);
                let levels = Levels::compute(&balanced);

                partition(&balanced, &levels, 64, PartitionOptions::default()).unwrap()
            })
            .collect();
        g.bench_function(format!("merge_{}", model.name), |b| {
            b.iter(|| {
                for part in &prepared {
                    black_box(merge_mfgs(part, 64));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
