//! Criterion bench behind the width-generic backend (ISSUE 5): serving
//! throughput of one `table2`-style VGG16 conv block swept across every
//! bit-slice width (64/128/256/512 lanes per kernel pass), on both the
//! pre-packed batch path and the runtime micro-batcher, with the scalar
//! machine as the baseline.
//!
//! Each width serves the *same* 2048 samples, packed into batches of its
//! own lane width, so the samples/s numbers are directly comparable. The
//! summary printed after the benches measures the acceptance ratio:
//! 256-lane serving vs 64-lane serving on the same block (host-dependent
//! — wider slices win until the frame outgrows the cache hierarchy or
//! the memory bus saturates; the summary reports whichever happened).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::{bench_workload_options, serving_batches, synthetic_requests};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::runtime::{RequestHandle, Runtime, RuntimeOptions};
use lbnn_core::{Backend, Engine, Flow};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use std::hint::black_box;
use std::time::Instant;

/// Total samples served per measurement, at every width.
const SAMPLES: usize = 2048;

fn compile_engine(netlist: &lbnn_netlist::Netlist, backend: Backend) -> Engine {
    Flow::builder(netlist)
        .config(LpuConfig::paper_default())
        .backend(backend)
        .compile()
        .unwrap()
        .into_engine()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();
    // L8: a 256->512 conv block, mid-size — the table2 representative.
    let workload = layer_workload(&model.layers[7], 7, &wl);
    let width = workload.netlist.inputs().len();

    let mut g = c.benchmark_group("width_sweep_vgg16_block");
    g.sample_size(10);

    // Scalar baseline: the same samples as 64-lane batches.
    let scalar_batches = serving_batches(width, 64, SAMPLES / 64, 0x51ce);
    let mut scalar = compile_engine(&workload.netlist, Backend::Scalar);
    g.bench_function("serve_scalar_64", |b| {
        b.iter(|| black_box(scalar.run_batches(&scalar_batches).unwrap()))
    });

    // Bit-sliced sweep: each width serves the samples packed at its own
    // lane width (full frames, the steady-state best case).
    for words in [1usize, 2, 4, 8] {
        let lanes = 64 * words;
        let batches = serving_batches(width, lanes, SAMPLES / lanes, 0x51ce);
        let mut engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        g.bench_function(format!("serve_bitsliced_{lanes}"), |b| {
            b.iter(|| black_box(engine.run_batches(&batches).unwrap()))
        });
    }

    // Runtime micro-batcher at 64 and 256 lanes: individual submits,
    // auto flush target = the engine's lane width.
    let request_bits = synthetic_requests(width, SAMPLES / 4, 0x51ce);
    for words in [1usize, 4] {
        let engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        let runtime = Runtime::from_engine(engine, RuntimeOptions::default().workers(0)).unwrap();
        g.bench_function(format!("runtime_submit_{}", 64 * words), |b| {
            b.iter(|| {
                let handles: Vec<RequestHandle> = request_bits
                    .iter()
                    .map(|bits| runtime.submit(bits).unwrap())
                    .collect();
                runtime.flush();
                black_box(
                    handles
                        .into_iter()
                        .map(|h| h.wait().unwrap().len())
                        .sum::<usize>(),
                )
            })
        });
    }
    g.finish();

    // The acceptance comparison, measured directly: per-width serving
    // time for the same SAMPLES samples (mean of 5 runs each).
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..5 {
            f();
        }
        start.elapsed().as_secs_f64() / 5.0
    };
    println!("\nwidth sweep summary ({SAMPLES} samples, VGG16 L8 block):");
    let mut per_width = Vec::new();
    for words in [1usize, 2, 4, 8] {
        let lanes = 64 * words;
        let batches = serving_batches(width, lanes, SAMPLES / lanes, 0x51ce);
        let mut engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        let secs = time(&mut || {
            black_box(engine.run_batches(&batches).unwrap());
        });
        println!(
            "  {lanes:>4} lanes: {:>8.1} us -> {:>10.0} samples/s",
            secs * 1e6,
            SAMPLES as f64 / secs
        );
        per_width.push((lanes, secs));
    }
    let t64 = per_width[0].1;
    let t256 = per_width[2].1;
    println!(
        "  256-lane vs 64-lane: {:.2}x {}",
        t64 / t256,
        if t256 < t64 {
            "(wider slice wins)"
        } else {
            "(host caps out: memory-bound at this width on this machine)"
        }
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
