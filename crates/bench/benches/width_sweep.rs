//! Criterion bench behind the width-generic backend (ISSUE 5): serving
//! throughput of one `table2`-style VGG16 conv block swept across every
//! bit-slice width (64/128/256/512/1024 lanes per kernel pass), on both
//! the pre-packed batch path and the runtime micro-batcher, with the
//! scalar machine as the baseline.
//!
//! Each width serves the *same* 2048 samples, packed into batches of its
//! own lane width, so the samples/s numbers are directly comparable. The
//! summary printed after the benches measures the acceptance ratio:
//! 256-lane serving vs 64-lane serving on the same block (host-dependent
//! — wider slices win until the frame outgrows the cache hierarchy or
//! the memory bus saturates; the summary reports whichever happened).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::{bench_workload_options, serving_batches, synthetic_requests};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::runtime::{RequestHandle, Runtime, RuntimeOptions};
use lbnn_core::{Backend, Engine, Flow};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::Lanes;
use std::hint::black_box;
use std::time::Instant;

/// Total samples served per measurement, at every width.
const SAMPLES: usize = 2048;

fn compile_engine(netlist: &lbnn_netlist::Netlist, backend: Backend) -> Engine {
    Flow::builder(netlist)
        .config(LpuConfig::paper_default())
        .backend(backend)
        .compile()
        .unwrap()
        .into_engine()
        .unwrap()
}

/// `LBNN_WIDTH_SWEEP_FAST=1` skips the criterion group and shrinks the
/// summary to eight timing runs per width — CI smoke mode. The JSON
/// artifact is still written, so the scaling ratios stay machine-checkable.
fn fast_mode() -> bool {
    std::env::var("LBNN_WIDTH_SWEEP_FAST").is_ok_and(|v| !matches!(v.as_str(), "" | "0"))
}

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();
    // L8: a 256->512 conv block, mid-size — the table2 representative.
    let workload = layer_workload(&model.layers[7], 7, &wl);
    let width = workload.netlist.inputs().len();

    if fast_mode() {
        summary(&workload.netlist, width, 8);
        return;
    }

    let mut g = c.benchmark_group("width_sweep_vgg16_block");
    g.sample_size(10);

    // Scalar baseline: the same samples as 64-lane batches.
    let scalar_batches = serving_batches(width, 64, SAMPLES / 64, 0x51ce);
    let mut scalar = compile_engine(&workload.netlist, Backend::Scalar);
    g.bench_function("serve_scalar_64", |b| {
        b.iter(|| black_box(scalar.run_batches(&scalar_batches).unwrap()))
    });

    // Bit-sliced sweep: each width serves the samples packed at its own
    // lane width (full frames, the steady-state best case).
    for words in [1usize, 2, 4, 8, 16] {
        let lanes = 64 * words;
        let batches = serving_batches(width, lanes, SAMPLES / lanes, 0x51ce);
        let mut engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        g.bench_function(format!("serve_bitsliced_{lanes}"), |b| {
            b.iter(|| black_box(engine.run_batches(&batches).unwrap()))
        });
    }

    // Runtime micro-batcher at 64 and 256 lanes: individual submits,
    // auto flush target = the engine's lane width.
    let request_bits = synthetic_requests(width, SAMPLES / 4, 0x51ce);
    for words in [1usize, 4] {
        let engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        let runtime = Runtime::from_engine(engine, RuntimeOptions::default().workers(0)).unwrap();
        g.bench_function(format!("runtime_submit_{}", 64 * words), |b| {
            b.iter(|| {
                let handles: Vec<RequestHandle> = request_bits
                    .iter()
                    .map(|bits| runtime.submit(bits).unwrap())
                    .collect();
                runtime.flush();
                black_box(
                    handles
                        .into_iter()
                        .map(|h| h.wait().unwrap().len())
                        .sum::<usize>(),
                )
            })
        });
    }
    g.finish();

    // The acceptance comparison, measured directly: per-width serving
    // time for the same SAMPLES samples (best of 15 runs each).
    summary(&workload.netlist, width, 15);
}

/// The machine-readable acceptance measurement (ISSUE 8/9): per-width
/// serving time for the same `SAMPLES` samples, printed as a table and
/// written to `BENCH_width_sweep.json` with the width-scaling ratios
/// (how much faster N lanes serve than 64 — linear scaling would be
/// N/64). Each width also reports the marshalling costs around the
/// kernels: `pack` (per-request bool rows → packed lane columns via the
/// 64×64 word transpose) and `unpack` (output columns → rows), the two
/// sides of the runtime micro-batcher's flush. Each number is the best
/// of `runs` timings, and the kernel timings are *interleaved* — every
/// pass times each width once, round-robin — so a noisy stretch on a
/// shared host degrades all widths alike instead of poisoning one
/// width's whole block and skewing the scaling ratio.
fn summary(netlist: &lbnn_netlist::Netlist, width: usize, runs: usize) {
    println!("\nwidth sweep summary ({SAMPLES} samples, VGG16 L8 block, best of {runs}):");
    let rows = synthetic_requests(width, SAMPLES, 0x51ce);
    let mut setups: Vec<(usize, Engine, Vec<Vec<Lanes>>)> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&words| {
            let lanes = 64 * words;
            let batches = serving_batches(width, lanes, SAMPLES / lanes, 0x51ce);
            (
                lanes,
                compile_engine(netlist, Backend::BitSliced { words }),
                batches,
            )
        })
        .collect();
    let mut kernels = [f64::MAX; 5];
    for _ in 0..runs {
        for (i, (_, engine, batches)) in setups.iter_mut().enumerate() {
            let start = Instant::now();
            black_box(engine.run_batches(batches).unwrap());
            kernels[i] = kernels[i].min(start.elapsed().as_secs_f64());
        }
    }
    let time = |f: &mut dyn FnMut()| {
        let mut best = f64::MAX;
        for _ in 0..runs {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let mut per_width = Vec::new();
    for (i, (lanes, engine, batches)) in setups.iter_mut().enumerate() {
        let (lanes, kernel) = (*lanes, kernels[i]);
        let mut packed = Vec::new();
        let pack = time(&mut || {
            for chunk in rows.chunks(lanes) {
                black_box(Lanes::pack_rows_into(chunk, width, &mut packed));
            }
        });
        let outputs: Vec<Vec<Lanes>> = engine
            .run_batches(batches)
            .unwrap()
            .into_iter()
            .map(|r| r.outputs)
            .collect();
        let unpack = time(&mut || {
            for out in &outputs {
                black_box(Lanes::unpack_rows(out));
            }
        });
        println!(
            "  {lanes:>4} lanes: {:>8.1} us kernel ({:>5.1} pack / {:>5.1} unpack) -> {:>10.0} samples/s",
            kernel * 1e6,
            pack * 1e6,
            unpack * 1e6,
            SAMPLES as f64 / kernel
        );
        per_width.push((lanes, kernel, pack, unpack));
    }
    let t64 = per_width[0].1;
    let ratio = |i: usize| t64 / per_width[i].1;
    let (s128, s256, s512, s1024) = (ratio(1), ratio(2), ratio(3), ratio(4));
    println!("  512-lane vs 64-lane: {s512:.2}x (linear would be 8.00x)");
    println!("  1024-lane vs 64-lane: {s1024:.2}x (linear would be 16.00x)");
    println!(
        "  256-lane vs 64-lane: {s256:.2}x {}",
        if s256 > 1.0 {
            "(wider slice wins)"
        } else {
            "(host caps out: memory-bound at this width on this machine)"
        }
    );

    // Hand-built JSON (no serde in-tree): one object per width plus the
    // scaling ratios the CI smoke asserts on. `ns_per_sample` is kernel
    // time (the serving hot loop); pack/unpack are the marshalling
    // breakdown around it.
    let widths_json: Vec<String> = per_width
        .iter()
        .map(|&(lanes, kernel, pack, unpack)| {
            let per = |secs: f64| secs * 1e9 / SAMPLES as f64;
            format!(
                "    {{\"lanes\": {lanes}, \"ns_per_sample\": {:.2}, \
                 \"pack_ns_per_sample\": {:.2}, \"kernel_ns_per_sample\": {:.2}, \
                 \"unpack_ns_per_sample\": {:.2}, \"samples_per_sec\": {:.0}}}",
                per(kernel),
                per(pack),
                per(kernel),
                per(unpack),
                SAMPLES as f64 / kernel
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"width_sweep\",\n  \"workload\": \"vgg16_l8_block\",\n  \
         \"samples\": {SAMPLES},\n  \"runs_per_width\": {runs},\n  \"widths\": [\n{}\n  ],\n  \
         \"scaling\": {{\"s128_over_64\": {s128:.3}, \"s256_over_64\": {s256:.3}, \
         \"s512_over_64\": {s512:.3}, \"s1024_over_64\": {s1024:.3}}}\n}}\n",
        widths_json.join(",\n")
    );
    // Benches run with the crate as CWD; anchor the artifact at the
    // workspace root so CI and humans find it in one place.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_width_sweep.json");
    std::fs::write(&path, &json).expect("write width-sweep JSON artifact");
    println!("  wrote {}", path.canonicalize().unwrap_or(path).display());
}

criterion_group!(benches, bench);
criterion_main!(benches);
