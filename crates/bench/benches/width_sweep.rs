//! Criterion bench behind the width-generic backend (ISSUE 5): serving
//! throughput of one `table2`-style VGG16 conv block swept across every
//! bit-slice width (64/128/256/512 lanes per kernel pass), on both the
//! pre-packed batch path and the runtime micro-batcher, with the scalar
//! machine as the baseline.
//!
//! Each width serves the *same* 2048 samples, packed into batches of its
//! own lane width, so the samples/s numbers are directly comparable. The
//! summary printed after the benches measures the acceptance ratio:
//! 256-lane serving vs 64-lane serving on the same block (host-dependent
//! — wider slices win until the frame outgrows the cache hierarchy or
//! the memory bus saturates; the summary reports whichever happened).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::{bench_workload_options, serving_batches, synthetic_requests};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::runtime::{RequestHandle, Runtime, RuntimeOptions};
use lbnn_core::{Backend, Engine, Flow};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use std::hint::black_box;
use std::time::Instant;

/// Total samples served per measurement, at every width.
const SAMPLES: usize = 2048;

fn compile_engine(netlist: &lbnn_netlist::Netlist, backend: Backend) -> Engine {
    Flow::builder(netlist)
        .config(LpuConfig::paper_default())
        .backend(backend)
        .compile()
        .unwrap()
        .into_engine()
        .unwrap()
}

/// `LBNN_WIDTH_SWEEP_FAST=1` skips the criterion group and shrinks the
/// summary to three timing runs per width — CI smoke mode. The JSON
/// artifact is still written, so the scaling ratios stay machine-checkable.
fn fast_mode() -> bool {
    std::env::var("LBNN_WIDTH_SWEEP_FAST").is_ok_and(|v| !matches!(v.as_str(), "" | "0"))
}

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();
    // L8: a 256->512 conv block, mid-size — the table2 representative.
    let workload = layer_workload(&model.layers[7], 7, &wl);
    let width = workload.netlist.inputs().len();

    if fast_mode() {
        summary(&workload.netlist, width, 3);
        return;
    }

    let mut g = c.benchmark_group("width_sweep_vgg16_block");
    g.sample_size(10);

    // Scalar baseline: the same samples as 64-lane batches.
    let scalar_batches = serving_batches(width, 64, SAMPLES / 64, 0x51ce);
    let mut scalar = compile_engine(&workload.netlist, Backend::Scalar);
    g.bench_function("serve_scalar_64", |b| {
        b.iter(|| black_box(scalar.run_batches(&scalar_batches).unwrap()))
    });

    // Bit-sliced sweep: each width serves the samples packed at its own
    // lane width (full frames, the steady-state best case).
    for words in [1usize, 2, 4, 8] {
        let lanes = 64 * words;
        let batches = serving_batches(width, lanes, SAMPLES / lanes, 0x51ce);
        let mut engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        g.bench_function(format!("serve_bitsliced_{lanes}"), |b| {
            b.iter(|| black_box(engine.run_batches(&batches).unwrap()))
        });
    }

    // Runtime micro-batcher at 64 and 256 lanes: individual submits,
    // auto flush target = the engine's lane width.
    let request_bits = synthetic_requests(width, SAMPLES / 4, 0x51ce);
    for words in [1usize, 4] {
        let engine = compile_engine(&workload.netlist, Backend::BitSliced { words });
        let runtime = Runtime::from_engine(engine, RuntimeOptions::default().workers(0)).unwrap();
        g.bench_function(format!("runtime_submit_{}", 64 * words), |b| {
            b.iter(|| {
                let handles: Vec<RequestHandle> = request_bits
                    .iter()
                    .map(|bits| runtime.submit(bits).unwrap())
                    .collect();
                runtime.flush();
                black_box(
                    handles
                        .into_iter()
                        .map(|h| h.wait().unwrap().len())
                        .sum::<usize>(),
                )
            })
        });
    }
    g.finish();

    // The acceptance comparison, measured directly: per-width serving
    // time for the same SAMPLES samples (best of 15 runs each).
    summary(&workload.netlist, width, 15);
}

/// The machine-readable acceptance measurement (ISSUE 8): per-width
/// serving time for the same `SAMPLES` samples, printed as a table and
/// written to `BENCH_width_sweep.json` with the width-scaling ratios
/// (how much faster N lanes serve than 64 — linear scaling would be
/// N/64). Each width reports its best of `runs` timings — minima are
/// far more robust than means against scheduler noise on shared hosts.
fn summary(netlist: &lbnn_netlist::Netlist, width: usize, runs: usize) {
    let time = |f: &mut dyn FnMut()| {
        let mut best = f64::MAX;
        for _ in 0..runs {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    println!("\nwidth sweep summary ({SAMPLES} samples, VGG16 L8 block, best of {runs}):");
    let mut per_width = Vec::new();
    for words in [1usize, 2, 4, 8] {
        let lanes = 64 * words;
        let batches = serving_batches(width, lanes, SAMPLES / lanes, 0x51ce);
        let mut engine = compile_engine(netlist, Backend::BitSliced { words });
        let secs = time(&mut || {
            black_box(engine.run_batches(&batches).unwrap());
        });
        println!(
            "  {lanes:>4} lanes: {:>8.1} us -> {:>10.0} samples/s",
            secs * 1e6,
            SAMPLES as f64 / secs
        );
        per_width.push((lanes, secs));
    }
    let t64 = per_width[0].1;
    let ratio = |i: usize| t64 / per_width[i].1;
    let (s128, s256, s512) = (ratio(1), ratio(2), ratio(3));
    println!("  512-lane vs 64-lane: {s512:.2}x (linear would be 8.00x)");
    println!(
        "  256-lane vs 64-lane: {s256:.2}x {}",
        if s256 > 1.0 {
            "(wider slice wins)"
        } else {
            "(host caps out: memory-bound at this width on this machine)"
        }
    );

    // Hand-built JSON (no serde in-tree): one object per width plus the
    // scaling ratios the CI smoke asserts on.
    let widths_json: Vec<String> = per_width
        .iter()
        .map(|&(lanes, secs)| {
            let ns = secs * 1e9 / SAMPLES as f64;
            format!(
                "    {{\"lanes\": {lanes}, \"ns_per_sample\": {ns:.2}, \"samples_per_sec\": {:.0}}}",
                SAMPLES as f64 / secs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"width_sweep\",\n  \"workload\": \"vgg16_l8_block\",\n  \
         \"samples\": {SAMPLES},\n  \"runs_per_width\": {runs},\n  \"widths\": [\n{}\n  ],\n  \
         \"scaling\": {{\"s128_over_64\": {s128:.3}, \"s256_over_64\": {s256:.3}, \
         \"s512_over_64\": {s512:.3}}}\n}}\n",
        widths_json.join(",\n")
    );
    // Benches run with the crate as CWD; anchor the artifact at the
    // workspace root so CI and humans find it in one place.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_width_sweep.json");
    std::fs::write(&path, &json).expect("write width-sweep JSON artifact");
    println!("  wrote {}", path.canonicalize().unwrap_or(path).display());
}

criterion_group!(benches, bench);
criterion_main!(benches);
