//! Ablation benches for the design choices DESIGN.md calls out:
//! stop-rule variants (paper pseudocode `>= m` vs conditions `> m`) and
//! shared vs duplicated children.

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::bench_workload_options;
use lbnn_core::compiler::partition::{partition, PartitionOptions, StopRule};
use lbnn_core::flow::{Flow, FlowOptions};
use lbnn_core::lpu::multi::{Assembly, MultiLpu};
use lbnn_core::lpu::{hetero, LpuConfig};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::balance::balance;
use lbnn_netlist::Levels;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::lenet5();
    let workload = layer_workload(&model.layers[2], 2, &wl);
    let (balanced, _) = balance(&workload.netlist);
    let levels = Levels::compute(&balanced);
    let m = 64;

    // Report the partition sizes once (ablation data).
    for (label, opts) in [
        ("GtM/shared", PartitionOptions::default()),
        (
            "GeqM/shared",
            PartitionOptions {
                stop_rule: StopRule::GeqM,
                ..Default::default()
            },
        ),
        (
            "GtM/duplicated",
            PartitionOptions {
                duplicate_children: true,
                ..Default::default()
            },
        ),
    ] {
        let part = partition(&balanced, &levels, m, opts).unwrap();
        println!(
            "ablation {label}: {} MFGs, {} executed nodes",
            part.mfg_count(),
            part.executed_nodes()
        );
    }

    // Future-work ablations: heterogeneous LPV sizing and multi-LPU
    // assemblies on the same block.
    let config = LpuConfig::new(m, 8);
    let flow = Flow::builder(&balanced).config(config).compile().unwrap();
    let proposal = hetero::propose(&flow.program, &config);
    println!(
        "ablation hetero: per-LPV LPEs {:?}, LUT saving {:.1}%, FF saving {:.1}%",
        proposal.lpes_per_lpv,
        100.0 * proposal.lut_saving,
        100.0 * proposal.ff_saving
    );
    for k in [1usize, 2, 4] {
        let series = MultiLpu::new(LpuConfig::new(m, 4), Assembly::Series(k))
            .evaluate(&balanced, &FlowOptions::default())
            .unwrap();
        println!(
            "ablation series x{k}: latency {} clk, II {:.0} clk",
            series.latency_clk, series.ii_clk
        );
    }

    let mut g = c.benchmark_group("ablation_stop_rule");
    g.bench_function("partition_gtm", |b| {
        b.iter(|| {
            black_box(partition(
                &balanced,
                &levels,
                m,
                PartitionOptions::default(),
            ))
        })
    });
    g.bench_function("partition_geqm", |b| {
        b.iter(|| {
            black_box(partition(
                &balanced,
                &levels,
                m,
                PartitionOptions {
                    stop_rule: StopRule::GeqM,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
