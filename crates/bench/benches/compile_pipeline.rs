//! Times the compiler's pipeline passes individually — partition, merge,
//! schedule, codegen — plus the full builder compile, so compile-time
//! regressions are visible per stage alongside the serve benches.
//!
//! The isolated numbers here cross-check the `CompileReport` every
//! `Flow` now carries (printed at the end for reference).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::bench_workload_options;
use lbnn_core::compiler::codegen::generate;
use lbnn_core::compiler::merge::merge_mfgs;
use lbnn_core::compiler::partition::{partition, PartitionOptions};
use lbnn_core::compiler::schedule::schedule_spacetime;
use lbnn_core::flow::Flow;
use lbnn_core::lpu::LpuConfig;
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::balance::balance;
use lbnn_netlist::Levels;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::lenet5();
    let workload = layer_workload(&model.layers[2], 2, &wl);
    let (balanced, _) = balance(&workload.netlist);
    let levels = Levels::compute(&balanced);
    let config = LpuConfig::new(64, 8);
    let m = config.m;

    // Fixed intermediates so each pass is measured in isolation, with the
    // same shared-children-then-duplicate fallback the flow applies.
    let raw = partition(&balanced, &levels, m, PartitionOptions::default()).unwrap();
    let (part, schedule) = {
        let (merged, _) = merge_mfgs(&raw, m);
        match schedule_spacetime(&merged, config.n, m) {
            Ok(s) => (merged, s),
            Err(_) => {
                let opts = PartitionOptions {
                    duplicate_children: true,
                    ..Default::default()
                };
                let raw = partition(&balanced, &levels, m, opts).unwrap();
                let (merged, _) = merge_mfgs(&raw, m);
                let s = schedule_spacetime(&merged, config.n, m).unwrap();
                (merged, s)
            }
        }
    };

    let mut g = c.benchmark_group("compile_pipeline");
    g.bench_function("partition", |b| {
        b.iter(|| {
            black_box(partition(
                &balanced,
                &levels,
                m,
                PartitionOptions::default(),
            ))
        })
    });
    g.bench_function("merge", |b| b.iter(|| black_box(merge_mfgs(&raw, m))));
    g.bench_function("schedule", |b| {
        b.iter(|| black_box(schedule_spacetime(&part, config.n, m)))
    });
    g.bench_function("codegen", |b| {
        b.iter(|| black_box(generate(&balanced, &levels, &part, &schedule, &config)))
    });
    g.bench_function("full_compile", |b| {
        b.iter(|| {
            black_box(
                Flow::builder(&workload.netlist)
                    .config(config)
                    .compile()
                    .unwrap(),
            )
        })
    });
    g.finish();

    // One pass-pipeline report for the same block, as the flow records it.
    let flow = Flow::builder(&workload.netlist)
        .config(config)
        .compile()
        .unwrap();
    println!("\nCompileReport for {} (LeNet-5 L3 block):", workload.name);
    for line in flow.report.to_string().lines() {
        println!("  {line}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
