//! Criterion bench behind **Table II**: end-to-end compile time of one
//! VGG16 conv-layer FFCL block on the paper's LPU configuration, plus the
//! batch-serving throughput comparison of the two execution backends
//! (cycle-accurate scalar machine vs bit-sliced 64-lane kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::{bench_workload_options, serving_batches};
use lbnn_core::lpu::LpuConfig;
use lbnn_core::{Backend, Flow};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let config = LpuConfig::paper_default();
    let wl = bench_workload_options();
    let model = zoo::vgg16_layers_2_13();
    // L8: a 256->512 conv block, mid-size.
    let workload = layer_workload(&model.layers[7], 7, &wl);

    let mut g = c.benchmark_group("table2_vgg16_block");
    g.sample_size(10);
    g.bench_function("compile_block", |b| {
        b.iter(|| {
            black_box(
                Flow::builder(&workload.netlist)
                    .config(config)
                    .compile()
                    .unwrap(),
            )
        })
    });
    let flow = Flow::builder(&workload.netlist)
        .config(config)
        .compile()
        .unwrap();
    g.bench_function("verify_block", |b| {
        b.iter(|| black_box(flow.verify_against_netlist(1).unwrap()))
    });

    // Batch serving throughput, backend vs backend: 16 batches of 2m
    // lanes through a resident engine (the steady-state serving loop).
    let batches = serving_batches(flow.program.num_inputs, config.operand_bits(), 16, 0x7ab1e2);
    for backend in [Backend::Scalar, Backend::BitSliced64] {
        let engine_flow = Flow::builder(&workload.netlist)
            .config(config)
            .backend(backend)
            .compile()
            .unwrap();
        let mut engine = engine_flow.into_engine().unwrap();
        g.bench_function(format!("serve_batches_{backend}"), |b| {
            b.iter(|| black_box(engine.run_batches(&batches).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
