//! Criterion bench behind **Table I**: cost of the analytical FPGA
//! resource model across LPU configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_core::lpu::resource::estimate;
use lbnn_core::lpu::LpuConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_resources");
    for (m, n) in [(64usize, 8usize), (64, 16), (128, 16)] {
        let config = LpuConfig::new(m, n);
        g.bench_function(format!("estimate_m{m}_n{n}"), |b| {
            b.iter(|| black_box(estimate(black_box(&config))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
