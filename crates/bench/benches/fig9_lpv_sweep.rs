//! Criterion bench behind **Fig 9**: the space-time scheduler across LPV
//! counts on a LeNet-5 block.

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::bench_workload_options;
use lbnn_core::compiler::merge::merge_mfgs;
use lbnn_core::compiler::partition::{partition, PartitionOptions};
use lbnn_core::compiler::schedule::schedule_spacetime;
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::balance::balance;
use lbnn_netlist::Levels;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let wl = bench_workload_options();
    let model = zoo::lenet5();
    let workload = layer_workload(&model.layers[2], 2, &wl);
    let (balanced, _) = balance(&workload.netlist);
    let levels = Levels::compute(&balanced);
    let m = 64;
    let raw = partition(&balanced, &levels, m, PartitionOptions::default()).unwrap();
    let (part, _) = merge_mfgs(&raw, m);

    let mut g = c.benchmark_group("fig9_schedule");
    for n in [2usize, 4, 16] {
        g.bench_function(format!("schedule_n{n}"), |b| {
            b.iter(|| black_box(schedule_spacetime(&part, n, m).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
