//! Criterion bench behind the serving-runtime acceptance number:
//! micro-batched `Runtime::submit` serving vs pre-packed
//! `Engine::run_batches` vs per-request serving, on a representative
//! JSC-M block.
//!
//! The acceptance bar (ISSUE 4): micro-batched BitSliced64 serving beats
//! per-request scalar serving by ≥ 4×. The summary printed after the
//! benches measures exactly that ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use lbnn_bench::{synthetic_requests, table3_workload_options};
use lbnn_core::runtime::{RequestHandle, Runtime, RuntimeOptions};
use lbnn_core::{Backend, EngineScratch, Flow, LpuConfig};
use lbnn_models::workload::layer_workload;
use lbnn_models::zoo;
use lbnn_netlist::Lanes;
use std::hint::black_box;
use std::time::Instant;

const REQUESTS: usize = 256;

fn compile(netlist: &lbnn_netlist::Netlist, config: LpuConfig, backend: Backend) -> Flow {
    Flow::builder(netlist)
        .config(config)
        .backend(backend)
        .compile()
        .unwrap()
}

/// Serves every request as its own 1-lane batch — the no-batching
/// baseline a naive per-request server would run. The engine is built
/// outside the timed region (like the runtime), so only serving is
/// measured.
fn serve_per_request(
    engine: &lbnn_core::Engine,
    scratch: &mut EngineScratch,
    requests: &[Vec<Lanes>],
) -> usize {
    let mut outputs = 0usize;
    for request in requests {
        outputs += engine
            .run_batch_with(scratch, request)
            .unwrap()
            .outputs
            .len();
    }
    outputs
}

/// Serves all requests through the Runtime: individual submits,
/// dynamically packed into 64-lane words by the micro-batcher.
fn serve_micro_batched(runtime: &Runtime, requests: &[Vec<bool>]) -> usize {
    let handles: Vec<RequestHandle> = requests
        .iter()
        .map(|bits| runtime.submit(bits).unwrap())
        .collect();
    runtime.flush();
    handles.into_iter().map(|h| h.wait().unwrap().len()).sum()
}

fn bench(c: &mut Criterion) {
    let config = LpuConfig::new(16, 4);
    let wl = table3_workload_options();
    let model = zoo::jsc_m();
    let workload = layer_workload(&model.layers[0], 0, &wl);
    let width = workload.netlist.inputs().len();

    let request_bits = synthetic_requests(width, REQUESTS, 0xbe9c);
    // The same requests as 1-lane batches (per-request serving)...
    let single_lane: Vec<Vec<Lanes>> = request_bits
        .iter()
        .map(|bits| bits.iter().map(|&b| Lanes::from_bools(&[b])).collect())
        .collect();
    // ...and pre-packed into full 64-lane batches (the best case the old
    // API required callers to arrange by hand).
    let prepacked: Vec<Vec<Lanes>> = request_bits
        .chunks(64)
        .map(|chunk| Lanes::pack_rows(chunk, width))
        .collect();

    let scalar = compile(&workload.netlist, config, Backend::Scalar);
    let sliced = compile(&workload.netlist, config, Backend::BitSliced64);
    let scalar_engine = scalar.engine().unwrap();
    let sliced_engine = sliced.engine().unwrap();
    let mut scalar_scratch = EngineScratch::new();
    let mut sliced_scratch = EngineScratch::new();
    let runtime = Runtime::from_engine(
        sliced.engine().unwrap(),
        RuntimeOptions::default().workers(0),
    )
    .unwrap();

    let mut g = c.benchmark_group("runtime_serve");
    g.sample_size(10);
    g.bench_function("per_request_scalar", |b| {
        b.iter(|| {
            black_box(serve_per_request(
                &scalar_engine,
                &mut scalar_scratch,
                &single_lane,
            ))
        })
    });
    g.bench_function("per_request_bitsliced64", |b| {
        b.iter(|| {
            black_box(serve_per_request(
                &sliced_engine,
                &mut sliced_scratch,
                &single_lane,
            ))
        })
    });
    g.bench_function("prepacked_run_batches_bitsliced64", |b| {
        let mut engine = sliced.engine().unwrap();
        b.iter(|| black_box(engine.run_batches(&prepacked).unwrap()))
    });
    g.bench_function("micro_batched_submit_bitsliced64", |b| {
        b.iter(|| black_box(serve_micro_batched(&runtime, &request_bits)))
    });
    g.finish();

    // The acceptance ratio, measured directly (mean of 5 runs each).
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..5 {
            f();
        }
        start.elapsed().as_secs_f64() / 5.0
    };
    let per_request_scalar = time(&mut || {
        black_box(serve_per_request(
            &scalar_engine,
            &mut scalar_scratch,
            &single_lane,
        ));
    });
    let micro_batched = time(&mut || {
        black_box(serve_micro_batched(&runtime, &request_bits));
    });
    println!(
        "\nsummary: {REQUESTS} requests — per-request scalar {:.2} ms, micro-batched \
         bitsliced64 {:.2} ms -> {:.1}x speedup (acceptance bar: >= 4x)",
        per_request_scalar * 1e3,
        micro_batched * 1e3,
        per_request_scalar / micro_batched
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
