//! Property-based tests for BNN → FFCL extraction.

use lbnn_nullanet::bnn::BinaryDense;
use lbnn_nullanet::extract::{layer_netlist, ExtractMode};
use lbnn_nullanet::popcount::neuron_popcount_netlist;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The popcount netlist computes the neuron exactly for any weights,
    /// threshold and input.
    #[test]
    fn popcount_neuron_exact(
        weights in proptest::collection::vec(proptest::bool::ANY, 1..24),
        threshold in -2i32..26,
        seed in 0u64..10_000,
    ) {
        let nl = neuron_popcount_netlist(&weights, threshold, "n");
        let k = weights.len();
        for trial in 0..32u64 {
            let h = seed.wrapping_add(trial).wrapping_mul(0x2545F4914F6CDD1D);
            let x: Vec<bool> = (0..k).map(|i| h >> (i % 60) & 1 != 0).collect();
            let agree = weights.iter().zip(&x).filter(|&(w, b)| w == b).count();
            prop_assert_eq!(nl.eval_bools(&x)[0], agree as i32 >= threshold);
        }
    }

    /// Exact extraction equals the layer's forward pass on all inputs.
    #[test]
    fn exact_extraction_equals_forward(
        seed in 0u64..10_000,
        in_dim in 1usize..9,
        out_dim in 1usize..5,
    ) {
        let layer = BinaryDense::random(seed, in_dim, out_dim);
        let nl = layer_netlist(&layer, ExtractMode::Exact, None).unwrap();
        for m in 0..(1u64 << in_dim) {
            let x: Vec<bool> = (0..in_dim).map(|i| m >> i & 1 != 0).collect();
            prop_assert_eq!(nl.eval_bools(&x), layer.forward(&x));
        }
    }

    /// Sampled (ISF) extraction is always faithful on the observed care
    /// set, whatever the samples.
    #[test]
    fn sampled_extraction_faithful_on_care_set(
        seed in 0u64..10_000,
        in_dim in 4usize..20,
        out_dim in 1usize..4,
        sample_count in 1usize..40,
    ) {
        let layer = BinaryDense::random(seed, in_dim, out_dim);
        let samples: Vec<Vec<bool>> = (0..sample_count)
            .map(|s| {
                let h = seed.wrapping_add(s as u64).wrapping_mul(0x9E3779B97F4A7C15);
                (0..in_dim).map(|i| h >> (i % 60) & 1 != 0).collect()
            })
            .collect();
        let nl = layer_netlist(&layer, ExtractMode::Sampled, Some(&samples)).unwrap();
        for s in &samples {
            prop_assert_eq!(nl.eval_bools(s), layer.forward(s));
        }
    }
}
