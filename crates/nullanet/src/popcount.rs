//! Exact structural netlists for XNOR-popcount-threshold neurons.
//!
//! For neurons whose fan-in is too large to enumerate (VGG16 conv filters
//! see thousands of inputs), the neuron function is emitted *structurally*:
//! an XNOR stage (a `BUF`/`NOT` per input, since weights are constants), a
//! popcount adder tree built from half/full adders, and a
//! compare-to-constant stage. The result is exact at any fan-in.

use lbnn_netlist::{Netlist, NodeId, Op};

/// Emits `sum = a + b` over little-endian bit vectors using a ripple-carry
/// adder; returns the result bits (length `max(len a, len b) + 1`, top bit
/// possibly constant-folded away by later synthesis).
pub fn ripple_add(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let width = a.len().max(b.len());
    let mut sum = Vec::with_capacity(width + 1);
    let mut carry: Option<NodeId> = None;
    for i in 0..width {
        match (a.get(i), b.get(i)) {
            (Some(&x), Some(&y)) => {
                let x_xor_y = nl.add_gate2(Op::Xor, x, y);
                let x_and_y = nl.add_gate2(Op::And, x, y);
                match carry {
                    None => {
                        sum.push(x_xor_y);
                        carry = Some(x_and_y);
                    }
                    Some(c) => {
                        let s = nl.add_gate2(Op::Xor, x_xor_y, c);
                        let t = nl.add_gate2(Op::And, x_xor_y, c);
                        let cout = nl.add_gate2(Op::Or, x_and_y, t);
                        sum.push(s);
                        carry = Some(cout);
                    }
                }
            }
            (Some(&x), None) | (None, Some(&x)) => match carry {
                None => sum.push(x),
                Some(c) => {
                    let s = nl.add_gate2(Op::Xor, x, c);
                    let cout = nl.add_gate2(Op::And, x, c);
                    sum.push(s);
                    carry = Some(cout);
                }
            },
            (None, None) => unreachable!("loop bounded by max width"),
        }
    }
    if let Some(c) = carry {
        sum.push(c);
    }
    sum
}

/// Builds a popcount adder tree over `bits`, returning the little-endian
/// binary count.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn popcount_tree(nl: &mut Netlist, bits: &[NodeId]) -> Vec<NodeId> {
    assert!(!bits.is_empty(), "popcount of zero bits");
    if bits.len() == 1 {
        return vec![bits[0]];
    }
    let mid = bits.len() / 2;
    let left = popcount_tree(nl, &bits[..mid]);
    let right = popcount_tree(nl, &bits[mid..]);
    ripple_add(nl, &left, &right)
}

/// Emits `value >= t` for a little-endian binary `value` and constant `t`.
///
/// Walks from the most significant bit keeping an "already greater" and an
/// "still equal" running pair.
pub fn geq_const(nl: &mut Netlist, value: &[NodeId], t: u64) -> NodeId {
    let width = value.len();
    if t == 0 {
        return nl.add_const(true);
    }
    if t >= (1u64 << width) {
        return nl.add_const(false);
    }
    // greater: value's seen prefix exceeds t's; equal: prefixes match.
    let mut greater: Option<NodeId> = None;
    let mut equal: Option<NodeId> = None; // None = "so far trivially equal"
    for i in (0..width).rev() {
        let bit = value[i];
        let t_bit = t >> i & 1 != 0;
        if t_bit {
            // value bit must be 1 to stay equal; cannot become greater here.
            equal = Some(match equal {
                None => bit,
                Some(e) => nl.add_gate2(Op::And, e, bit),
            });
        } else {
            // value bit 1 while still equal => greater.
            let e_and_bit = match equal {
                None => bit,
                Some(e) => nl.add_gate2(Op::And, e, bit),
            };
            greater = Some(match greater {
                None => e_and_bit,
                Some(g) => nl.add_gate2(Op::Or, g, e_and_bit),
            });
            if equal.is_some() {
                // staying equal requires bit == 0
                let not_bit = nl.add_gate1(Op::Not, bit);
                equal = Some(nl.add_gate2(Op::And, equal.expect("checked"), not_bit));
            } else {
                equal = Some(nl.add_gate1(Op::Not, bit));
            }
        }
    }
    match (greater, equal) {
        (Some(g), Some(e)) => nl.add_gate2(Op::Or, g, e),
        (Some(g), None) => g,
        (None, Some(e)) => e,
        (None, None) => nl.add_const(true),
    }
}

/// Emits the exact neuron `popcount(xnor(w, x)) >= threshold` as a netlist
/// with inputs `x0..x{k-1}` and output `y`.
///
/// # Panics
///
/// Panics if `weights` is empty.
pub fn neuron_popcount_netlist(weights: &[bool], threshold: i32, name: &str) -> Netlist {
    assert!(!weights.is_empty(), "neuron needs at least one input");
    let mut nl = Netlist::new(name);
    let inputs: Vec<NodeId> = (0..weights.len())
        .map(|i| nl.add_input(format!("x{i}")))
        .collect();
    // XNOR with a constant weight: BUF for +1, NOT for −1.
    let agree: Vec<NodeId> = inputs
        .iter()
        .zip(weights)
        .map(|(&x, &w)| {
            if w {
                nl.add_gate1(Op::Buf, x)
            } else {
                nl.add_gate1(Op::Not, x)
            }
        })
        .collect();
    let count = popcount_tree(&mut nl, &agree);
    let y = if threshold <= 0 {
        nl.add_const(true)
    } else {
        geq_const(&mut nl, &count, threshold as u64)
    };
    nl.add_output(y, "y");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn popcount_exhaustive_small() {
        for k in 1..=8usize {
            let mut nl = Netlist::new("pc");
            let inputs: Vec<NodeId> = (0..k).map(|i| nl.add_input(format!("x{i}"))).collect();
            let count = popcount_tree(&mut nl, &inputs);
            for (b, &bit) in count.iter().enumerate() {
                nl.add_output(bit, format!("c{b}"));
            }
            for m in 0..(1u64 << k) {
                let x: Vec<bool> = (0..k).map(|i| m >> i & 1 != 0).collect();
                let out = nl.eval_bools(&x);
                let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(got, m.count_ones() as u64, "k={k} m={m:#b}");
            }
        }
    }

    #[test]
    fn geq_const_exhaustive() {
        for width in 1..=5usize {
            for t in 0..(1u64 << width) + 2 {
                let mut nl = Netlist::new("ge");
                let value: Vec<NodeId> =
                    (0..width).map(|i| nl.add_input(format!("v{i}"))).collect();
                let y = geq_const(&mut nl, &value, t);
                nl.add_output(y, "y");
                for v in 0..(1u64 << width) {
                    let x: Vec<bool> = (0..width).map(|i| v >> i & 1 != 0).collect();
                    assert_eq!(nl.eval_bools(&x)[0], v >= t, "w={width} t={t} v={v}");
                }
            }
        }
    }

    #[test]
    fn neuron_matches_direct_computation() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in [3usize, 7, 12, 20] {
            let weights: Vec<bool> = (0..k).map(|_| rng.random_bool(0.5)).collect();
            let t = (k / 2) as i32;
            let nl = neuron_popcount_netlist(&weights, t, "neuron");
            for _ in 0..200 {
                let x: Vec<bool> = (0..k).map(|_| rng.random_bool(0.5)).collect();
                let agree = weights.iter().zip(&x).filter(|&(w, x)| w == x).count();
                assert_eq!(nl.eval_bools(&x)[0], agree as i32 >= t);
            }
        }
    }

    #[test]
    fn degenerate_thresholds() {
        let weights = vec![true; 4];
        let always = neuron_popcount_netlist(&weights, 0, "a");
        let never = neuron_popcount_netlist(&weights, 5, "n");
        for m in 0..16u64 {
            let x: Vec<bool> = (0..4).map(|i| m >> i & 1 != 0).collect();
            assert!(always.eval_bools(&x)[0]);
            assert!(!never.eval_bools(&x)[0]);
        }
    }

    #[test]
    fn ripple_add_random() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let wa = rng.random_range(1..6);
            let wb = rng.random_range(1..6);
            let mut nl = Netlist::new("add");
            let a: Vec<NodeId> = (0..wa).map(|i| nl.add_input(format!("a{i}"))).collect();
            let b: Vec<NodeId> = (0..wb).map(|i| nl.add_input(format!("b{i}"))).collect();
            let s = ripple_add(&mut nl, &a, &b);
            for (i, &bit) in s.iter().enumerate() {
                nl.add_output(bit, format!("s{i}"));
            }
            for _ in 0..50 {
                let va = rng.random_range(0..(1u64 << wa));
                let vb = rng.random_range(0..(1u64 << wb));
                let mut x: Vec<bool> = (0..wa).map(|i| va >> i & 1 != 0).collect();
                x.extend((0..wb).map(|i| vb >> i & 1 != 0));
                let out = nl.eval_bools(&x);
                let got: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
                assert_eq!(got, va + vb);
            }
        }
    }
}
