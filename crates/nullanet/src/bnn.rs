//! Binarized neural networks with XNOR-popcount-threshold semantics.
//!
//! Bits encode the bipolar values of BNN literature: `true = +1`,
//! `false = −1`. A binarized neuron with weights `w`, input `x` (both
//! bipolar) and sign activation computes
//! `sign(Σᵢ wᵢ·xᵢ + bias) = [popcount(xnor(w, x)) ≥ t]`
//! where the agreement count threshold is `t = ⌈(k − bias)/2⌉` for fan-in
//! `k` — the form the FFCL extraction works from.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fully-connected binarized layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryDense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` bipolar weights.
    weights: Vec<bool>,
    /// Agreement-count thresholds, one per output neuron.
    thresholds: Vec<i32>,
}

impl BinaryDense {
    /// Creates a layer from explicit weights (row-major `out × in`) and
    /// agreement thresholds.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or zero.
    pub fn new(in_dim: usize, out_dim: usize, weights: Vec<bool>, thresholds: Vec<i32>) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        assert_eq!(weights.len(), in_dim * out_dim, "weight count mismatch");
        assert_eq!(thresholds.len(), out_dim, "threshold count mismatch");
        BinaryDense {
            in_dim,
            out_dim,
            weights,
            thresholds,
        }
    }

    /// A random layer with thresholds at the unbiased midpoint
    /// (`⌈k/2⌉`), deterministic in the seed.
    pub fn random(seed: u64, in_dim: usize, out_dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.random_bool(0.5))
            .collect();
        let thresholds = vec![in_dim.div_ceil(2) as i32; out_dim];
        BinaryDense::new(in_dim, out_dim, weights, thresholds)
    }

    /// Input dimension (neuron fan-in).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (neuron count).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight row of neuron `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn weights_of(&self, j: usize) -> &[bool] {
        &self.weights[j * self.in_dim..(j + 1) * self.in_dim]
    }

    /// The agreement threshold of neuron `j`.
    pub fn threshold_of(&self, j: usize) -> i32 {
        self.thresholds[j]
    }

    /// Agreement count of neuron `j` on input `x`
    /// (`popcount(xnor(w, x))`).
    pub fn agreement(&self, j: usize, x: &[bool]) -> usize {
        assert_eq!(x.len(), self.in_dim, "input width mismatch");
        self.weights_of(j)
            .iter()
            .zip(x)
            .filter(|&(w, x)| w == x)
            .count()
    }

    /// Forward pass: `out[j] = agreement(j, x) ≥ threshold(j)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[bool]) -> Vec<bool> {
        (0..self.out_dim)
            .map(|j| self.agreement(j, x) as i32 >= self.thresholds[j])
            .collect()
    }
}

/// A multi-layer binarized network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bnn {
    layers: Vec<BinaryDense>,
}

impl Bnn {
    /// Builds a network from layers with matching dimensions.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions disagree or the list is
    /// empty.
    pub fn new(layers: Vec<BinaryDense>) -> Self {
        assert!(!layers.is_empty(), "a network has at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "layer dimensions must chain"
            );
        }
        Bnn { layers }
    }

    /// A random network over the given dimension chain
    /// (`dims[0]` inputs, …, `dims.last()` outputs).
    pub fn random(seed: u64, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, d)| BinaryDense::random(seed.wrapping_add(i as u64), d[0], d[1]))
            .collect();
        Bnn::new(layers)
    }

    /// The layers.
    pub fn layers(&self) -> &[BinaryDense] {
        &self.layers
    }

    /// Full forward pass.
    pub fn forward(&self, x: &[bool]) -> Vec<bool> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Classification: hidden layers binarize, the output layer scores by
    /// agreement margin (`popcount(xnor) − threshold`) and the argmax wins
    /// — the standard BNN head (the binarized output bits alone cannot
    /// break ties).
    pub fn classify(&self, x: &[bool]) -> usize {
        let mut cur = x.to_vec();
        let (hidden, last) = self.layers.split_at(self.layers.len() - 1);
        for layer in hidden {
            cur = layer.forward(&cur);
        }
        let out = &last[0];
        if out.out_dim() == 1 {
            // Single-neuron binary head: the sign is the class.
            return usize::from(out.forward(&cur)[0]);
        }
        (0..out.out_dim())
            .map(|j| out.agreement(j, &cur) as i32 - out.threshold_of(j))
            .enumerate()
            .max_by_key(|&(_, score)| score)
            .map(|(j, _)| j)
            .expect("at least one output neuron")
    }

    /// Accuracy over a labelled dataset.
    pub fn accuracy(&self, xs: &[Vec<bool>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|&(x, &y)| self.classify(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_threshold_semantics() {
        // 4 inputs, weights all +1, threshold 3: out = (popcount(x) >= 3).
        let layer = BinaryDense::new(4, 1, vec![true; 4], vec![3]);
        assert!(!layer.forward(&[true, true, false, false])[0]);
        assert!(layer.forward(&[true, true, true, false])[0]);
        assert!(layer.forward(&[true, true, true, true])[0]);
    }

    #[test]
    fn xnor_weight_flip() {
        // A false weight agrees with a false input.
        let layer = BinaryDense::new(2, 1, vec![false, true], vec![2]);
        assert!(layer.forward(&[false, true])[0]);
        assert!(!layer.forward(&[true, true])[0]);
    }

    #[test]
    fn network_chaining_and_determinism() {
        let a = Bnn::random(5, &[8, 6, 2]);
        let b = Bnn::random(5, &[8, 6, 2]);
        assert_eq!(a, b);
        let x: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        assert_eq!(a.forward(&x).len(), 2);
    }

    #[test]
    fn accuracy_counts() {
        let layer = BinaryDense::new(2, 1, vec![true, true], vec![2]);
        let net = Bnn::new(vec![layer]);
        let xs = vec![vec![true, true], vec![false, false]];
        let ys = vec![1usize, 0];
        assert_eq!(net.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn dimension_mismatch_panics() {
        let _ = Bnn::new(vec![
            BinaryDense::random(0, 4, 3),
            BinaryDense::random(1, 5, 2),
        ]);
    }
}
