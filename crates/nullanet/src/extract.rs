//! FFCL extraction: binarized neurons → minimized combinational netlists.
//!
//! Three extraction paths, matching NullaNet's methodology:
//!
//! * [`ExtractMode::Exact`] — enumerate the neuron's full truth table
//!   (fan-in ≤ 16), minimize with Espresso, factor into two-input gates.
//!   Exact and usually the smallest logic, but exponential in fan-in.
//! * [`ExtractMode::Sampled`] — treat the neuron as an *incompletely
//!   specified function*: only input patterns observed in the training
//!   data are care-set minterms; everything else is a don't-care.
//!   NullaNet's key insight — this shrinks wide neurons dramatically at a
//!   small accuracy cost (the paper quotes < 4 % drop).
//! * [`ExtractMode::Popcount`] — exact structural XNOR/popcount/comparator
//!   netlist, any fan-in (see [`crate::popcount`]).

use lbnn_logic_synth::cube::{Cover, Cube};
use lbnn_logic_synth::espresso::{minimize, minimize_samples};
use lbnn_logic_synth::factor::covers_to_netlist;
use lbnn_logic_synth::truth::TruthTable;
use lbnn_netlist::Netlist;

use crate::bnn::BinaryDense;
use crate::popcount::neuron_popcount_netlist;

/// How a neuron's Boolean function is realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractMode {
    /// Full truth-table enumeration + two-level minimization (fan-in ≤ 16).
    Exact,
    /// Incompletely-specified-function minimization from observed samples.
    Sampled,
    /// Structural XNOR-popcount-threshold netlist (any fan-in).
    Popcount,
}

/// Maximum fan-in accepted by [`ExtractMode::Exact`].
pub const MAX_EXACT_FANIN: usize = 16;

/// Errors produced during extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// Exact mode with too many inputs.
    FaninTooLarge {
        /// Requested fan-in.
        fanin: usize,
    },
    /// Sampled mode without samples.
    NoSamples,
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::FaninTooLarge { fanin } => write!(
                f,
                "exact extraction limited to {MAX_EXACT_FANIN} inputs, got {fanin}"
            ),
            ExtractError::NoSamples => write!(f, "sampled extraction requires samples"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// The minimized cover of one neuron under the chosen mode (not available
/// for [`ExtractMode::Popcount`], which is structural).
fn neuron_cover(
    weights: &[bool],
    threshold: i32,
    mode: ExtractMode,
    samples: Option<&[Vec<bool>]>,
) -> Result<Option<Cover>, ExtractError> {
    let k = weights.len();
    match mode {
        ExtractMode::Popcount => Ok(None),
        ExtractMode::Exact => {
            if k > MAX_EXACT_FANIN {
                return Err(ExtractError::FaninTooLarge { fanin: k });
            }
            let table = TruthTable::from_fn(k, |m| {
                let agree = weights
                    .iter()
                    .enumerate()
                    .filter(|&(i, &w)| (m >> i & 1 != 0) == w)
                    .count();
                agree as i32 >= threshold
            });
            let on = table.to_cover();
            Ok(Some(minimize(&on, &Cover::empty(k))))
        }
        ExtractMode::Sampled => {
            let samples = samples.ok_or(ExtractError::NoSamples)?;
            if samples.is_empty() {
                return Err(ExtractError::NoSamples);
            }
            let mut on = Vec::new();
            let mut off = Vec::new();
            for s in samples {
                assert_eq!(s.len(), k, "sample width mismatch");
                let agree = weights.iter().zip(s).filter(|&(w, x)| w == x).count();
                let cube = Cube::from_bools(s);
                if agree as i32 >= threshold {
                    on.push(cube);
                } else {
                    off.push(cube);
                }
            }
            Ok(Some(minimize_samples(k, &on, &off)))
        }
    }
}

/// Extracts one neuron as a netlist with inputs `x0..` and output `y`.
///
/// `samples` is required by [`ExtractMode::Sampled`] (observed input
/// patterns of this neuron's layer).
///
/// # Errors
///
/// See [`ExtractError`].
pub fn neuron_netlist(
    weights: &[bool],
    threshold: i32,
    mode: ExtractMode,
    samples: Option<&[Vec<bool>]>,
    name: &str,
) -> Result<Netlist, ExtractError> {
    match neuron_cover(weights, threshold, mode, samples)? {
        None => Ok(neuron_popcount_netlist(weights, threshold, name)),
        Some(cover) => Ok(covers_to_netlist(
            &[("y".to_string(), cover)],
            weights.len(),
            name,
        )),
    }
}

/// Extracts a whole layer as one multi-output netlist over shared inputs.
///
/// # Errors
///
/// See [`ExtractError`].
pub fn layer_netlist(
    layer: &BinaryDense,
    mode: ExtractMode,
    samples: Option<&[Vec<bool>]>,
) -> Result<Netlist, ExtractError> {
    match mode {
        ExtractMode::Popcount => {
            // Structural netlists per neuron, merged over shared inputs.
            let mut nl = Netlist::new("layer");
            let inputs: Vec<_> = (0..layer.in_dim())
                .map(|i| nl.add_input(format!("x{i}")))
                .collect();
            for j in 0..layer.out_dim() {
                let weights = layer.weights_of(j);
                let agree: Vec<_> = inputs
                    .iter()
                    .zip(weights)
                    .map(|(&x, &w)| {
                        if w {
                            nl.add_gate1(lbnn_netlist::Op::Buf, x)
                        } else {
                            nl.add_gate1(lbnn_netlist::Op::Not, x)
                        }
                    })
                    .collect();
                let count = crate::popcount::popcount_tree(&mut nl, &agree);
                let t = layer.threshold_of(j);
                let y = if t <= 0 {
                    nl.add_const(true)
                } else {
                    crate::popcount::geq_const(&mut nl, &count, t as u64)
                };
                nl.add_output(y, format!("y{j}"));
            }
            Ok(nl)
        }
        _ => {
            let mut outputs = Vec::with_capacity(layer.out_dim());
            for j in 0..layer.out_dim() {
                let cover =
                    neuron_cover(layer.weights_of(j), layer.threshold_of(j), mode, samples)?
                        .expect("non-popcount modes yield covers");
                outputs.push((format!("y{j}"), cover));
            }
            Ok(covers_to_netlist(&outputs, layer.in_dim(), "layer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn exact_matches_layer_forward() {
        let layer = BinaryDense::random(2, 8, 4);
        let nl = layer_netlist(&layer, ExtractMode::Exact, None).unwrap();
        for m in 0..256u64 {
            let x: Vec<bool> = (0..8).map(|i| m >> i & 1 != 0).collect();
            assert_eq!(nl.eval_bools(&x), layer.forward(&x), "m={m:#b}");
        }
    }

    #[test]
    fn popcount_matches_layer_forward() {
        let layer = BinaryDense::random(4, 24, 3);
        let nl = layer_netlist(&layer, ExtractMode::Popcount, None).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let x: Vec<bool> = (0..24).map(|_| rng.random_bool(0.5)).collect();
            assert_eq!(nl.eval_bools(&x), layer.forward(&x));
        }
    }

    #[test]
    fn sampled_agrees_on_observed_patterns() {
        let layer = BinaryDense::random(6, 16, 4);
        let mut rng = StdRng::seed_from_u64(10);
        let samples: Vec<Vec<bool>> = (0..150)
            .map(|_| (0..16).map(|_| rng.random_bool(0.5)).collect())
            .collect();
        let nl = layer_netlist(&layer, ExtractMode::Sampled, Some(&samples)).unwrap();
        // Perfect fidelity on every observed sample (the ISF care set).
        for s in &samples {
            assert_eq!(nl.eval_bools(s), layer.forward(s));
        }
    }

    #[test]
    fn sampled_is_much_smaller_than_popcount() {
        let layer = BinaryDense::random(6, 32, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<bool>> = (0..100)
            .map(|_| (0..32).map(|_| rng.random_bool(0.5)).collect())
            .collect();
        let sampled = layer_netlist(&layer, ExtractMode::Sampled, Some(&samples)).unwrap();
        let exact = layer_netlist(&layer, ExtractMode::Popcount, None).unwrap();
        assert!(
            sampled.gate_count() * 2 < exact.gate_count(),
            "ISF minimization should shrink the logic: {} vs {}",
            sampled.gate_count(),
            exact.gate_count()
        );
    }

    #[test]
    fn errors_are_reported() {
        let wide = vec![true; 32];
        assert!(matches!(
            neuron_netlist(&wide, 16, ExtractMode::Exact, None, "n"),
            Err(ExtractError::FaninTooLarge { fanin: 32 })
        ));
        assert!(matches!(
            neuron_netlist(&wide, 16, ExtractMode::Sampled, None, "n"),
            Err(ExtractError::NoSamples)
        ));
    }
}
