//! Straight-through-estimator training for binarized MLPs.
//!
//! A compact trainer sufficient for the paper's high-throughput tasks
//! (network intrusion detection, jet substructure classification): latent
//! real-valued weights, sign-binarized on the forward pass, gradients
//! passed straight through the sign within the clip region, plain SGD on a
//! squared-hinge loss against bipolar one-hot targets. The trained model
//! converts to a [`Bnn`] whose neurons are the agreement-threshold form
//! the FFCL extraction consumes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::bnn::{BinaryDense, Bnn};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed (initialization and shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            lr: 0.08,
            seed: 1,
        }
    }
}

/// An MLP with latent real weights, binarized on the forward pass.
#[derive(Debug, Clone)]
pub struct SteMlp {
    dims: Vec<usize>,
    /// Per layer: row-major `out × in` latent weights.
    weights: Vec<Vec<f32>>,
    /// Per layer: biases.
    biases: Vec<Vec<f32>>,
}

impl SteMlp {
    /// Creates a randomly initialized MLP over the dimension chain.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for pair in dims.windows(2) {
            let (fan_in, fan_out) = (pair[0], pair[1]);
            let scale = (1.0 / fan_in as f32).sqrt();
            weights.push(
                (0..fan_in * fan_out)
                    .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
                    .collect(),
            );
            biases.push(vec![0.0; fan_out]);
        }
        SteMlp {
            dims: dims.to_vec(),
            weights,
            biases,
        }
    }

    /// The dimension chain.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Forward pass returning all layer activations (bipolar) and the
    /// final pre-activations.
    fn forward_trace(&self, x: &[bool]) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.dims.len());
        acts.push(x.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect());
        let mut logits = Vec::new();
        for (l, pair) in self.dims.windows(2).enumerate() {
            let (fan_in, fan_out) = (pair[0], pair[1]);
            let input = &acts[l];
            let mut pre = vec![0.0f32; fan_out];
            for (j, p) in pre.iter_mut().enumerate() {
                let row = &self.weights[l][j * fan_in..(j + 1) * fan_in];
                let mut acc = self.biases[l][j];
                for (w, a) in row.iter().zip(input) {
                    acc += w.signum() * a;
                }
                *p = acc;
            }
            if l + 1 == self.dims.len() - 1 {
                logits = pre.clone();
            }
            acts.push(
                pre.iter()
                    .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
                    .collect(),
            );
        }
        (acts, logits)
    }

    /// Trains with plain SGD on a squared-hinge loss against bipolar
    /// one-hot targets; gradients pass straight through the sign
    /// (clipped at |latent| ≤ 1).
    ///
    /// Returns the final training accuracy.
    ///
    /// # Panics
    ///
    /// Panics if inputs/labels disagree in length or a label is out of
    /// range for the output dimension.
    pub fn train(&mut self, xs: &[Vec<bool>], ys: &[usize], config: &TrainConfig) -> f64 {
        assert_eq!(xs.len(), ys.len(), "inputs/labels mismatch");
        let classes = *self.dims.last().expect("non-empty dims");
        for &y in ys {
            assert!(y < classes, "label {y} out of range {classes}");
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let num_layers = self.dims.len() - 1;

        for _epoch in 0..config.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let x = &xs[idx];
                let y = ys[idx];
                let (acts, logits) = self.forward_trace(x);
                // Squared hinge toward ±1 one-hot on fan-in-normalized
                // logits: raw binarized pre-activations span ±fan_in, so
                // without normalization the hinge deltas slam the latent
                // weights into the clip bounds and training oscillates.
                let out_fan_in = self.dims[self.dims.len() - 2] as f32;
                let mut delta: Vec<f32> = logits
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let target = if j == y { 1.0 } else { -1.0 };
                        let margin = target * (v / out_fan_in);
                        if margin < 1.0 {
                            -(target * (1.0 - margin)) / out_fan_in
                        } else {
                            0.0
                        }
                    })
                    .collect();
                // Backward through the layers (STE: d sign(v)/dv ≈ 1 for
                // |v| ≤ 1, applied on both activations and weights).
                for l in (0..num_layers).rev() {
                    let fan_in = self.dims[l];
                    let fan_out = self.dims[l + 1];
                    let input = &acts[l];
                    let mut grad_in = vec![0.0f32; fan_in];
                    debug_assert_eq!(delta.len(), fan_out);
                    for (j, &d) in delta.iter().enumerate() {
                        if d == 0.0 {
                            continue;
                        }
                        let row = &mut self.weights[l][j * fan_in..(j + 1) * fan_in];
                        for (i, w) in row.iter_mut().enumerate() {
                            grad_in[i] += d * w.signum();
                            if w.abs() <= 1.0 {
                                *w -= config.lr * d * input[i];
                                *w = w.clamp(-1.5, 1.5);
                            }
                        }
                        self.biases[l][j] -= config.lr * d;
                    }
                    // Normalize the back-propagated signal by the layer's
                    // fan-in (same stabilization as the head).
                    delta = grad_in.into_iter().map(|g| g / fan_in as f32).collect();
                }
            }
        }
        self.to_bnn().accuracy(xs, ys)
    }

    /// Converts the latent model to its binarized network: weight signs
    /// become bipolar weights, and biases fold into agreement thresholds
    /// (`t = ⌈(k − bias)/2⌉`).
    pub fn to_bnn(&self) -> Bnn {
        let layers = self
            .dims
            .windows(2)
            .enumerate()
            .map(|(l, pair)| {
                let (fan_in, fan_out) = (pair[0], pair[1]);
                let weights: Vec<bool> = self.weights[l].iter().map(|&w| w >= 0.0).collect();
                let thresholds: Vec<i32> = self.biases[l]
                    .iter()
                    .map(|&b| ((fan_in as f32 - b) / 2.0).ceil() as i32)
                    .collect();
                BinaryDense::new(fan_in, fan_out, weights, thresholds)
            })
            .collect();
        Bnn::new(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable synthetic data: class = majority of first half
    /// of the bits.
    fn majority_data(seed: u64, n: usize, dim: usize) -> (Vec<Vec<bool>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x: Vec<bool> = (0..dim).map(|_| rng.random_bool(0.5)).collect();
            let ones = x[..dim / 2].iter().filter(|&&b| b).count();
            ys.push(usize::from(ones * 2 > dim / 2));
            xs.push(x);
        }
        (xs, ys)
    }

    #[test]
    fn learns_majority_function() {
        let (xs, ys) = majority_data(3, 300, 16);
        let mut mlp = SteMlp::new(&[16, 24, 2], 5);
        let acc = mlp.train(
            &xs,
            &ys,
            &TrainConfig {
                epochs: 60,
                ..Default::default()
            },
        );
        assert!(acc > 0.85, "training accuracy {acc} too low");
    }

    #[test]
    fn bnn_conversion_preserves_decisions_mostly() {
        let (xs, ys) = majority_data(4, 200, 12);
        let mut mlp = SteMlp::new(&[12, 8, 2], 6);
        mlp.train(&xs, &ys, &TrainConfig::default());
        let bnn = mlp.to_bnn();
        // The converted BNN is the deployed model; it must beat chance
        // clearly (the paper quotes < 4% binarization drop).
        assert!(bnn.accuracy(&xs, &ys) > 0.8);
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = majority_data(5, 100, 10);
        let mut a = SteMlp::new(&[10, 6, 2], 7);
        let mut b = SteMlp::new(&[10, 6, 2], 7);
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let acc_a = a.train(&xs, &ys, &cfg);
        let acc_b = b.train(&xs, &ys, &cfg);
        assert_eq!(acc_a, acc_b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_labels() {
        let mut mlp = SteMlp::new(&[4, 2], 1);
        let _ = mlp.train(&[vec![true; 4]], &[5], &TrainConfig::default());
    }
}
