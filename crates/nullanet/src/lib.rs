//! # lbnn-nullanet
//!
//! The upstream engine of the paper's design flow: NullaNet-style
//! conversion of **binarized neural networks** into fixed-function
//! combinational logic (FFCL) blocks.
//!
//! NullaNet (Nazemi et al., ASP-DAC 2019 / FCCM 2021) replaces each
//! binarized neuron by Boolean logic: a neuron with binary ±1 weights and
//! a sign activation is exactly an *XNOR-popcount-threshold* function of
//! its inputs, which can be realized (a) exactly as a truth table for
//! small fan-in ([`extract::ExtractMode::Exact`]), (b) as a minimized
//! incompletely specified function sampled from the training data
//! ([`extract::ExtractMode::Sampled`]), or (c) as a structural
//! XNOR/popcount/comparator netlist at any fan-in ([`popcount`]).
//!
//! The crate also carries a compact straight-through-estimator trainer
//! ([`train`]) so end-to-end examples (network intrusion detection, jet
//! classification) can learn real decision functions before extraction.
//!
//! ```
//! use lbnn_nullanet::bnn::BinaryDense;
//! use lbnn_nullanet::extract::{layer_netlist, ExtractMode};
//!
//! let layer = BinaryDense::random(7, 6, 3);
//! let nl = layer_netlist(&layer, ExtractMode::Exact, None).unwrap();
//! // The netlist computes exactly what the layer computes.
//! let x = [true, false, true, true, false, true];
//! assert_eq!(nl.eval_bools(&x), layer.forward(&x));
//! ```

pub mod bnn;
pub mod conv;
pub mod extract;
pub mod popcount;
pub mod train;

pub use bnn::{BinaryDense, Bnn};
pub use conv::{BinaryConv2d, FeatureMap};
pub use extract::{layer_netlist, neuron_netlist, ExtractMode};
