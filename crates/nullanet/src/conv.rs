//! Binarized 2-D convolution with im2col lowering.
//!
//! A binarized conv filter is the same XNOR-popcount-threshold neuron as a
//! dense one, applied at every spatial position over an im2col patch.
//! This module provides the feature-map forward pass and the lowering
//! that turns one conv layer into the [`BinaryDense`] form the FFCL
//! extraction consumes — which is exactly how the paper's VGG16/LeNet
//! conv layers become logic: one FFCL block per filter group, streamed
//! over patches (`2m` patches per pass).

use crate::bnn::BinaryDense;

/// A binary feature map: `channels × height × width` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMap {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<bool>,
}

impl FeatureMap {
    /// Creates an all-false map.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        FeatureMap {
            c,
            h,
            w,
            data: vec![false; c * h * w],
        }
    }

    /// Builds a map from a flat channel-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c*h*w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<bool>) -> Self {
        assert_eq!(data.len(), c * h * w, "feature map size mismatch");
        FeatureMap { c, h, w, data }
    }

    /// The bit at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, ch: usize, row: usize, col: usize) -> bool {
        assert!(ch < self.c && row < self.h && col < self.w);
        self.data[(ch * self.h + row) * self.w + col]
    }

    /// Sets the bit at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, ch: usize, row: usize, col: usize, v: bool) {
        assert!(ch < self.c && row < self.h && col < self.w);
        self.data[(ch * self.h + row) * self.w + col] = v;
    }
}

/// A binarized convolution layer (square kernel, valid padding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryConv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    /// The equivalent dense layer over im2col patches
    /// (`out_ch × in_ch·k·k`).
    dense: BinaryDense,
}

impl BinaryConv2d {
    /// Creates a conv layer from explicit weights (`out_ch` rows of
    /// `in_ch·k·k` bits, patch order = channel-major, then row, then
    /// column) and agreement thresholds.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions or `stride == 0`.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        weights: Vec<bool>,
        thresholds: Vec<i32>,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_ch * k * k;
        BinaryConv2d {
            in_ch,
            out_ch,
            k,
            stride,
            dense: BinaryDense::new(fan_in, out_ch, weights, thresholds),
        }
    }

    /// A random conv layer with midpoint thresholds.
    pub fn random(seed: u64, in_ch: usize, out_ch: usize, k: usize, stride: usize) -> Self {
        let dense = BinaryDense::random(seed, in_ch * k * k, out_ch);
        BinaryConv2d {
            in_ch,
            out_ch,
            k,
            stride,
            dense,
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// The equivalent dense (im2col) layer — the form FFCL extraction
    /// consumes.
    pub fn as_dense(&self) -> &BinaryDense {
        &self.dense
    }

    /// Output spatial dimensions for an input map (valid padding).
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the kernel.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(h >= self.k && w >= self.k, "input smaller than kernel");
        (
            (h - self.k) / self.stride + 1,
            (w - self.k) / self.stride + 1,
        )
    }

    /// Extracts the im2col patch at output position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on channel mismatch or out-of-range positions.
    pub fn patch(&self, input: &FeatureMap, row: usize, col: usize) -> Vec<bool> {
        assert_eq!(input.c, self.in_ch, "channel mismatch");
        let (r0, c0) = (row * self.stride, col * self.stride);
        let mut p = Vec::with_capacity(self.in_ch * self.k * self.k);
        for ch in 0..self.in_ch {
            for dr in 0..self.k {
                for dc in 0..self.k {
                    p.push(input.get(ch, r0 + dr, c0 + dc));
                }
            }
        }
        p
    }

    /// Forward pass over a whole feature map.
    pub fn forward(&self, input: &FeatureMap) -> FeatureMap {
        let (oh, ow) = self.out_dims(input.h, input.w);
        let mut out = FeatureMap::zeros(self.out_ch, oh, ow);
        for row in 0..oh {
            for col in 0..ow {
                let patch = self.patch(input, row, col);
                let bits = self.dense.forward(&patch);
                for (ch, &b) in bits.iter().enumerate() {
                    out.set(ch, row, col, b);
                }
            }
        }
        out
    }
}

/// 2×2 max-pooling on a binary map (OR-pooling, the BNN convention).
///
/// # Panics
///
/// Panics on odd dimensions.
pub fn maxpool2(input: &FeatureMap) -> FeatureMap {
    assert!(
        input.h.is_multiple_of(2) && input.w.is_multiple_of(2),
        "pooling needs even dims"
    );
    let mut out = FeatureMap::zeros(input.c, input.h / 2, input.w / 2);
    for ch in 0..input.c {
        for r in 0..input.h / 2 {
            for c in 0..input.w / 2 {
                let v = input.get(ch, 2 * r, 2 * c)
                    || input.get(ch, 2 * r, 2 * c + 1)
                    || input.get(ch, 2 * r + 1, 2 * c)
                    || input.get(ch, 2 * r + 1, 2 * c + 1);
                out.set(ch, r, c, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{layer_netlist, ExtractMode};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_map(seed: u64, c: usize, h: usize, w: usize) -> FeatureMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..c * h * w).map(|_| rng.random_bool(0.5)).collect();
        FeatureMap::from_vec(c, h, w, data)
    }

    #[test]
    fn forward_matches_manual_patch_dense() {
        let conv = BinaryConv2d::random(3, 2, 4, 3, 1);
        let input = random_map(9, 2, 6, 6);
        let out = conv.forward(&input);
        let (oh, ow) = conv.out_dims(6, 6);
        assert_eq!((out.h, out.w), (oh, ow));
        for row in 0..oh {
            for col in 0..ow {
                let patch = conv.patch(&input, row, col);
                let bits = conv.as_dense().forward(&patch);
                for (ch, &bit) in bits.iter().enumerate() {
                    assert_eq!(out.get(ch, row, col), bit);
                }
            }
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let conv = BinaryConv2d::random(1, 1, 2, 3, 2);
        let (oh, ow) = conv.out_dims(9, 9);
        assert_eq!((oh, ow), (4, 4));
    }

    #[test]
    fn conv_ffcl_matches_feature_map_forward() {
        // The full paper path: conv -> im2col dense -> FFCL netlist; the
        // netlist applied per patch equals the feature-map forward pass.
        let conv = BinaryConv2d::random(5, 1, 3, 2, 1);
        let nl = layer_netlist(conv.as_dense(), ExtractMode::Exact, None).unwrap();
        let input = random_map(6, 1, 5, 5);
        let out = conv.forward(&input);
        let (oh, ow) = conv.out_dims(5, 5);
        for row in 0..oh {
            for col in 0..ow {
                let patch = conv.patch(&input, row, col);
                let bits = nl.eval_bools(&patch);
                for (ch, &bit) in bits.iter().enumerate() {
                    assert_eq!(out.get(ch, row, col), bit, "({row},{col}) ch{ch}");
                }
            }
        }
    }

    #[test]
    fn pooling_is_or() {
        let mut m = FeatureMap::zeros(1, 4, 4);
        m.set(0, 0, 1, true);
        m.set(0, 3, 3, true);
        let p = maxpool2(&m);
        assert!(p.get(0, 0, 0));
        assert!(!p.get(0, 0, 1));
        assert!(p.get(0, 1, 1));
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn kernel_larger_than_input_rejected() {
        let conv = BinaryConv2d::random(1, 1, 1, 5, 1);
        let _ = conv.out_dims(3, 3);
    }
}
