//! The length-prefixed binary protocol — the fast path.
//!
//! HTTP costs a text parse and ~100 bytes of header per request. For a
//! model whose whole input is a handful of bits, that overhead dwarfs
//! the payload, so high-rate clients (and the bundled load generator)
//! speak a binary framing instead:
//!
//! ```text
//! connection  = magic "LBNB" , { frame } ;
//! frame       = u32le length , payload ;          length = |payload|
//! request     = u16le name_len , name bytes (utf-8 "name@version")
//!             , u32le nbits , ceil(nbits/8) bytes, bits LSB-first ;
//! response    = u8 status , body ;
//!   status 0 OK          body = u32le nbits , packed bits
//!   status 1 SHED        body = empty          (admission control)
//!   status 2 NOT_FOUND   body = utf-8 message
//!   status 3 BAD_REQUEST body = utf-8 message  (arity, malformed)
//!   status 4 ERROR       body = utf-8 message  (engine failure)
//! ```
//!
//! One connection serves many requests, strictly in order: responses
//! come back in request order, so a client may pipeline freely. The
//! 4-byte magic doubles as the protocol sniff for the shared port — an
//! HTTP method never starts with `LBNB`.

use std::io::{self, Read, Write};

/// Connection preamble; also how the server tells the two protocols apart.
pub const MAGIC: [u8; 4] = *b"LBNB";

/// Largest frame either side will accept (1 MiB payload).
pub const MAX_FRAME_BYTES: usize = 1024 * 1024;

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Inference succeeded; body carries the output bits.
    Ok = 0,
    /// Request was shed by admission control; retry later.
    Shed = 1,
    /// No such model (or version) in the registry.
    NotFound = 2,
    /// The request itself is invalid (wrong arity, malformed frame).
    BadRequest = 3,
    /// The engine failed while executing an admitted request.
    Error = 4,
}

impl Status {
    /// Decode a status byte.
    pub fn from_byte(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Shed),
            2 => Some(Status::NotFound),
            3 => Some(Status::BadRequest),
            4 => Some(Status::Error),
            _ => None,
        }
    }
}

/// A decoded inference request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferRequest {
    /// Model spec, `name` or `name@version`.
    pub model: String,
    /// Input bits, one bool per netlist input.
    pub bits: Vec<bool>,
}

/// A decoded inference response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferResponse {
    /// Outcome of the request.
    pub status: Status,
    /// Output bits when `status == Ok`.
    pub bits: Vec<bool>,
    /// Human-readable detail for non-OK statuses.
    pub message: String,
}

/// Pack bits LSB-first into bytes (bit `i` → byte `i/8`, bit `i%8`).
///
/// Branch-free: each 8-bool chunk (0/1 bytes in memory) is gathered
/// with one widening multiply — the diagonal coefficients place bit `j`
/// of the product's top byte — instead of a test-and-set per bit.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    let mut chunks = bits.chunks_exact(8);
    for (dst, chunk) in bytes.iter_mut().zip(&mut chunks) {
        let mut raw = [0u8; 8];
        for (r, &b) in raw.iter_mut().zip(chunk) {
            *r = b as u8;
        }
        *dst = (u64::from_le_bytes(raw).wrapping_mul(0x0102_0408_1020_4080) >> 56) as u8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if let Some(last) = bytes.last_mut() {
            *last |= (b as u8) << i;
        }
    }
    bytes
}

/// Inverse of [`pack_bits`]: take `nbits` bits back out of `bytes`.
///
/// Word-level like the packing: the byte is replicated across a word
/// and masked against the bit diagonal, spreading bit `j` into byte `j`
/// in one multiply instead of a shift-and-test per bit.
pub fn unpack_bits(bytes: &[u8], nbits: usize) -> Option<Vec<bool>> {
    if bytes.len() != nbits.div_ceil(8) {
        return None;
    }
    let mut bits = vec![false; nbits];
    for (chunk, &byte) in bits.chunks_mut(8).zip(bytes) {
        let spread = ((byte as u64).wrapping_mul(0x0101_0101_0101_0101) & 0x8040_2010_0804_0201)
            .to_le_bytes();
        for (j, b) in chunk.iter_mut().enumerate() {
            *b = spread[j] != 0;
        }
    }
    Some(bits)
}

/// Encode a request as a frame payload (no length prefix).
pub fn encode_request(req: &InferRequest) -> Vec<u8> {
    let name = req.model.as_bytes();
    let packed = pack_bits(&req.bits);
    let mut out = Vec::with_capacity(2 + name.len() + 4 + packed.len());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(req.bits.len() as u32).to_le_bytes());
    out.extend_from_slice(&packed);
    out
}

/// Decode a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<InferRequest, String> {
    if payload.len() < 2 {
        return Err("frame too short for name length".into());
    }
    let name_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    let rest = &payload[2..];
    if rest.len() < name_len + 4 {
        return Err("frame too short for model name + bit count".into());
    }
    let model = std::str::from_utf8(&rest[..name_len])
        .map_err(|_| "model name is not utf-8".to_string())?
        .to_string();
    let nbits = u32::from_le_bytes([
        rest[name_len],
        rest[name_len + 1],
        rest[name_len + 2],
        rest[name_len + 3],
    ]) as usize;
    let bits = unpack_bits(&rest[name_len + 4..], nbits)
        .ok_or_else(|| "bit payload length mismatch".to_string())?;
    Ok(InferRequest { model, bits })
}

/// Encode a response as a frame payload (no length prefix).
pub fn encode_response(resp: &InferResponse) -> Vec<u8> {
    let mut out = vec![resp.status as u8];
    match resp.status {
        Status::Ok => {
            out.extend_from_slice(&(resp.bits.len() as u32).to_le_bytes());
            out.extend_from_slice(&pack_bits(&resp.bits));
        }
        _ => out.extend_from_slice(resp.message.as_bytes()),
    }
    out
}

/// Decode a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<InferResponse, String> {
    let (&status_byte, body) = payload.split_first().ok_or("empty response frame")?;
    let status = Status::from_byte(status_byte)
        .ok_or_else(|| format!("unknown status byte {status_byte}"))?;
    match status {
        Status::Ok => {
            if body.len() < 4 {
                return Err("OK response too short for bit count".into());
            }
            let nbits = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
            let bits = unpack_bits(&body[4..], nbits)
                .ok_or_else(|| "OK response bit payload length mismatch".to_string())?;
            Ok(InferResponse {
                status,
                bits,
                message: String::new(),
            })
        }
        _ => Ok(InferResponse {
            status,
            bits: Vec::new(),
            message: String::from_utf8_lossy(body).into_owned(),
        }),
    }
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Outcome of one [`read_frame`] attempt (mirrors the HTTP reader).
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete frame payload, consumed from the buffer.
    Ready(Vec<u8>),
    /// Read timed out mid-frame; call again.
    NeedMore,
    /// Peer closed between frames — clean end of connection.
    Closed,
    /// The stream violates the framing (oversized or truncated frame).
    Bad(String),
    /// A socket error other than timeout.
    Io(io::Error),
}

/// Resumable frame reader: appends onto `buf`, pops one frame when whole.
pub fn read_frame<R: Read>(reader: &mut R, buf: &mut Vec<u8>) -> FrameOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        if buf.len() >= 4 {
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > MAX_FRAME_BYTES {
                return FrameOutcome::Bad(format!(
                    "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                ));
            }
            if buf.len() >= 4 + len {
                let payload = buf[4..4 + len].to_vec();
                buf.drain(..4 + len);
                return FrameOutcome::Ready(payload);
            }
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    FrameOutcome::Closed
                } else {
                    FrameOutcome::Bad("connection closed mid-frame".into())
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return FrameOutcome::NeedMore;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return FrameOutcome::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_lsb_first() {
        let bits = vec![true, false, false, true, true, false, true, false, true];
        let packed = pack_bits(&bits);
        assert_eq!(packed, vec![0b0101_1001, 0b0000_0001]);
        assert_eq!(unpack_bits(&packed, bits.len()).unwrap(), bits);
        assert!(unpack_bits(&packed, 20).is_none());
        assert!(pack_bits(&[]).is_empty());
        assert_eq!(unpack_bits(&[], 0).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn request_round_trips() {
        let req = InferRequest {
            model: "xor@3".into(),
            bits: vec![true, true, false, true, false],
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        let ok = InferResponse {
            status: Status::Ok,
            bits: vec![false, true, true],
            message: String::new(),
        };
        assert_eq!(decode_response(&encode_response(&ok)).unwrap(), ok);
        let shed = InferResponse {
            status: Status::Shed,
            bits: Vec::new(),
            message: String::new(),
        };
        assert_eq!(decode_response(&encode_response(&shed)).unwrap(), shed);
        let nf = InferResponse {
            status: Status::NotFound,
            bits: Vec::new(),
            message: "no model `nope`".into(),
        };
        assert_eq!(decode_response(&encode_response(&nf)).unwrap(), nf);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0xff, 0xff, b'a']).is_err());
        // name_len fits, but bit payload is short one byte.
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u16.to_le_bytes());
        payload.extend_from_slice(b"xor");
        payload.extend_from_slice(&16u32.to_le_bytes());
        payload.push(0xab);
        assert!(decode_request(&payload).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[9]).is_err());
        assert!(Status::from_byte(7).is_none());
    }

    #[test]
    fn frame_reader_handles_split_and_pipelined_frames() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first").unwrap();
        write_frame(&mut stream, b"second").unwrap();
        // Feed the whole stream at once: both frames pop out in order.
        let mut cursor = io::Cursor::new(stream);
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf) {
            FrameOutcome::Ready(p) => assert_eq!(p, b"first"),
            other => panic!("unexpected: {other:?}"),
        }
        match read_frame(&mut cursor, &mut buf) {
            FrameOutcome::Ready(p) => assert_eq!(p, b"second"),
            other => panic!("unexpected: {other:?}"),
        }
        match read_frame(&mut cursor, &mut buf) {
            FrameOutcome::Closed => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn frame_reader_rejects_oversized_and_truncated() {
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            FrameOutcome::Bad(_)
        ));
        // Length says 10 bytes, stream closes after 2.
        let mut truncated = 10u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(b"ab");
        let mut cursor = io::Cursor::new(truncated);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            FrameOutcome::Bad(_)
        ));
    }
}
