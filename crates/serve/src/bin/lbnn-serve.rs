//! `lbnn-serve` — serve a directory of compiled LPU artifacts over TCP,
//! or load-test a running server.
//!
//! ```text
//! lbnn-serve --models DIR [options]          serve every *.lbnn in DIR
//!   --addr A:P            listen address     (default 127.0.0.1:7878)
//!   --workers N           runtime workers per model (0 = one per CPU)
//!   --queue-capacity N    micro-batch job queue bound  (default 32)
//!   --max-batch N         lanes per micro-batch (0 = engine lane width)
//!   --flush-after-us N    deadline flush trigger       (default 200)
//!   --admission-limit N   in-flight cap before shedding (0 = auto)
//!   --max-connections N   simultaneous connections     (default 256)
//!   --no-admin            disable POST /admin/shutdown
//!
//! lbnn-serve --bench ADDR --model NAME [options]   open-loop load test
//!   --rate R              target requests/second     (default 1000)
//!   --requests N          total requests             (default 1000)
//!   --connections N       persistent connections     (default 4)
//!   --seed S              arrival + payload seed     (default 1)
//!   --verify FILE.v       check every response against this netlist
//! ```
//!
//! Models are named by file stem: `xor@3.lbnn` serves as `xor@3` (and as
//! plain `xor` while 3 is the latest version); a stem without `@` gets
//! version 1. SIGINT/SIGTERM begin a graceful drain: accepted requests
//! all resolve, then the final per-model report prints.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use lbnn_core::RuntimeOptions;
use lbnn_serve::loadgen::{self, LoadGenOptions};
use lbnn_serve::registry::ModelRegistry;
use lbnn_serve::server::{Server, ServerOptions};

fn usage() -> ! {
    eprintln!(
        "usage: lbnn-serve --models DIR [--addr A:P] [--workers N] [--queue-capacity N]\n\
         \u{20}                 [--max-batch N] [--flush-after-us N] [--admission-limit N]\n\
         \u{20}                 [--max-connections N] [--no-admin]\n\
         \u{20}      lbnn-serve --bench ADDR --model NAME [--rate R] [--requests N]\n\
         \u{20}                 [--connections N] [--seed S] [--verify FILE.v]"
    );
    std::process::exit(2);
}

struct ServeArgs {
    models: String,
    addr: String,
    runtime: RuntimeOptions,
    server: ServerOptions,
}

struct BenchArgs {
    addr: String,
    options: LoadGenOptions,
    verify_path: Option<String>,
}

enum Mode {
    Serve(ServeArgs),
    Bench(BenchArgs),
}

fn parse_args() -> Mode {
    let mut serve = ServeArgs {
        models: String::new(),
        addr: "127.0.0.1:7878".into(),
        runtime: RuntimeOptions::default(),
        server: ServerOptions::default(),
    };
    let mut bench: Option<BenchArgs> = None;
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>| -> usize {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => serve.models = it.next().unwrap_or_else(|| usage()),
            "--addr" => serve.addr = it.next().unwrap_or_else(|| usage()),
            "--workers" => serve.runtime.workers = num(&mut it),
            "--queue-capacity" => serve.runtime.queue_capacity = num(&mut it),
            "--max-batch" => serve.runtime.max_batch = num(&mut it),
            "--flush-after-us" => {
                serve.runtime.flush_after = Duration::from_micros(num(&mut it) as u64)
            }
            "--admission-limit" => serve.runtime.admission_limit = num(&mut it),
            "--max-connections" => serve.server.max_connections = num(&mut it),
            "--no-admin" => serve.server.enable_admin = false,
            "--bench" => {
                bench = Some(BenchArgs {
                    addr: it.next().unwrap_or_else(|| usage()),
                    options: LoadGenOptions::default(),
                    verify_path: None,
                })
            }
            "--model" => match bench.as_mut() {
                Some(b) => b.options.model = it.next().unwrap_or_else(|| usage()),
                None => usage(),
            },
            "--rate" => match bench.as_mut() {
                Some(b) => {
                    b.options.rate = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage())
                }
                None => usage(),
            },
            "--requests" => match bench.as_mut() {
                Some(b) => b.options.requests = num(&mut it),
                None => usage(),
            },
            "--connections" => match bench.as_mut() {
                Some(b) => b.options.connections = num(&mut it),
                None => usage(),
            },
            "--seed" => match bench.as_mut() {
                Some(b) => b.options.seed = num(&mut it) as u64,
                None => usage(),
            },
            "--verify" => match bench.as_mut() {
                Some(b) => b.verify_path = Some(it.next().unwrap_or_else(|| usage())),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    match bench {
        Some(b) => {
            if b.options.model.is_empty() {
                usage();
            }
            Mode::Bench(b)
        }
        None => {
            if serve.models.is_empty() {
                usage();
            }
            Mode::Serve(serve)
        }
    }
}

// ---------------------------------------------------------------------------
// Unix signal handling without any external crate: std links libc, so the
// classic `signal(2)` entry point is available to declare directly. The
// handler only flips an atomic — every async-signal-safety rule allows that.
// ---------------------------------------------------------------------------

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::Release);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn run_serve(args: ServeArgs) -> ExitCode {
    let registry = match ModelRegistry::load_dir(&args.models, &args.runtime) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lbnn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    for entry in registry.entries() {
        println!(
            "loaded {}: {} inputs, {} outputs, backend {}, admission limit {}",
            entry.id(),
            entry.num_inputs,
            entry.num_outputs,
            entry.backend,
            entry.runtime.admission_limit(),
        );
    }
    let server = match Server::bind(args.addr.as_str(), registry, args.server) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbnn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    let handle = server.handle();
    install_signal_handlers();
    // The handler only sets a flag; this watcher turns it into a drain.
    let watcher_handle = handle.clone();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::Acquire) {
            eprintln!("lbnn-serve: signal received, draining...");
            watcher_handle.shutdown();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    match server.serve() {
        Ok(report) => {
            println!("drained cleanly; final report:");
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbnn-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Ask the server (over HTTP) how many inputs `model` expects.
fn discover_num_inputs(addr: SocketAddr, model: &str) -> Result<usize, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write!(
        stream,
        "GET /v1/models/{model} HTTP/1.1\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    if !text.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "server does not serve `{model}`: {}",
            text.lines().next().unwrap_or("no response")
        ));
    }
    text.split_whitespace()
        .find_map(|tok| tok.strip_prefix("inputs=")?.parse().ok())
        .ok_or_else(|| "model info response carries no inputs= field".into())
}

fn run_bench(args: BenchArgs) -> ExitCode {
    let addr = match args.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("lbnn-serve: cannot resolve {}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut options = args.options;
    options.num_inputs = match discover_num_inputs(addr, &options.model) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("lbnn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.verify_path {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lbnn-serve: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let netlist = match lbnn_netlist::verilog::parse_verilog(&src) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("lbnn-serve: parse error in {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if netlist.inputs().len() != options.num_inputs {
            eprintln!(
                "lbnn-serve: oracle {path} has {} inputs but the served model takes {}",
                netlist.inputs().len(),
                options.num_inputs
            );
            return ExitCode::FAILURE;
        }
        options.verify_netlist = Some(netlist);
    }
    println!(
        "open-loop bench against {addr}: model {}, {} inputs, {:.0} req/s target, \
         {} requests over {} connections{}",
        options.model,
        options.num_inputs,
        options.rate,
        options.requests,
        options.connections,
        if options.verify_netlist.is_some() {
            " (verifying against oracle)"
        } else {
            ""
        }
    );
    match loadgen::run(addr, &options) {
        Ok(report) => {
            println!("{report}");
            if report.mismatches > 0 {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbnn-serve: bench failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Mode::Serve(args) => run_serve(args),
        Mode::Bench(args) => run_bench(args),
    }
}
