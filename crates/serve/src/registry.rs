//! The multi-model registry: `name@version` → loaded artifact.
//!
//! A model directory is the unit of deployment: every `*.lbnn` file in
//! it (non-recursive) becomes one served model. The file stem carries
//! the identity — `xor@3.lbnn` serves as `xor@3`; a stem without `@`
//! gets version `1`. Both artifact kinds load transparently
//! ([`ArtifactKind::peek`] dispatches before decoding): a flow becomes
//! a single-block model, a compiled model a multi-layer one. Each entry
//! owns a dedicated [`Runtime`] — models are isolated, so one model's
//! saturation sheds *its* traffic while its neighbours keep serving.
//!
//! Resolution accepts `name@version` (exact) or bare `name` (the latest
//! version: numeric descending when both versions are integers,
//! lexicographic otherwise — so `v10` beats `v9` where both are plain
//! numbers).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

use lbnn_core::{
    ArtifactKind, CompiledModel, CoreError, Flow, Runtime, RuntimeOptions, RuntimeStats,
};

use crate::metrics::ModelMetrics;
use crate::ServeError;

/// The compiled base a [`ModelEntry`] serves, retained so `.lbnnp`
/// deltas can be applied against it at any time
/// ([`ModelEntry::apply_patch`]). After a successful patch the stored
/// source *is* the patched artifact: deltas chain, each binding to the
/// checksum of whatever the entry currently serves.
enum ModelSource {
    /// A single-block flow artifact (boxed: a `Flow` is an order of
    /// magnitude larger than the `CompiledModel` handle).
    Flow(Box<Flow>),
    /// A multi-layer compiled model artifact.
    Model(CompiledModel),
}

/// One served model: identity, its dedicated runtime, and counters.
pub struct ModelEntry {
    /// Model name (file stem before `@`).
    pub name: String,
    /// Model version (file stem after `@`, `"1"` if absent).
    pub version: String,
    /// Primary input count the model expects per request.
    pub num_inputs: usize,
    /// Primary output count the model produces per request.
    pub num_outputs: usize,
    /// Backend label (`scalar`, `bitsliced:256`, ...).
    pub backend: String,
    /// The model's dedicated serving runtime.
    pub runtime: Runtime,
    /// Request counters for this model.
    pub metrics: ModelMetrics,
    /// The served artifact, kept for live patching. The mutex
    /// serializes patch application; serving never touches it.
    source: Mutex<ModelSource>,
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("id", &self.id())
            .field("num_inputs", &self.num_inputs)
            .field("num_outputs", &self.num_outputs)
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

impl ModelEntry {
    /// Canonical `name@version` identifier.
    pub fn id(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// Current runtime statistics (cheap snapshot).
    pub fn stats(&self) -> RuntimeStats {
        self.runtime.stats()
    }

    /// Run one request through admission control and the runtime,
    /// recording the outcome in [`ModelEntry::metrics`].
    ///
    /// Blocks the *calling connection thread* until the response is
    /// ready (or the request is shed immediately) — never the accept
    /// loop.
    pub fn infer(&self, bits: &[bool]) -> InferOutcome {
        match self.runtime.try_submit(bits) {
            Ok(handle) => match handle.wait() {
                Ok(outputs) => {
                    self.metrics.ok.fetch_add(1, Ordering::Relaxed);
                    InferOutcome::Ok(outputs)
                }
                Err(e) => {
                    self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    InferOutcome::Failed(e.to_string())
                }
            },
            Err(CoreError::Overloaded { .. }) => {
                self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                InferOutcome::Shed
            }
            Err(e) => {
                self.metrics.bad_request.fetch_add(1, Ordering::Relaxed);
                InferOutcome::BadArity(e.to_string())
            }
        }
    }

    /// Applies a `.lbnnp` patch delta to this entry's served artifact
    /// and hot-swaps the runtime onto the patched compile — traffic in
    /// flight finishes on the old version, new requests see the new one.
    ///
    /// Returns the runtime's new serving version. On success the stored
    /// artifact becomes the patched one, so a following delta must bind
    /// to the *patched* artifact's checksum (deltas chain).
    ///
    /// # Errors
    ///
    /// Typed artifact errors for a corrupt/truncated delta, a delta
    /// bound to a different base
    /// ([`BaseMismatch`](lbnn_core::ArtifactError::BaseMismatch)), or
    /// one naming unknown cells
    /// ([`UnknownCell`](lbnn_core::ArtifactError::UnknownCell)); the
    /// entry keeps serving its current version unchanged on any error.
    pub fn apply_patch(&self, delta: &[u8]) -> Result<u64, ServeError> {
        let mut source = self.source.lock().expect("model source lock");
        let version = match &*source {
            ModelSource::Flow(flow) => {
                let patched = flow.apply_delta(delta)?;
                let version = self.runtime.swap_engine(patched.engine()?)?;
                *source = ModelSource::Flow(Box::new(patched));
                version
            }
            ModelSource::Model(model) => {
                let patched = model.apply_delta(delta)?;
                let version = self.runtime.swap_model(patched.clone())?;
                *source = ModelSource::Model(patched);
                version
            }
        };
        Ok(version)
    }
}

/// What happened to one request handed to [`ModelEntry::infer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferOutcome {
    /// Admitted and answered: the output bits.
    Ok(Vec<bool>),
    /// Refused by admission control — the runtime is saturated.
    Shed,
    /// Rejected before submission (wrong input arity).
    BadArity(String),
    /// Admitted but the engine failed.
    Failed(String),
}

/// Immutable collection of [`ModelEntry`]s, shared across connections.
pub struct ModelRegistry {
    entries: Vec<ModelEntry>,
    /// `name@version` → index into `entries`.
    by_id: HashMap<String, usize>,
    /// `name` → index of its latest version.
    latest: HashMap<String, usize>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("entries", &self.entries)
            .finish_non_exhaustive()
    }
}

impl ModelRegistry {
    /// Build an empty registry (populate with the `insert_*` methods).
    pub fn new() -> ModelRegistry {
        ModelRegistry {
            entries: Vec::new(),
            by_id: HashMap::new(),
            latest: HashMap::new(),
        }
    }

    /// Scan `dir` for `*.lbnn` artifacts and load every one, giving each
    /// its own runtime built from `options`.
    pub fn load_dir(
        dir: impl AsRef<Path>,
        options: &RuntimeOptions,
    ) -> Result<ModelRegistry, ServeError> {
        let dir = dir.as_ref();
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| ServeError::Io {
                target: dir.display().to_string(),
                reason: e.to_string(),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "lbnn").unwrap_or(false))
            .collect();
        // Deterministic registry order regardless of readdir order.
        files.sort();
        let mut registry = ModelRegistry::new();
        for path in &files {
            let stem = path.file_stem().and_then(|s| s.to_str()).ok_or_else(|| {
                ServeError::BadModelName {
                    stem: path.display().to_string(),
                    reason: "stem is not valid utf-8".into(),
                }
            })?;
            let (name, version) = parse_model_stem(stem)?;
            let load_err = |source: CoreError| ServeError::Artifact {
                path: path.display().to_string(),
                source,
            };
            let bytes = std::fs::read(path).map_err(|e| ServeError::Io {
                target: path.display().to_string(),
                reason: e.to_string(),
            })?;
            match ArtifactKind::peek(&bytes).map_err(load_err)? {
                ArtifactKind::Flow => {
                    let flow = Flow::load(path).map_err(load_err)?;
                    registry.insert_flow(&name, &version, flow, *options)?;
                }
                ArtifactKind::Model => {
                    let model = CompiledModel::load(path).map_err(load_err)?;
                    registry.insert_model(&name, &version, model, *options)?;
                }
            }
        }
        if registry.entries.is_empty() {
            return Err(ServeError::EmptyRegistry {
                dir: dir.display().to_string(),
            });
        }
        // Apply any `.lbnnp` deltas sitting next to their base
        // artifacts: `xor@3.lbnnp` patches the entry loaded from
        // `xor@3.lbnn`. Startup patching reuses the same path as live
        // patching, so a delta that would be rejected over the wire is
        // rejected here too (and names its file).
        let mut patches: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| ServeError::Io {
                target: dir.display().to_string(),
                reason: e.to_string(),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "lbnnp").unwrap_or(false))
            .collect();
        patches.sort();
        for path in &patches {
            let stem = path.file_stem().and_then(|s| s.to_str()).ok_or_else(|| {
                ServeError::BadModelName {
                    stem: path.display().to_string(),
                    reason: "stem is not valid utf-8".into(),
                }
            })?;
            let (name, version) = parse_model_stem(stem)?;
            let id = format!("{name}@{version}");
            let bytes = std::fs::read(path).map_err(|e| ServeError::Io {
                target: path.display().to_string(),
                reason: e.to_string(),
            })?;
            registry.apply_patch(&id, &bytes).map_err(|e| match e {
                ServeError::ModelNotFound { spec } => ServeError::BadModelName {
                    stem: stem.to_string(),
                    reason: format!("patch `{spec}.lbnnp` has no matching `.lbnn` artifact"),
                },
                ServeError::Core(source) => ServeError::Artifact {
                    path: path.display().to_string(),
                    source,
                },
                other => other,
            })?;
        }
        Ok(registry)
    }

    /// Applies a `.lbnnp` delta to the model resolved by `spec`
    /// (`name@version` exact, or bare `name` for the latest version) —
    /// see [`ModelEntry::apply_patch`]. Returns the runtime's new
    /// serving version.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] when `spec` resolves nothing;
    /// otherwise the entry's typed patch errors.
    pub fn apply_patch(&self, spec: &str, delta: &[u8]) -> Result<u64, ServeError> {
        let entry = self
            .resolve(spec)
            .ok_or_else(|| ServeError::ModelNotFound {
                spec: spec.to_string(),
            })?;
        entry.apply_patch(delta)
    }

    /// Register a single-block [`Flow`] under `name@version`.
    pub fn insert_flow(
        &mut self,
        name: &str,
        version: &str,
        flow: Flow,
        options: RuntimeOptions,
    ) -> Result<(), ServeError> {
        let num_inputs = flow.program.num_inputs;
        let num_outputs = flow.program.outputs.len();
        let backend = flow.backend.to_string();
        let runtime = Runtime::from_engine(flow.engine()?, options)?;
        self.insert_entry(
            name,
            version,
            num_inputs,
            num_outputs,
            backend,
            runtime,
            ModelSource::Flow(Box::new(flow)),
        )
    }

    /// Register a multi-layer [`CompiledModel`] under `name@version`.
    pub fn insert_model(
        &mut self,
        name: &str,
        version: &str,
        model: CompiledModel,
        options: RuntimeOptions,
    ) -> Result<(), ServeError> {
        let layers = model.layers();
        let num_inputs = layers
            .first()
            .map(|l| l.flow().program.num_inputs)
            .unwrap_or(0);
        let num_outputs = layers
            .last()
            .map(|l| l.flow().program.outputs.len())
            .unwrap_or(0);
        let backend = layers
            .first()
            .map(|l| l.backend().to_string())
            .unwrap_or_default();
        let runtime = Runtime::from_model(model.clone(), options)?;
        self.insert_entry(
            name,
            version,
            num_inputs,
            num_outputs,
            backend,
            runtime,
            ModelSource::Model(model),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_entry(
        &mut self,
        name: &str,
        version: &str,
        num_inputs: usize,
        num_outputs: usize,
        backend: String,
        runtime: Runtime,
        source: ModelSource,
    ) -> Result<(), ServeError> {
        let id = format!("{name}@{version}");
        if self.by_id.contains_key(&id) {
            return Err(ServeError::DuplicateModel {
                name: name.to_string(),
                version: version.to_string(),
            });
        }
        let index = self.entries.len();
        self.entries.push(ModelEntry {
            name: name.to_string(),
            version: version.to_string(),
            num_inputs,
            num_outputs,
            backend,
            runtime,
            metrics: ModelMetrics::default(),
            source: Mutex::new(source),
        });
        self.by_id.insert(id, index);
        match self.latest.get(name) {
            Some(&prev) if !version_newer(version, &self.entries[prev].version) => {}
            _ => {
                self.latest.insert(name.to_string(), index);
            }
        }
        Ok(())
    }

    /// Resolve `name@version` (exact) or `name` (latest version).
    pub fn resolve(&self, spec: &str) -> Option<&ModelEntry> {
        let index = match spec.split_once('@') {
            Some(_) => *self.by_id.get(spec)?,
            None => *self.latest.get(spec)?,
        };
        Some(&self.entries[index])
    }

    /// All entries, in registration (= sorted filename) order.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Drain every model's runtime: block until all in-flight requests
    /// everywhere have resolved. Part of graceful shutdown.
    pub fn drain_all(&self) {
        for entry in &self.entries {
            entry.runtime.drain();
        }
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

/// Split a file stem into `(name, version)`; no `@` means version `1`.
fn parse_model_stem(stem: &str) -> Result<(String, String), ServeError> {
    let (name, version) = match stem.split_once('@') {
        Some((n, v)) => (n, v),
        None => (stem, "1"),
    };
    if name.is_empty() {
        return Err(ServeError::BadModelName {
            stem: stem.to_string(),
            reason: "empty model name".into(),
        });
    }
    if version.is_empty() || version.contains('@') {
        return Err(ServeError::BadModelName {
            stem: stem.to_string(),
            reason: "version must be non-empty and contain no `@`".into(),
        });
    }
    Ok((name.to_string(), version.to_string()))
}

/// Is version `a` newer than `b`? Numeric comparison when both parse as
/// integers, lexicographic otherwise.
fn version_newer(a: &str, b: &str) -> bool {
    match (a.parse::<u64>(), b.parse::<u64>()) {
        (Ok(a), Ok(b)) => a > b,
        _ => a > b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_core::LpuConfig;
    use lbnn_netlist::random::RandomDag;

    fn tiny_flow(seed: u64) -> Flow {
        let netlist = RandomDag::strict(12, 4, 8).generate(seed);
        Flow::builder(&netlist)
            .config(LpuConfig::new(8, 4))
            .compile()
            .expect("compile tiny flow")
    }

    /// A patch set negating every primary-output gate: the replacement's
    /// outputs differ from the base on *every* input, so a swap is
    /// always observable.
    fn negate_output_gates(flow: &Flow) -> lbnn_netlist::PatchSet {
        let out_ids: std::collections::BTreeSet<_> =
            flow.netlist.outputs().iter().map(|o| o.node).collect();
        let patches: lbnn_netlist::PatchSet = out_ids
            .iter()
            .map(|&id| flow.netlist.node(id))
            .zip(out_ids.iter())
            .filter_map(|(node, &id)| {
                node.op()
                    .negated()
                    .filter(|_| node.op().is_executable())
                    .map(|neg| (id, neg))
            })
            .collect();
        assert!(!patches.is_empty(), "flow has no patchable output gates");
        patches
    }

    #[test]
    fn stem_parsing() {
        assert_eq!(
            parse_model_stem("xor@3").unwrap(),
            ("xor".into(), "3".into())
        );
        assert_eq!(parse_model_stem("xor").unwrap(), ("xor".into(), "1".into()));
        assert_eq!(
            parse_model_stem("deep@2024.1").unwrap(),
            ("deep".into(), "2024.1".into())
        );
        assert!(parse_model_stem("@3").is_err());
        assert!(parse_model_stem("a@").is_err());
        assert!(parse_model_stem("a@b@c").is_err());
    }

    #[test]
    fn version_ordering_is_numeric_then_lexicographic() {
        assert!(version_newer("10", "9"));
        assert!(!version_newer("9", "10"));
        assert!(version_newer("2024.2", "2024.1"));
        assert!(!version_newer("3", "3"));
    }

    #[test]
    fn resolve_exact_and_latest() {
        let mut registry = ModelRegistry::new();
        let options = RuntimeOptions::default();
        registry
            .insert_flow("xor", "1", tiny_flow(1), options)
            .unwrap();
        registry
            .insert_flow("xor", "10", tiny_flow(2), options)
            .unwrap();
        registry
            .insert_flow("xor", "9", tiny_flow(3), options)
            .unwrap();
        registry
            .insert_flow("and", "2", tiny_flow(4), options)
            .unwrap();
        assert_eq!(registry.resolve("xor@9").unwrap().version, "9");
        // Bare name → numerically-latest version, not lexicographic max.
        assert_eq!(registry.resolve("xor").unwrap().version, "10");
        assert_eq!(registry.resolve("and").unwrap().id(), "and@2");
        assert!(registry.resolve("xor@7").is_none());
        assert!(registry.resolve("nope").is_none());
        assert_eq!(registry.entries().len(), 4);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut registry = ModelRegistry::new();
        let options = RuntimeOptions::default();
        registry
            .insert_flow("m", "1", tiny_flow(1), options)
            .unwrap();
        let err = registry
            .insert_flow("m", "1", tiny_flow(2), options)
            .unwrap_err();
        assert!(matches!(err, ServeError::DuplicateModel { .. }));
    }

    #[test]
    fn infer_matches_direct_runtime_and_counts_outcomes() {
        let mut registry = ModelRegistry::new();
        registry
            .insert_flow("m", "1", tiny_flow(5), RuntimeOptions::default())
            .unwrap();
        let entry = registry.resolve("m").unwrap();
        let bits: Vec<bool> = (0..entry.num_inputs).map(|i| i % 3 == 0).collect();
        let out = match entry.infer(&bits) {
            InferOutcome::Ok(bits) => bits,
            other => panic!("unexpected outcome: {other:?}"),
        };
        assert_eq!(out.len(), entry.num_outputs);
        // Wrong arity is a BadArity, and is counted separately.
        assert!(matches!(entry.infer(&[true]), InferOutcome::BadArity(_)));
        let (ok, shed, bad, failed) = entry.metrics.snapshot();
        assert_eq!((ok, shed, bad, failed), (1, 0, 1, 0));
        registry.drain_all();
    }

    #[test]
    fn load_dir_discovers_both_artifact_kinds() {
        let dir = std::env::temp_dir().join(format!("lbnn-serve-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        tiny_flow(7).save(dir.join("alpha@2.lbnn")).unwrap();
        tiny_flow(8).save(dir.join("beta.lbnn")).unwrap();
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        let registry = ModelRegistry::load_dir(&dir, &RuntimeOptions::default()).unwrap();
        assert_eq!(registry.entries().len(), 2);
        assert_eq!(registry.resolve("alpha").unwrap().id(), "alpha@2");
        assert_eq!(registry.resolve("beta").unwrap().version, "1");
        // A corrupt artifact fails the whole load with its path named.
        std::fs::write(dir.join("bad@1.lbnn"), b"garbage").unwrap();
        let err = ModelRegistry::load_dir(&dir, &RuntimeOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::Artifact { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A `.lbnnp` delta negating a few gates: applying it through the
    /// registry hot-swaps the runtime, flips the served outputs to the
    /// patched oracle, and bumps the serving version; errors are typed
    /// and leave the entry serving unchanged.
    #[test]
    fn apply_patch_swaps_the_served_compile() {
        let flow = tiny_flow(9);
        let patches = negate_output_gates(&flow);
        let delta = flow.make_delta(&patches).unwrap();
        let patched_flow = flow.apply_patches(&patches).unwrap();
        let bits: Vec<bool> = (0..flow.program.num_inputs).map(|i| i % 2 == 0).collect();
        let base_want = flow.netlist.eval_bools(&bits);
        let patched_want = patched_flow.netlist.eval_bools(&bits);
        assert_ne!(base_want, patched_want, "patch must be observable");

        let mut registry = ModelRegistry::new();
        registry
            .insert_flow("m", "1", flow, RuntimeOptions::default())
            .unwrap();
        let entry = registry.resolve("m").unwrap();
        let before = match entry.infer(&bits) {
            InferOutcome::Ok(out) => out,
            other => panic!("unexpected outcome: {other:?}"),
        };
        assert_eq!(before, base_want);

        // Unknown spec and corrupt delta are typed, non-destructive.
        assert!(matches!(
            registry.apply_patch("nope", &delta).unwrap_err(),
            ServeError::ModelNotFound { .. }
        ));
        assert!(matches!(
            registry.apply_patch("m", b"garbage").unwrap_err(),
            ServeError::Core(_)
        ));
        assert_eq!(registry.resolve("m").unwrap().stats().version, 0);

        let version = registry.apply_patch("m", &delta).unwrap();
        assert_eq!(version, 1);
        let entry = registry.resolve("m").unwrap();
        assert_eq!(entry.stats().version, 1);
        assert_eq!(entry.stats().swaps, 1);
        let after = match entry.infer(&bits) {
            InferOutcome::Ok(out) => out,
            other => panic!("unexpected outcome: {other:?}"),
        };
        let want: Vec<bool> = patched_flow.source.eval_bools(&bits);
        let outputs = patched_flow.netlist.outputs().len();
        assert_eq!(after.len(), outputs);
        assert_eq!(after, want[want.len() - outputs..].to_vec());

        // The stored source is now the patched artifact: the same delta
        // no longer binds (deltas chain), with a typed BaseMismatch.
        let err = registry.apply_patch("m", &delta).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Core(lbnn_core::CoreError::Artifact(
                    lbnn_core::ArtifactError::BaseMismatch { .. }
                ))
            ),
            "{err:?}"
        );
        registry.drain_all();
    }

    /// `load_dir` applies `name@version.lbnnp` deltas found next to
    /// their base artifacts at startup; an orphan delta is an error.
    #[test]
    fn load_dir_applies_sidecar_patches() {
        let dir = std::env::temp_dir().join(format!("lbnn-serve-patch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let flow = tiny_flow(10);
        let patches = negate_output_gates(&flow);
        let delta = flow.make_delta(&patches).unwrap();
        let patched_flow = flow.apply_patches(&patches).unwrap();
        flow.save(dir.join("hot@2.lbnn")).unwrap();
        std::fs::write(dir.join("hot@2.lbnnp"), &delta).unwrap();

        let registry = ModelRegistry::load_dir(&dir, &RuntimeOptions::default()).unwrap();
        let entry = registry.resolve("hot").unwrap();
        assert_eq!(entry.stats().version, 1, "startup patch must swap");
        let bits: Vec<bool> = (0..entry.num_inputs).map(|i| i % 3 != 0).collect();
        let got = match entry.infer(&bits) {
            InferOutcome::Ok(out) => out,
            other => panic!("unexpected outcome: {other:?}"),
        };
        let want = patched_flow.source.eval_bools(&bits);
        let outputs = patched_flow.netlist.outputs().len();
        assert_eq!(got, want[want.len() - outputs..].to_vec());
        registry.drain_all();

        // An orphan delta (no matching .lbnn) fails the load by name.
        std::fs::write(dir.join("ghost@1.lbnnp"), &delta).unwrap();
        let err = ModelRegistry::load_dir(&dir, &RuntimeOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::BadModelName { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = std::env::temp_dir().join(format!("lbnn-serve-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = ModelRegistry::load_dir(&dir, &RuntimeOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::EmptyRegistry { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
