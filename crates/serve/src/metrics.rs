//! Lock-free serving metrics and their text renderings.
//!
//! Two layers of counters, all plain atomics so the hot path pays a
//! handful of relaxed increments per request:
//!
//! * [`ModelMetrics`] — per registry entry: requests by outcome
//!   (ok / shed / bad-request / failed). Latency percentiles are *not*
//!   duplicated here — the runtime already keeps a reservoir
//!   ([`QueueStats`](lbnn_core::QueueStats)); the renderers pull from
//!   `Runtime::stats()` at scrape time.
//! * [`ServerMetrics`] — per listener: connections by protocol,
//!   requests by endpoint family, protocol errors.
//!
//! `GET /metrics` renders everything in the flat
//! `metric{label="value"} N` text shape scrapers expect; `GET /models`
//! renders a one-line-per-model human summary.

use std::sync::atomic::{AtomicU64, Ordering};

use lbnn_core::RuntimeStats;

/// Per-model request counters. One instance lives in each
/// [`ModelEntry`](crate::ModelEntry), shared by every connection thread.
#[derive(Debug, Default)]
pub struct ModelMetrics {
    /// Requests admitted and answered with output bits.
    pub ok: AtomicU64,
    /// Requests refused by admission control.
    pub shed: AtomicU64,
    /// Requests rejected before submission (arity, malformed input).
    pub bad_request: AtomicU64,
    /// Requests admitted but failed inside the engine.
    pub failed: AtomicU64,
}

impl ModelMetrics {
    /// Point-in-time copy of all counters: (ok, shed, bad_request, failed).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.ok.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.bad_request.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// Total requests seen, regardless of outcome.
    pub fn total(&self) -> u64 {
        let (ok, shed, bad, failed) = self.snapshot();
        ok + shed + bad + failed
    }
}

/// Per-listener counters, shared across all connection threads.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted that spoke HTTP.
    pub http_connections: AtomicU64,
    /// Connections accepted that spoke the binary protocol.
    pub binary_connections: AtomicU64,
    /// Connections refused because the connection cap was reached.
    pub connections_refused: AtomicU64,
    /// HTTP requests answered (any status).
    pub http_requests: AtomicU64,
    /// Binary frames answered (any status).
    pub binary_requests: AtomicU64,
    /// Requests that failed to parse at the protocol layer.
    pub protocol_errors: AtomicU64,
}

/// Render the `GET /metrics` scrape body.
///
/// `models` supplies, per model: its `name@version` id, its counters,
/// and the runtime's current [`RuntimeStats`].
pub fn render_metrics(
    server: &ServerMetrics,
    models: &[(String, &ModelMetrics, RuntimeStats)],
) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "lbnn_connections_total{{protocol=\"http\"}} {}",
        server.http_connections.load(Ordering::Relaxed)
    ));
    line(format!(
        "lbnn_connections_total{{protocol=\"binary\"}} {}",
        server.binary_connections.load(Ordering::Relaxed)
    ));
    line(format!(
        "lbnn_connections_refused_total {}",
        server.connections_refused.load(Ordering::Relaxed)
    ));
    line(format!(
        "lbnn_requests_total{{protocol=\"http\"}} {}",
        server.http_requests.load(Ordering::Relaxed)
    ));
    line(format!(
        "lbnn_requests_total{{protocol=\"binary\"}} {}",
        server.binary_requests.load(Ordering::Relaxed)
    ));
    line(format!(
        "lbnn_protocol_errors_total {}",
        server.protocol_errors.load(Ordering::Relaxed)
    ));
    for (id, metrics, stats) in models {
        let (ok, shed, bad, failed) = metrics.snapshot();
        for (outcome, n) in [
            ("ok", ok),
            ("shed", shed),
            ("bad_request", bad),
            ("failed", failed),
        ] {
            line(format!(
                "lbnn_model_requests_total{{model=\"{id}\",outcome=\"{outcome}\"}} {n}"
            ));
        }
        line(format!(
            "lbnn_model_in_flight{{model=\"{id}\"}} {}",
            stats.in_flight
        ));
        line(format!(
            "lbnn_model_micro_batches_total{{model=\"{id}\"}} {}",
            stats.micro_batches
        ));
        line(format!(
            "lbnn_model_serving_version{{model=\"{id}\"}} {}",
            stats.version
        ));
        line(format!(
            "lbnn_model_swaps_total{{model=\"{id}\"}} {}",
            stats.swaps
        ));
        for (q, v) in [
            ("0.5", stats.queue.p50_us),
            ("0.95", stats.queue.p95_us),
            ("0.99", stats.queue.p99_us),
        ] {
            line(format!(
                "lbnn_model_latency_us{{model=\"{id}\",quantile=\"{q}\"}} {v}"
            ));
        }
    }
    out
}

/// Render the `GET /models` listing: one line per model.
///
/// `models` supplies `(id, inputs, outputs, backend, metrics, stats)`.
pub fn render_models(
    models: &[(String, usize, usize, String, &ModelMetrics, RuntimeStats)],
) -> String {
    let mut out = String::new();
    for (id, inputs, outputs, backend, metrics, stats) in models {
        let (ok, shed, _, _) = metrics.snapshot();
        out.push_str(&format!(
            "{id} inputs={inputs} outputs={outputs} backend={backend} \
             requests={ok} shed={shed} in_flight={} p99_us={} \
             serving_version={} swaps={}\n",
            stats.in_flight, stats.queue.p99_us, stats.version, stats.swaps,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_core::QueueStats;

    fn zero_stats() -> RuntimeStats {
        RuntimeStats {
            requests: 0,
            micro_batches: 0,
            full_flushes: 0,
            deadline_flushes: 0,
            mean_lanes_per_batch: 0.0,
            shed: 0,
            in_flight: 0,
            version: 0,
            swaps: 0,
            completed_current: 0,
            completed_prior: 0,
            queue: QueueStats {
                peak_depth: 0,
                p50_us: 0.0,
                p95_us: 0.0,
                p99_us: 0.0,
            },
            elapsed_us: 0.0,
            requests_per_sec: 0.0,
        }
    }

    #[test]
    fn model_metrics_snapshot_and_total() {
        let m = ModelMetrics::default();
        m.ok.fetch_add(5, Ordering::Relaxed);
        m.shed.fetch_add(2, Ordering::Relaxed);
        m.bad_request.fetch_add(1, Ordering::Relaxed);
        assert_eq!(m.snapshot(), (5, 2, 1, 0));
        assert_eq!(m.total(), 8);
    }

    #[test]
    fn metrics_rendering_contains_every_series() {
        let server = ServerMetrics::default();
        server.http_requests.fetch_add(3, Ordering::Relaxed);
        let m = ModelMetrics::default();
        m.ok.fetch_add(7, Ordering::Relaxed);
        m.shed.fetch_add(4, Ordering::Relaxed);
        let text = render_metrics(&server, &[("xor@1".into(), &m, zero_stats())]);
        assert!(text.contains("lbnn_requests_total{protocol=\"http\"} 3"));
        assert!(text.contains("lbnn_model_requests_total{model=\"xor@1\",outcome=\"ok\"} 7"));
        assert!(text.contains("lbnn_model_requests_total{model=\"xor@1\",outcome=\"shed\"} 4"));
        assert!(text.contains("lbnn_model_latency_us{model=\"xor@1\",quantile=\"0.99\"}"));
        // Every line is a complete `name{...} value` or `name value` record.
        for line in text.lines() {
            assert!(line.starts_with("lbnn_"), "bad line: {line}");
            assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok());
        }
    }

    #[test]
    fn models_rendering_is_one_line_per_model() {
        let m = ModelMetrics::default();
        let text = render_models(&[
            ("a@1".into(), 4, 2, "scalar".into(), &m, zero_stats()),
            ("b@2".into(), 8, 1, "bitsliced:256".into(), &m, zero_stats()),
        ]);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("a@1 inputs=4 outputs=2 backend=scalar"));
        assert!(text.contains("b@2 inputs=8 outputs=1 backend=bitsliced:256"));
    }
}
