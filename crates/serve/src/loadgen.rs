//! Open-loop load generator (`lbnn-serve --bench`).
//!
//! Closed-loop benchmarks (send, wait, send) measure the server at
//! whatever rate the server allows — they cannot see queueing collapse,
//! and they suffer coordinated omission: a slow response delays the
//! *next* request, hiding the very latency it caused. This generator is
//! **open-loop**: request send times are scheduled up front from a
//! Poisson process at the target rate, and each request's latency is
//! measured from its *scheduled* time, so time the request spent
//! waiting behind a slow socket counts against the server, as it would
//! for a real independent client.
//!
//! Mechanics: `connections` persistent binary-protocol connections,
//! each with a writer (paces the schedule) and a reader (matches
//! responses to requests in order — the protocol guarantees ordering).
//! Input bits are derived deterministically from the request index, so
//! a run is reproducible given `seed`, and responses can be verified
//! bit-for-bit against the netlist oracle
//! ([`LoadGenOptions::verify_netlist`]).

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use lbnn_netlist::{eval, Lanes, Netlist};

use crate::wire::{self, FrameOutcome, InferRequest, Status};
use crate::ServeError;

/// Configuration of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenOptions {
    /// Model spec to request (`name` or `name@version`).
    pub model: String,
    /// Input bits per request (the model's input arity).
    pub num_inputs: usize,
    /// Target aggregate arrival rate, requests per second.
    pub rate: f64,
    /// Total requests across all connections.
    pub requests: usize,
    /// Persistent connections to spread the load over.
    pub connections: usize,
    /// Seed for the arrival process and the request bits.
    pub seed: u64,
    /// When set, every OK response is checked bit-for-bit against this
    /// netlist evaluated on the same inputs (the scalar oracle).
    pub verify_netlist: Option<Netlist>,
}

impl Default for LoadGenOptions {
    fn default() -> Self {
        LoadGenOptions {
            model: String::new(),
            num_inputs: 0,
            rate: 1000.0,
            requests: 1000,
            connections: 4,
            seed: 1,
            verify_netlist: None,
        }
    }
}

/// Results of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Requests that returned OK.
    pub ok: u64,
    /// Requests the server shed.
    pub shed: u64,
    /// Requests answered with any other status.
    pub errors: u64,
    /// OK responses that mismatched the oracle (0 unless verifying).
    pub mismatches: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Achieved throughput: OK responses per second of wall clock.
    pub achieved_rps: f64,
    /// Over-the-wire latency percentiles in microseconds, measured from
    /// each request's *scheduled* send time (p50, p95, p99).
    pub p50_us: f64,
    /// 95th percentile (same clock).
    pub p95_us: f64,
    /// 99th percentile (same clock).
    pub p99_us: f64,
    /// Worst single latency observed.
    pub max_us: f64,
}

impl std::fmt::Display for LoadGenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sent {} requests in {:.2}s: {} ok ({:.0} rps), {} shed, {} errors{}",
            self.ok + self.shed + self.errors,
            self.elapsed.as_secs_f64(),
            self.ok,
            self.achieved_rps,
            self.shed,
            self.errors,
            if self.mismatches > 0 {
                format!(", {} ORACLE MISMATCHES", self.mismatches)
            } else {
                String::new()
            }
        )?;
        write!(
            f,
            "latency (from scheduled send): p50={:.0}us p95={:.0}us p99={:.0}us max={:.0}us",
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

/// xorshift64* — deterministic, dependency-free uniform stream.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform in (0, 1], never exactly 0 (safe for `ln`).
fn next_unit(state: &mut u64) -> f64 {
    ((next_u64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Deterministic input bits for request `index` under `seed`.
pub fn request_bits(seed: u64, index: u64, num_inputs: usize) -> Vec<bool> {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(1);
    // Warm the stream so small seeds don't correlate across indices.
    next_u64(&mut state);
    (0..num_inputs)
        .map(|_| next_u64(&mut state) & 1 == 1)
        .collect()
}

/// Evaluate the oracle netlist on one request's bits.
fn oracle_outputs(netlist: &Netlist, bits: &[bool]) -> Option<Vec<bool>> {
    let lanes: Vec<Lanes> = bits.iter().map(|&b| Lanes::from_bools(&[b])).collect();
    let outs = eval::evaluate(netlist, &lanes).ok()?;
    Some(outs.iter().map(|l| l.get(0)).collect())
}

/// Run the load generator against `addr`. Blocks until every request
/// has a response (or a connection fails hard).
pub fn run(addr: SocketAddr, options: &LoadGenOptions) -> Result<LoadGenReport, ServeError> {
    if options.requests == 0 || options.rate <= 0.0 {
        return Err(ServeError::Protocol {
            reason: "load generator needs requests > 0 and rate > 0".into(),
        });
    }
    let connections = options.connections.max(1).min(options.requests);

    // Pre-plan the Poisson schedule: exponential inter-arrivals at the
    // aggregate rate, requests round-robined over connections.
    let mut rng = options.seed ^ 0xD6E8_FEB8_6659_FD93;
    // Avoid a degenerate all-zeros state.
    if rng == 0 {
        rng = 1;
    }
    let mut offsets = Vec::with_capacity(options.requests);
    let mut t = 0.0f64;
    for _ in 0..options.requests {
        t += -next_unit(&mut rng).ln() / options.rate;
        offsets.push(Duration::from_secs_f64(t));
    }
    let mut per_conn: Vec<Vec<(u64, Duration)>> = vec![Vec::new(); connections];
    for (i, &offset) in offsets.iter().enumerate() {
        per_conn[i % connections].push((i as u64, offset));
    }

    let start = Instant::now();
    let mut workers = Vec::new();
    for plan in per_conn {
        let model = options.model.clone();
        let num_inputs = options.num_inputs;
        let seed = options.seed;
        let verify = options.verify_netlist.clone();
        workers.push(std::thread::spawn(move || {
            conn_worker(addr, &model, num_inputs, seed, start, plan, verify.as_ref())
        }));
    }

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    let mut mismatches = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(options.requests);
    for worker in workers {
        let outcome = worker.join().map_err(|_| ServeError::Protocol {
            reason: "load generator connection thread panicked".into(),
        })??;
        ok += outcome.ok;
        shed += outcome.shed;
        errors += outcome.errors;
        mismatches += outcome.mismatches;
        latencies.extend(outcome.latencies_us);
    }
    let elapsed = start.elapsed();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        // Nearest-rank on the sorted sample.
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    Ok(LoadGenReport {
        ok,
        shed,
        errors,
        mismatches,
        elapsed,
        achieved_rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        max_us: latencies.last().copied().unwrap_or(0.0),
    })
}

/// What one connection worker brings home.
struct ConnOutcome {
    ok: u64,
    shed: u64,
    errors: u64,
    mismatches: u64,
    latencies_us: Vec<f64>,
}

/// Drive one persistent connection through its share of the schedule.
fn conn_worker(
    addr: SocketAddr,
    model: &str,
    num_inputs: usize,
    seed: u64,
    start: Instant,
    plan: Vec<(u64, Duration)>,
    verify: Option<&Netlist>,
) -> Result<ConnOutcome, ServeError> {
    let io_err = |what: &str, e: std::io::Error| ServeError::Io {
        target: what.to_string(),
        reason: e.to_string(),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    stream
        .write_all(&wire::MAGIC)
        .map_err(|e| io_err("handshake", e))?;
    let mut reader = stream.try_clone().map_err(|e| io_err("clone socket", e))?;

    // Writer runs inline; the reader thread matches responses in order.
    let reader_plan: Vec<(u64, Duration)> = plan.clone();
    let verify = verify.cloned();
    let reader_thread = std::thread::spawn(move || -> Result<ConnOutcome, ServeError> {
        let mut outcome = ConnOutcome {
            ok: 0,
            shed: 0,
            errors: 0,
            mismatches: 0,
            latencies_us: Vec::with_capacity(reader_plan.len()),
        };
        let mut buf = Vec::new();
        for &(index, scheduled) in &reader_plan {
            let payload = loop {
                match wire::read_frame(&mut reader, &mut buf) {
                    FrameOutcome::Ready(p) => break p,
                    FrameOutcome::NeedMore => continue,
                    FrameOutcome::Closed | FrameOutcome::Bad(_) => {
                        return Err(ServeError::Protocol {
                            reason: "server closed mid-run".into(),
                        });
                    }
                    FrameOutcome::Io(e) => {
                        return Err(ServeError::Io {
                            target: "read response".into(),
                            reason: e.to_string(),
                        });
                    }
                }
            };
            // Latency from the *scheduled* send time: open-loop clock.
            let now = start.elapsed();
            let lat = now.saturating_sub(scheduled).as_secs_f64() * 1e6;
            let resp = wire::decode_response(&payload)
                .map_err(|reason| ServeError::Protocol { reason })?;
            match resp.status {
                Status::Ok => {
                    outcome.ok += 1;
                    outcome.latencies_us.push(lat);
                    if let Some(netlist) = verify.as_ref() {
                        let bits = request_bits(seed, index, num_inputs);
                        match oracle_outputs(netlist, &bits) {
                            Some(expected) if expected == resp.bits => {}
                            _ => outcome.mismatches += 1,
                        }
                    }
                }
                Status::Shed => {
                    outcome.shed += 1;
                    outcome.latencies_us.push(lat);
                }
                _ => outcome.errors += 1,
            }
        }
        Ok(outcome)
    });

    for &(index, scheduled) in &plan {
        // Open loop: pace by the wall clock, never by responses.
        loop {
            let now = start.elapsed();
            if now >= scheduled {
                break;
            }
            std::thread::sleep((scheduled - now).min(Duration::from_millis(5)));
        }
        let req = InferRequest {
            model: model.to_string(),
            bits: request_bits(seed, index, num_inputs),
        };
        wire::write_frame(&mut stream, &wire::encode_request(&req))
            .map_err(|e| io_err("send", e))?;
    }
    reader_thread.join().map_err(|_| ServeError::Protocol {
        reason: "load generator reader thread panicked".into(),
    })?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_offsets_are_monotone_and_rate_scaled() {
        let mut rng = 42u64;
        let rate = 1000.0;
        let n = 4000;
        let mut t = 0.0;
        let mut last = 0.0;
        for _ in 0..n {
            t += -next_unit(&mut rng).ln() / rate;
            assert!(t > last);
            last = t;
        }
        // Mean inter-arrival should land near 1/rate (law of large numbers).
        let mean = t / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.1 / rate, "mean={mean}");
    }

    #[test]
    fn request_bits_are_deterministic_and_vary_by_index() {
        let a = request_bits(7, 0, 64);
        let b = request_bits(7, 0, 64);
        let c = request_bits(7, 1, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn zero_requests_is_rejected() {
        let options = LoadGenOptions {
            requests: 0,
            ..LoadGenOptions::default()
        };
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(run(addr, &options).is_err());
    }
}
