//! # lbnn-serve — the network front of "compile once, serve anywhere"
//!
//! Everything below this crate is in-process: a consumer links `lbnn`,
//! loads an artifact, and calls [`Runtime::submit`](lbnn_core::Runtime).
//! The paper's deployment pitch — compile LogicNets-style netlists once
//! and serve them at extreme rates — only reaches "millions of users"
//! with a wire in front of the engine. This crate is that wire, built on
//! `std::net` alone (no external dependencies):
//!
//! ```text
//!             TCP accept loop (bounded, non-blocking, drainable)
//!                  │ per-connection thread, protocol sniffed
//!        ┌─────────┴──────────┐
//!   HTTP/1.1 ([`http`])   binary frames ([`wire`], the fast path)
//!        └─────────┬──────────┘
//!         [`ModelRegistry`]: "name@version" → [`ModelEntry`]
//!                  │   (artifact discovered on disk, one Runtime each)
//!        admission control: Runtime::try_submit
//!            ├── saturated → 429 / `SHED` immediately   (never blocks
//!            └── admitted  → micro-batched bit-sliced    the accept
//!                            execution, per-request reply  loop)
//! ```
//!
//! * [`ModelRegistry`] scans a directory of `*.lbnn` artifacts
//!   (`name@version.lbnn`), loads flows and whole models alike
//!   ([`ArtifactKind::peek`](lbnn_core::ArtifactKind::peek)), and gives
//!   each its own [`Runtime`](lbnn_core::Runtime).
//! * [`Server`] serves both protocols on one port, tracks per-model and
//!   per-endpoint [`metrics`] (`GET /metrics`, `GET /models`), sheds
//!   load per model when a runtime saturates, and drains gracefully:
//!   stop accepting, resolve every accepted request, report final
//!   stats.
//! * [`loadgen`] is the companion open-loop load generator
//!   (`lbnn-serve --bench`): Poisson arrivals at a target rate over
//!   persistent binary-protocol connections, latency percentiles
//!   measured over the wire, optional bit-exact verification against
//!   the netlist oracle.

#![deny(missing_docs)]

use std::error::Error;
use std::fmt;

use lbnn_core::CoreError;

pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod wire;

pub use http::{Request, WireLimits};
pub use loadgen::{LoadGenOptions, LoadGenReport};
pub use metrics::{ModelMetrics, ServerMetrics};
pub use registry::{InferOutcome, ModelEntry, ModelRegistry};
pub use server::{ServeReport, Server, ServerHandle, ServerOptions};

/// Failure modes of the serving front-end (registry construction,
/// binding, the load generator). Per-request problems are not errors —
/// they are responses (4xx/5xx, or a binary status code) — so this type
/// only covers failures that prevent serving at all.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// An engine/runtime construction error bubbled up from `lbnn-core`.
    Core(CoreError),
    /// A filesystem or socket operation failed.
    Io {
        /// What was being touched (path or address).
        target: String,
        /// Stringified OS error.
        reason: String,
    },
    /// An artifact file in the model directory could not be loaded.
    Artifact {
        /// Path of the offending file.
        path: String,
        /// The typed artifact error.
        source: CoreError,
    },
    /// An artifact filename does not parse as `name[@version].lbnn`.
    BadModelName {
        /// The offending file stem.
        stem: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Two artifacts resolved to the same `name@version`.
    DuplicateModel {
        /// Model name.
        name: String,
        /// Model version.
        version: String,
    },
    /// The model directory exists but holds no loadable artifact.
    EmptyRegistry {
        /// The scanned directory.
        dir: String,
    },
    /// A patch (or other admin operation) named a model the registry
    /// does not serve.
    ModelNotFound {
        /// The `name[@version]` spec that resolved nothing.
        spec: String,
    },
    /// The load generator got a response that violates the protocol.
    Protocol {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "serving runtime error: {e}"),
            ServeError::Io { target, reason } => write!(f, "{target}: {reason}"),
            ServeError::Artifact { path, source } => {
                write!(f, "cannot load artifact {path}: {source}")
            }
            ServeError::BadModelName { stem, reason } => {
                write!(f, "bad model filename `{stem}.lbnn`: {reason}")
            }
            ServeError::DuplicateModel { name, version } => {
                write!(f, "duplicate model `{name}@{version}` in the registry")
            }
            ServeError::EmptyRegistry { dir } => {
                write!(f, "no loadable `.lbnn` artifacts found in {dir}")
            }
            ServeError::ModelNotFound { spec } => {
                write!(f, "no model `{spec}` in the registry")
            }
            ServeError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Artifact { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = ServeError::EmptyRegistry { dir: "/m".into() };
        assert!(e.to_string().contains("/m"));
        assert!(e.source().is_none());
        let e = ServeError::Artifact {
            path: "a.lbnn".into(),
            source: CoreError::Artifact(lbnn_core::ArtifactError::BadMagic),
        };
        assert!(e.to_string().contains("a.lbnn"));
        assert!(e.source().is_some());
        let e: ServeError = CoreError::Overloaded {
            in_flight: 9,
            limit: 8,
        }
        .into();
        assert!(e.to_string().contains("overloaded"));
    }
}
