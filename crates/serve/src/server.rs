//! The TCP front-end: accept loop, protocol sniffing, routing,
//! admission control, and graceful drain.
//!
//! One listener serves both protocols. The first four bytes of a
//! connection decide: `LBNB` ([`crate::wire::MAGIC`]) selects binary
//! framing, anything else is treated as HTTP/1.1. Each accepted
//! connection gets its own thread (bounded by
//! [`ServerOptions::max_connections`]); the accept loop itself never
//! performs model work, so it cannot be blocked by a saturated runtime
//! — saturation turns into *immediate* `429`/`SHED` responses from the
//! connection threads via [`Runtime::try_submit`](lbnn_core::Runtime).
//!
//! ## HTTP surface
//!
//! ```text
//! GET  /healthz                      liveness probe
//! GET  /models                       one line per model
//! GET  /metrics                      scrape-friendly counters
//! GET  /v1/models/{name[@version]}   single model info
//! POST /v1/models/{name[@version]}/infer   body "0101…" → "10…"
//! POST /admin/shutdown               begin graceful drain (if enabled)
//! POST /admin/patch/{name[@version]} body = `.lbnnp` delta → hot-swap (if enabled)
//! ```
//!
//! ## Graceful drain
//!
//! [`ServerHandle::shutdown`] (or `POST /admin/shutdown`, or a unix
//! signal in the binary) flips one flag. The accept loop stops taking
//! connections; connection threads notice within one socket-timeout
//! tick, finish the request in hand, and close. While they finish, the
//! server repeatedly flushes every runtime so partially-filled
//! micro-batches resolve promptly, then drains the registry. Every
//! request that was accepted gets its response; nothing is dropped.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lbnn_core::RuntimeStats;

use crate::http::{self, ParseError, ReadOutcome, Request, WireLimits};
use crate::metrics::{render_metrics, render_models, ServerMetrics};
use crate::registry::{InferOutcome, ModelRegistry};
use crate::wire::{self, FrameOutcome, InferResponse, Status};
use crate::ServeError;

/// Socket read timeout: how quickly an idle connection thread notices
/// the shutdown flag. Short enough for a snappy drain, long enough to
/// stay off the scheduler.
const READ_TICK: Duration = Duration::from_millis(50);

/// Accept-loop poll interval while the listener is non-blocking.
const ACCEPT_TICK: Duration = Duration::from_millis(2);

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Maximum simultaneously open connections; further accepts are
    /// dropped (and counted) until one closes.
    pub max_connections: usize,
    /// Per-connection byte ceilings for the HTTP parser.
    pub limits: WireLimits,
    /// Whether `POST /admin/shutdown` is routed (tests and supervised
    /// deployments; the binary also wires unix signals).
    pub enable_admin: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_connections: 256,
            limits: WireLimits::default(),
            enable_admin: true,
        }
    }
}

/// Shared shutdown switch for a running [`Server`].
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, finish everything accepted.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Has shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Final per-model accounting, reported once the server has drained.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// `name@version`.
    pub id: String,
    /// Requests answered with output bits.
    pub ok: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests rejected before submission.
    pub bad_request: u64,
    /// Requests that failed inside the engine.
    pub failed: u64,
    /// Final runtime statistics (latency percentiles included).
    pub stats: RuntimeStats,
}

/// What the server did over its lifetime, returned by [`Server::serve`]
/// after a graceful drain completes.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// HTTP connections accepted.
    pub http_connections: u64,
    /// Binary-protocol connections accepted.
    pub binary_connections: u64,
    /// Connections dropped at the connection cap.
    pub connections_refused: u64,
    /// HTTP requests answered.
    pub http_requests: u64,
    /// Binary frames answered.
    pub binary_requests: u64,
    /// Protocol-level parse failures.
    pub protocol_errors: u64,
    /// Per-model final accounting.
    pub models: Vec<ModelReport>,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "connections: {} http, {} binary, {} refused; requests: {} http, {} binary, {} protocol errors",
            self.http_connections,
            self.binary_connections,
            self.connections_refused,
            self.http_requests,
            self.binary_requests,
            self.protocol_errors,
        )?;
        for m in &self.models {
            writeln!(
                f,
                "  {}: ok={} shed={} bad={} failed={} p50={:.0}us p95={:.0}us p99={:.0}us",
                m.id,
                m.ok,
                m.shed,
                m.bad_request,
                m.failed,
                m.stats.queue.p50_us,
                m.stats.queue.p95_us,
                m.stats.queue.p99_us,
            )?;
        }
        Ok(())
    }
}

/// A bound listener plus everything connection threads share.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    options: ServerOptions,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    active: AtomicUsize,
    limits: WireLimits,
    enable_admin: bool,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) over `registry`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: ModelRegistry,
        options: ServerOptions,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io {
            target: "bind".into(),
            reason: e.to_string(),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Io {
            target: "local_addr".into(),
            reason: e.to_string(),
        })?;
        Ok(Server {
            listener,
            local_addr,
            registry: Arc::new(registry),
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(ServerMetrics::default()),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown switch usable from any thread (or a signal watcher).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Run until shutdown is requested, then drain and report.
    ///
    /// Blocks the calling thread for the server's whole life. All model
    /// work happens on connection threads and runtime workers.
    pub fn serve(self) -> Result<ServeReport, ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io {
                target: "set_nonblocking".into(),
                reason: e.to_string(),
            })?;
        let shared = Arc::new(Shared {
            registry: Arc::clone(&self.registry),
            metrics: Arc::clone(&self.metrics),
            shutdown: Arc::clone(&self.shutdown),
            active: AtomicUsize::new(0),
            limits: self.options.limits,
            enable_admin: self.options.enable_admin,
        });
        while !self.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if shared.active.load(Ordering::Acquire) >= self.options.max_connections {
                        shared
                            .metrics
                            .connections_refused
                            .fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    shared.active.fetch_add(1, Ordering::AcqRel);
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        shared.active.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(ServeError::Io {
                        target: "accept".into(),
                        reason: e.to_string(),
                    });
                }
            }
        }
        // Drain: no new connections. Keep flushing partial micro-batches
        // so requests held by still-active connection threads resolve,
        // then wait the registry fully idle.
        while shared.active.load(Ordering::Acquire) > 0 {
            for entry in self.registry.entries() {
                entry.runtime.flush();
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.registry.drain_all();
        let models = self
            .registry
            .entries()
            .iter()
            .map(|entry| {
                let (ok, shed, bad_request, failed) = entry.metrics.snapshot();
                ModelReport {
                    id: entry.id(),
                    ok,
                    shed,
                    bad_request,
                    failed,
                    stats: entry.stats(),
                }
            })
            .collect();
        Ok(ServeReport {
            http_connections: self.metrics.http_connections.load(Ordering::Relaxed),
            binary_connections: self.metrics.binary_connections.load(Ordering::Relaxed),
            connections_refused: self.metrics.connections_refused.load(Ordering::Relaxed),
            http_requests: self.metrics.http_requests.load(Ordering::Relaxed),
            binary_requests: self.metrics.binary_requests.load(Ordering::Relaxed),
            protocol_errors: self.metrics.protocol_errors.load(Ordering::Relaxed),
            models,
        })
    }
}

/// Sniff the protocol and run the matching per-connection loop.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    // Accumulate 4 bytes to sniff; HTTP methods never start with "LBNB".
    let mut chunk = [0u8; 4096];
    loop {
        if buf.len() >= 4 {
            break;
        }
        use std::io::Read;
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    if buf[..4] == wire::MAGIC {
        shared
            .metrics
            .binary_connections
            .fetch_add(1, Ordering::Relaxed);
        buf.drain(..4);
        serve_binary(stream, buf, shared);
    } else {
        shared
            .metrics
            .http_connections
            .fetch_add(1, Ordering::Relaxed);
        serve_http(stream, buf, shared);
    }
}

/// Per-connection loop for the binary protocol.
fn serve_binary(mut stream: TcpStream, mut buf: Vec<u8>, shared: &Shared) {
    loop {
        match wire::read_frame(&mut stream, &mut buf) {
            FrameOutcome::Ready(payload) => {
                shared
                    .metrics
                    .binary_requests
                    .fetch_add(1, Ordering::Relaxed);
                let resp = match wire::decode_request(&payload) {
                    Ok(req) => match shared.registry.resolve(&req.model) {
                        Some(entry) => match entry.infer(&req.bits) {
                            InferOutcome::Ok(bits) => InferResponse {
                                status: Status::Ok,
                                bits,
                                message: String::new(),
                            },
                            InferOutcome::Shed => InferResponse {
                                status: Status::Shed,
                                bits: Vec::new(),
                                message: String::new(),
                            },
                            InferOutcome::BadArity(msg) => InferResponse {
                                status: Status::BadRequest,
                                bits: Vec::new(),
                                message: msg,
                            },
                            InferOutcome::Failed(msg) => InferResponse {
                                status: Status::Error,
                                bits: Vec::new(),
                                message: msg,
                            },
                        },
                        None => InferResponse {
                            status: Status::NotFound,
                            bits: Vec::new(),
                            message: format!("no model `{}` in the registry", req.model),
                        },
                    },
                    Err(msg) => {
                        shared
                            .metrics
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        InferResponse {
                            status: Status::BadRequest,
                            bits: Vec::new(),
                            message: msg,
                        }
                    }
                };
                if wire::write_frame(&mut stream, &wire::encode_response(&resp)).is_err() {
                    return;
                }
            }
            FrameOutcome::NeedMore => {
                // Only hang up between frames, never mid-frame: a request
                // already on the wire still gets its response.
                if shared.shutdown.load(Ordering::Acquire) && buf.is_empty() {
                    return;
                }
            }
            FrameOutcome::Closed => return,
            FrameOutcome::Bad(_) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let resp = InferResponse {
                    status: Status::BadRequest,
                    bits: Vec::new(),
                    message: "framing violation".into(),
                };
                let _ = wire::write_frame(&mut stream, &wire::encode_response(&resp));
                return;
            }
            FrameOutcome::Io(_) => return,
        }
    }
}

/// Per-connection loop for HTTP.
fn serve_http(mut stream: TcpStream, mut buf: Vec<u8>, shared: &Shared) {
    loop {
        match http::read_request(&mut stream, &mut buf, &shared.limits) {
            ReadOutcome::Ready(req) => {
                shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
                let draining = shared.shutdown.load(Ordering::Acquire);
                let keep_alive = req.keep_alive && !draining;
                let (status, body) = route(&req, shared);
                if http::write_response(&mut stream, status, &body, keep_alive).is_err() {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            ReadOutcome::NeedMore => {
                if shared.shutdown.load(Ordering::Acquire) && buf.is_empty() {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Bad(e) => {
                shared
                    .metrics
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                if e != ParseError::ConnectionClosed {
                    let _ = http::write_response(&mut stream, e.status(), &format!("{e}\n"), false);
                }
                return;
            }
            ReadOutcome::Io(_) => return,
        }
    }
}

/// Map one parsed HTTP request to `(status, body)`.
fn route(req: &Request, shared: &Shared) -> (u16, String) {
    let registry = &shared.registry;
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "ok\n".into()),
        ("GET", "/models") => {
            let rows: Vec<_> = registry
                .entries()
                .iter()
                .map(|e| {
                    (
                        e.id(),
                        e.num_inputs,
                        e.num_outputs,
                        e.backend.clone(),
                        &e.metrics,
                        e.stats(),
                    )
                })
                .collect();
            (200, render_models(&rows))
        }
        ("GET", "/metrics") => {
            let rows: Vec<_> = registry
                .entries()
                .iter()
                .map(|e| (e.id(), &e.metrics, e.stats()))
                .collect();
            (200, render_metrics(&shared.metrics, &rows))
        }
        ("POST", "/admin/shutdown") if shared.enable_admin => {
            shared.shutdown.store(true, Ordering::Release);
            (200, "draining\n".into())
        }
        (method, path) => {
            if let Some(spec) = path.strip_prefix("/admin/patch/") {
                if !shared.enable_admin {
                    return (404, "not found\n".into());
                }
                if method != "POST" {
                    return (405, "use POST\n".into());
                }
                return patch_http(spec, &req.body, shared);
            }
            if let Some(rest) = path.strip_prefix("/v1/models/") {
                if let Some(spec) = rest.strip_suffix("/infer") {
                    return match method {
                        "POST" => infer_http(spec, &req.body, shared),
                        _ => (405, "use POST\n".into()),
                    };
                }
                if method != "GET" {
                    return (405, "use GET\n".into());
                }
                return match registry.resolve(rest) {
                    Some(e) => (
                        200,
                        format!(
                            "{} inputs={} outputs={} backend={}\n",
                            e.id(),
                            e.num_inputs,
                            e.num_outputs,
                            e.backend
                        ),
                    ),
                    None => (404, format!("no model `{rest}` in the registry\n")),
                };
            }
            (404, "not found\n".into())
        }
    }
}

/// `POST /admin/patch/{spec}`: raw `.lbnnp` delta body in, hot-swap the
/// named model onto the patched compile. Status codes make the failure
/// class machine-readable: `404` unknown model, `409` the delta binds to
/// a different base artifact, `400` anything malformed.
fn patch_http(spec: &str, body: &[u8], shared: &Shared) -> (u16, String) {
    use lbnn_core::{ArtifactError, CoreError};
    match shared.registry.apply_patch(spec, body) {
        Ok(version) => (200, format!("{spec} now serving version {version}\n")),
        Err(ServeError::ModelNotFound { spec }) => {
            (404, format!("no model `{spec}` in the registry\n"))
        }
        Err(ServeError::Core(CoreError::Artifact(e @ ArtifactError::BaseMismatch { .. }))) => {
            (409, format!("{e}\n"))
        }
        Err(e) => (400, format!("{e}\n")),
    }
}

/// `POST /v1/models/{spec}/infer`: ASCII bit-string body in, bit-string out.
fn infer_http(spec: &str, body: &[u8], shared: &Shared) -> (u16, String) {
    let Some(entry) = shared.registry.resolve(spec) else {
        return (404, format!("no model `{spec}` in the registry\n"));
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t.trim(),
        Err(_) => {
            entry.metrics.bad_request.fetch_add(1, Ordering::Relaxed);
            return (400, "body must be an ASCII string of '0'/'1'\n".into());
        }
    };
    let mut bits = Vec::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '0' => bits.push(false),
            '1' => bits.push(true),
            _ => {
                entry.metrics.bad_request.fetch_add(1, Ordering::Relaxed);
                return (400, format!("invalid character {c:?} in bit string\n"));
            }
        }
    }
    match entry.infer(&bits) {
        InferOutcome::Ok(out) => {
            let mut s: String = out.iter().map(|&b| if b { '1' } else { '0' }).collect();
            s.push('\n');
            (200, s)
        }
        InferOutcome::Shed => (429, "SHED\n".into()),
        InferOutcome::BadArity(msg) => (400, format!("{msg}\n")),
        InferOutcome::Failed(msg) => (500, format!("{msg}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_core::{Flow, LpuConfig, RuntimeOptions};
    use lbnn_netlist::random::RandomDag;
    use std::io::{Read, Write};

    fn tiny_registry() -> ModelRegistry {
        let netlist = RandomDag::strict(12, 4, 8).generate(11);
        let flow = Flow::builder(&netlist)
            .config(LpuConfig::new(8, 4))
            .compile()
            .unwrap();
        let mut registry = ModelRegistry::new();
        registry
            .insert_flow("t", "1", flow, RuntimeOptions::default())
            .unwrap();
        registry
    }

    fn start(
        registry: ModelRegistry,
    ) -> (
        SocketAddr,
        ServerHandle,
        std::thread::JoinHandle<ServeReport>,
    ) {
        let server = Server::bind("127.0.0.1:0", registry, ServerOptions::default()).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve().unwrap());
        (addr, handle, join)
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_models_metrics_and_drains() {
        let (addr, handle, join) = start(tiny_registry());
        assert!(http_get(addr, "/healthz").contains("ok"));
        let models = http_get(addr, "/models");
        assert!(models.contains("t@1 inputs="), "got: {models}");
        assert!(http_get(addr, "/metrics").contains("lbnn_model_requests_total"));
        assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"));
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.http_connections, 4);
        assert_eq!(report.models.len(), 1);
    }

    fn http_post(addr: SocketAddr, path: &str, body: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .unwrap();
        stream.write_all(body).unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    }

    /// `POST /admin/patch/{model}` with a `.lbnnp` body hot-swaps the
    /// served compile: responses flip to the patched oracle, the
    /// version counters surface in `/metrics`, and the error statuses
    /// are per failure class (404 / 409 / 400).
    #[test]
    fn admin_patch_hot_swaps_over_http() {
        use lbnn_netlist::PatchSet;
        let netlist = RandomDag::strict(12, 4, 8).generate(19);
        let flow = Flow::builder(&netlist)
            .config(LpuConfig::new(8, 4))
            .compile()
            .unwrap();
        // Negate every output gate: the swap is observable on any input.
        let patches: PatchSet = flow
            .netlist
            .outputs()
            .iter()
            .map(|o| o.node)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .filter_map(|id| flow.netlist.node(id).op().negated().map(|neg| (id, neg)))
            .collect();
        assert!(!patches.is_empty());
        let delta = flow.make_delta(&patches).unwrap();
        let patched = flow.apply_patches(&patches).unwrap();
        let width = flow.program.num_inputs;
        let bits: Vec<bool> = (0..width).map(|i| i % 2 == 1).collect();
        let body: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let base_want: String = flow
            .netlist
            .eval_bools(&bits)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        let patched_want: String = patched
            .netlist
            .eval_bools(&bits)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        assert_ne!(base_want, patched_want);

        let mut registry = ModelRegistry::new();
        registry
            .insert_flow("p", "1", flow, RuntimeOptions::default())
            .unwrap();
        let (addr, handle, join) = start(registry);

        let resp = http_post(addr, "/v1/models/p/infer", body.as_bytes());
        assert!(resp.contains(&base_want), "got: {resp}");

        // Failure classes first: unknown model, corrupt delta.
        assert!(http_post(addr, "/admin/patch/ghost", &delta).starts_with("HTTP/1.1 404"));
        assert!(http_post(addr, "/admin/patch/p", b"junk").starts_with("HTTP/1.1 400"));

        let resp = http_post(addr, "/admin/patch/p", &delta);
        assert!(resp.starts_with("HTTP/1.1 200"), "got: {resp}");
        assert!(resp.contains("serving version 1"), "got: {resp}");

        let resp = http_post(addr, "/v1/models/p/infer", body.as_bytes());
        assert!(resp.contains(&patched_want), "got: {resp}");

        // Replaying the same delta now mismatches the (patched) base.
        assert!(http_post(addr, "/admin/patch/p", &delta).starts_with("HTTP/1.1 409"));

        let metrics = http_get(addr, "/metrics");
        assert!(
            metrics.contains("lbnn_model_serving_version{model=\"p@1\"} 1"),
            "got: {metrics}"
        );
        assert!(
            metrics.contains("lbnn_model_swaps_total{model=\"p@1\"} 1"),
            "got: {metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn admin_shutdown_ends_serve() {
        let (addr, _handle, join) = start(tiny_registry());
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /admin/shutdown HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.contains("draining"));
        let report = join.join().unwrap();
        assert_eq!(report.http_requests, 1);
    }
}
