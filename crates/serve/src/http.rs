//! Minimal, hand-rolled HTTP/1.1 for the serving front-end.
//!
//! Scope is deliberately narrow: enough of RFC 9112 to speak to `curl`
//! and load-balancer health checks — request line, headers,
//! `Content-Length` bodies, keep-alive. No chunked encoding, no
//! trailers, no continuation lines. Anything outside that subset gets a
//! precise 4xx instead of silent misbehaviour.
//!
//! The parser is *resumable*: [`read_request`] appends onto a
//! caller-owned buffer and distinguishes "need more bytes" (a read
//! timeout while the server checks its shutdown flag) from "this will
//! never parse". That lets connection threads use short socket timeouts
//! for drain responsiveness without corrupting a half-received request,
//! and makes pipelined requests fall out naturally: leftover bytes stay
//! in the buffer for the next call.

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceilings on what a connection may send.
///
/// Both limits exist so that a misbehaving (or malicious) client costs
/// a bounded amount of memory before being rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Maximum bytes of request line + headers (until `\r\n\r\n`).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted for a body.
    pub max_body_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed HTTP request: the subset the server routes on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path, without query string.
    pub path: String,
    /// Raw query string (after `?`), empty if absent.
    pub query: String,
    /// Body bytes (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Why a byte stream failed to parse as an acceptable request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line has no `:` separator.
    BadHeader,
    /// `Content-Length` is not a decimal integer.
    BadContentLength,
    /// Head grew past [`WireLimits::max_head_bytes`].
    HeadTooLarge,
    /// Declared body exceeds [`WireLimits::max_body_bytes`].
    BodyTooLarge,
    /// HTTP version other than 1.0/1.1.
    UnsupportedVersion,
    /// `Transfer-Encoding` was sent; this server only does lengths.
    UnsupportedTransferEncoding,
    /// The peer closed mid-request (empty buffer ⇒ clean close).
    ConnectionClosed,
}

impl ParseError {
    /// The HTTP status code a server should answer this failure with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedVersion => 505,
            ParseError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadHeader => "malformed header line",
            ParseError::BadContentLength => "unparseable Content-Length",
            ParseError::HeadTooLarge => "request head too large",
            ParseError::BodyTooLarge => "request body too large",
            ParseError::UnsupportedVersion => "unsupported HTTP version",
            ParseError::UnsupportedTransferEncoding => {
                "Transfer-Encoding not supported (use Content-Length)"
            }
            ParseError::ConnectionClosed => "connection closed mid-request",
        };
        f.write_str(msg)
    }
}

/// Outcome of one [`read_request`] attempt.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was parsed; its bytes were consumed from the
    /// buffer (pipelined followers remain).
    Ready(Request),
    /// The socket timed out before a full request arrived; the partial
    /// bytes stay buffered — call again.
    NeedMore,
    /// The peer closed with an empty buffer: a clean end of connection.
    Closed,
    /// The stream can never parse (or hit a limit); answer with
    /// [`ParseError::status`] and close.
    Bad(ParseError),
    /// A socket error other than timeout.
    Io(io::Error),
}

/// Try to parse one request out of `buf`, reading from `reader` as
/// needed. `buf` persists across calls on the same connection.
pub fn read_request<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    limits: &WireLimits,
) -> ReadOutcome {
    let mut chunk = [0u8; 4096];
    loop {
        // Try to parse what we already have before blocking on the socket.
        match try_parse(buf, limits) {
            Ok(Some((req, consumed))) => {
                buf.drain(..consumed);
                return ReadOutcome::Ready(req);
            }
            Ok(None) => {}
            Err(e) => return ReadOutcome::Bad(e),
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Bad(ParseError::ConnectionClosed)
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return ReadOutcome::NeedMore;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return ReadOutcome::Io(e),
        }
    }
}

/// Parse a complete request from the front of `buf`, if one is there.
/// Returns the request plus the number of bytes it occupied.
fn try_parse(buf: &[u8], limits: &WireLimits) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(ParseError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ParseError::BadRequestLine)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ParseError::BadRequestLine)?;
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequestLine);
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::UnsupportedVersion),
    };

    let mut content_length = 0usize;
    let mut keep_alive = keep_alive_default;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let name = name.trim();
        let value = value.trim();
        if name.is_empty() {
            return Err(ParseError::BadHeader);
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| ParseError::BadContentLength)?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(ParseError::BodyTooLarge);
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[head_end + 4..total].to_vec();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Some((
        Request {
            method: method.to_string(),
            path,
            query,
            body,
            keep_alive,
        },
        total,
    )))
}

/// Index of the first byte of `\r\n\r\n`, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serialize and send a response with a `text/plain` body.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        connection,
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        try_parse(bytes, &WireLimits::default())
    }

    #[test]
    fn parses_get_with_query_and_keep_alive_default() {
        let raw = b"GET /v1/models/xor?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, used) = parse_all(raw).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/models/xor");
        assert_eq!(req.query, "verbose=1");
        assert!(req.body.is_empty());
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_post_body_and_leaves_pipelined_bytes() {
        let raw = b"POST /infer HTTP/1.1\r\nContent-Length: 4\r\n\r\n0110GET / HTTP/1.1\r\n\r\n";
        let (req, used) = parse_all(raw).unwrap().unwrap();
        assert_eq!(req.body, b"0110");
        assert_eq!(&raw[used..], b"GET / HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn http_10_defaults_to_close() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let (req, _) = parse_all(raw).unwrap().unwrap();
        assert!(!req.keep_alive);
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_all(raw).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert!(parse_all(b"GET / HT").unwrap().is_none());
        assert!(
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n0101")
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn malformed_inputs_get_precise_errors() {
        assert_eq!(
            parse_all(b"NONSENSE\r\n\r\n"),
            Err(ParseError::BadRequestLine)
        );
        assert_eq!(
            parse_all(b"GET / HTTP/2.0\r\n\r\n"),
            Err(ParseError::UnsupportedVersion)
        );
        assert_eq!(
            parse_all(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(ParseError::BadHeader)
        );
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(ParseError::BadContentLength)
        );
        assert_eq!(
            parse_all(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        );
        assert_eq!(ParseError::BadRequestLine.status(), 400);
        assert_eq!(ParseError::BodyTooLarge.status(), 413);
    }

    #[test]
    fn limits_are_enforced() {
        let limits = WireLimits {
            max_head_bytes: 32,
            max_body_bytes: 8,
        };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert_eq!(
            try_parse(long_head.as_bytes(), &limits),
            Err(ParseError::HeadTooLarge)
        );
        // Head never completes but already exceeds the cap.
        let partial = vec![b'A'; 64];
        assert_eq!(try_parse(&partial, &limits), Err(ParseError::HeadTooLarge));
        let body_limits = WireLimits {
            max_head_bytes: 1024,
            max_body_bytes: 8,
        };
        assert_eq!(
            try_parse(
                b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n",
                &body_limits
            ),
            Err(ParseError::BodyTooLarge)
        );
    }

    #[test]
    fn read_request_resumes_across_partial_reads() {
        struct Dribble(Vec<Vec<u8>>);
        impl Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                match self.0.first().cloned() {
                    Some(part) => {
                        self.0.remove(0);
                        out[..part.len()].copy_from_slice(&part);
                        Ok(part.len())
                    }
                    None => Err(io::Error::new(io::ErrorKind::WouldBlock, "dry")),
                }
            }
        }
        let raw: &[u8] = b"POST /i HTTP/1.1\r\nContent-Length: 3\r\n\r\n101";
        let mut reader = Dribble(raw.chunks(7).map(|c| c.to_vec()).collect());
        let mut buf = Vec::new();
        let limits = WireLimits::default();
        loop {
            match read_request(&mut reader, &mut buf, &limits) {
                ReadOutcome::Ready(req) => {
                    assert_eq!(req.body, b"101");
                    break;
                }
                ReadOutcome::NeedMore => continue,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn write_response_emits_well_formed_http() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "SHED\n", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nSHED\n"));
    }
}
