//! FFCL workload construction and pass-counting arithmetic.
//!
//! The paper maps each layer's neuron functions to FFCL blocks and streams
//! feature-map patches through the LPU, `2m` Boolean samples per operand.
//! Reproducing a full VGG16 layer gate-for-gate would mean millions of
//! gates, so a workload samples a *representative block* of neurons
//! (seeded weights, NullaNet-Tiny-style bounded fan-in) and scales:
//!
//! ```text
//! cycles(layer, per image) = cycles(block pass) × blocks × sites / 2m
//! ```
//!
//! where `blocks = ⌈neurons / block_neurons⌉` and `sites` is the number of
//! spatial evaluation positions. Lane batching makes the `sites / 2m`
//! factor fractional — leftover lanes are filled by the next image, as in
//! the paper's batch-based inference.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use lbnn_core::model::LayerSpec;
use lbnn_netlist::Netlist;
use lbnn_nullanet::bnn::BinaryDense;
use lbnn_nullanet::extract::{layer_netlist, ExtractMode};

use crate::zoo::{LayerShape, ModelShape};

/// Options for workload generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOptions {
    /// Neurons per sampled FFCL block.
    pub block_neurons: usize,
    /// Fan-in cap: neurons with more inputs connect to a seeded random
    /// subset (NullaNet-Tiny / LogicNets-style input selection).
    pub max_fanin: usize,
    /// Fan-in at or below which exact truth-table extraction is used.
    pub exact_fanin: usize,
    /// Observed samples for ISF extraction above `exact_fanin`.
    pub isf_samples: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            block_neurons: 8,
            max_fanin: 96,
            exact_fanin: 10,
            isf_samples: 64,
            seed: 2023,
        }
    }
}

/// A layer's workload: one representative compiled-ready block plus the
/// replication counts.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Layer label (`conv3_2`-style names are synthesized as `L<i>`).
    pub name: String,
    /// The sampled block's netlist (inputs = effective fan-in, outputs =
    /// block neurons).
    pub netlist: Netlist,
    /// Number of blocks covering all neurons of the layer.
    pub blocks: u64,
    /// Spatial evaluation sites per input sample.
    pub sites: u64,
    /// Neurons realized by the sampled block.
    pub block_neurons: usize,
    /// Effective per-neuron fan-in after the cap.
    pub effective_fanin: usize,
}

impl LayerWorkload {
    /// Block-pass executions needed per input image, as a rational count
    /// scaled by the lane width (`sites / lanes` passes per block).
    pub fn passes_per_image(&self, lanes: usize) -> f64 {
        assert!(lanes > 0, "lane width must be positive");
        self.blocks as f64 * self.sites as f64 / lanes as f64
    }

    /// Per-image cycles for this layer, given the measured cycles of one
    /// block pass.
    pub fn cycles_per_image(&self, block_pass_cycles: u64, lanes: usize) -> f64 {
        block_pass_cycles as f64 * self.passes_per_image(lanes)
    }

    /// Converts to the serving layer's spec (the shape
    /// [`lbnn_core::model::CompiledModel::compile`] consumes).
    pub fn to_spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            netlist: self.netlist.clone(),
            blocks: self.blocks,
            sites: self.sites,
        }
    }
}

impl From<&LayerWorkload> for LayerSpec {
    fn from(w: &LayerWorkload) -> Self {
        w.to_spec()
    }
}

/// Builds the [`LayerSpec`]s of every layer of a model — the direct feed
/// into [`lbnn_core::model::CompiledModel::compile`].
pub fn model_specs(model: &ModelShape, opts: &WorkloadOptions) -> Vec<LayerSpec> {
    model_workloads(model, opts)
        .into_iter()
        .map(|w| LayerSpec {
            name: w.name,
            netlist: w.netlist,
            blocks: w.blocks,
            sites: w.sites,
        })
        .collect()
}

/// Builds the workload of one layer.
pub fn layer_workload(shape: &LayerShape, index: usize, opts: &WorkloadOptions) -> LayerWorkload {
    let fan_in = shape.fan_in().min(opts.max_fanin);
    let block_neurons = shape.neurons().min(opts.block_neurons);
    let seed = opts
        .seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(index as u64);
    let layer = BinaryDense::random(seed, fan_in, block_neurons);

    let netlist = if fan_in <= opts.exact_fanin {
        layer_netlist(&layer, ExtractMode::Exact, None).expect("fan-in within exact bound")
    } else {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5DEE_CE66);
        let samples: Vec<Vec<bool>> = (0..opts.isf_samples)
            .map(|_| (0..fan_in).map(|_| rng.random_bool(0.5)).collect())
            .collect();
        layer_netlist(&layer, ExtractMode::Sampled, Some(&samples)).expect("samples provided")
    };

    LayerWorkload {
        name: format!("L{}", index + 1),
        netlist,
        blocks: shape.neurons().div_ceil(block_neurons) as u64,
        sites: shape.sites() as u64,
        block_neurons,
        effective_fanin: fan_in,
    }
}

/// Builds the workloads of every layer of a model.
pub fn model_workloads(model: &ModelShape, opts: &WorkloadOptions) -> Vec<LayerWorkload> {
    model
        .layers
        .iter()
        .enumerate()
        .map(|(i, shape)| layer_workload(shape, i, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn small_fanin_uses_exact_extraction() {
        let shape = LayerShape::Dense(crate::zoo::DenseShape {
            in_dim: 8,
            out_dim: 4,
            sites: 1,
        });
        let w = layer_workload(&shape, 0, &WorkloadOptions::default());
        assert_eq!(w.effective_fanin, 8);
        assert_eq!(w.netlist.inputs().len(), 8);
        assert_eq!(w.netlist.outputs().len(), 4);
        assert_eq!(w.blocks, 1);
    }

    #[test]
    fn fanin_cap_applies() {
        let shape = zoo::vgg16_layers_2_13().layers[7]; // 256 -> 512 conv
        let opts = WorkloadOptions {
            max_fanin: 48,
            isf_samples: 32,
            ..Default::default()
        };
        let w = layer_workload(&shape, 7, &opts);
        assert_eq!(w.effective_fanin, 48);
        assert_eq!(w.block_neurons, 8);
        assert_eq!(w.blocks, 512u64.div_ceil(8));
        assert_eq!(w.sites, 28 * 28);
        assert!(w.netlist.gate_count() > 0);
    }

    #[test]
    fn pass_arithmetic() {
        let shape = zoo::lenet5().layers[0]; // 1->6 conv, 24x24 sites
        let opts = WorkloadOptions::default();
        let w = layer_workload(&shape, 0, &opts);
        assert_eq!(w.sites, 576);
        // 6 neurons fit one block of 8.
        assert_eq!(w.blocks, 1);
        let passes = w.passes_per_image(128);
        assert!((passes - 576.0 / 128.0).abs() < 1e-9);
        assert!((w.cycles_per_image(100, 128) - passes * 100.0).abs() < 1e-9);
    }

    #[test]
    fn specs_mirror_workloads() {
        let model = zoo::jsc_m();
        let opts = WorkloadOptions::default();
        let workloads = model_workloads(&model, &opts);
        let specs = model_specs(&model, &opts);
        assert_eq!(workloads.len(), specs.len());
        for (w, s) in workloads.iter().zip(&specs) {
            assert_eq!(w.name, s.name);
            assert_eq!(w.netlist, s.netlist);
            assert_eq!(w.blocks, s.blocks);
            assert_eq!(w.sites, s.sites);
            assert_eq!(
                w.passes_per_image(128),
                s.passes_per_image(128),
                "pass arithmetic must agree between workload and spec"
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let model = zoo::jsc_m();
        let a = model_workloads(&model, &WorkloadOptions::default());
        let b = model_workloads(&model, &WorkloadOptions::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.netlist, y.netlist);
            assert_eq!(x.blocks, y.blocks);
        }
    }

    #[test]
    fn nid_first_layer_caps_593_inputs() {
        let model = zoo::nid();
        let opts = WorkloadOptions {
            max_fanin: 64,
            isf_samples: 48,
            ..Default::default()
        };
        let w = layer_workload(&model.layers[0], 0, &opts);
        assert_eq!(w.effective_fanin, 64);
        assert!(w.netlist.validate().is_ok());
    }
}
