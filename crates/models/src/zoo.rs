//! Layer-shape definitions of the evaluated models.
//!
//! Shapes carry exactly the information the throughput accounting needs:
//! per-neuron fan-in, neuron count, and spatial evaluation sites. Weights
//! are *not* stored here — workload generation draws seeded binary
//! weights, since only the logic's size distribution matters for the
//! reproduced figures.

/// A convolutional layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (neurons).
    pub out_ch: usize,
    /// Square kernel size.
    pub k: usize,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
}

/// A fully-connected layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseShape {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension (neurons).
    pub out_dim: usize,
    /// Number of positions this dense layer is applied to (MLP-Mixer
    /// applies its token/channel MLPs once per channel/token).
    pub sites: usize,
}

/// One layer of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerShape {
    /// Convolution.
    Conv(ConvShape),
    /// Fully connected (possibly site-replicated).
    Dense(DenseShape),
}

impl LayerShape {
    /// Per-neuron fan-in.
    pub fn fan_in(&self) -> usize {
        match self {
            LayerShape::Conv(c) => c.in_ch * c.k * c.k,
            LayerShape::Dense(d) => d.in_dim,
        }
    }

    /// Number of neurons (output channels / output dimension).
    pub fn neurons(&self) -> usize {
        match self {
            LayerShape::Conv(c) => c.out_ch,
            LayerShape::Dense(d) => d.out_dim,
        }
    }

    /// Spatial evaluation sites per input sample.
    pub fn sites(&self) -> usize {
        match self {
            LayerShape::Conv(c) => c.out_h * c.out_w,
            LayerShape::Dense(d) => d.sites,
        }
    }

    /// Multiply-accumulate operations per input sample (the MAC-baseline
    /// cost metric).
    pub fn macs(&self) -> u64 {
        self.fan_in() as u64 * self.neurons() as u64 * self.sites() as u64
    }
}

/// A named stack of layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelShape {
    /// Model name as used in the paper's tables.
    pub name: &'static str,
    /// Layer stack.
    pub layers: Vec<LayerShape>,
}

impl ModelShape {
    /// Total MACs per inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }
}

fn conv(in_ch: usize, out_ch: usize, k: usize, out_h: usize, out_w: usize) -> LayerShape {
    LayerShape::Conv(ConvShape {
        in_ch,
        out_ch,
        k,
        out_h,
        out_w,
    })
}

fn dense(in_dim: usize, out_dim: usize) -> LayerShape {
    LayerShape::Dense(DenseShape {
        in_dim,
        out_dim,
        sites: 1,
    })
}

fn dense_sites(in_dim: usize, out_dim: usize, sites: usize) -> LayerShape {
    LayerShape::Dense(DenseShape {
        in_dim,
        out_dim,
        sites,
    })
}

/// VGG16 on 224×224 ImageNet inputs: the 13 convolutional layers plus the
/// three classifier layers (~138 M parameters).
pub fn vgg16() -> ModelShape {
    ModelShape {
        name: "VGG16",
        layers: vec![
            conv(3, 64, 3, 224, 224),
            conv(64, 64, 3, 224, 224),
            conv(64, 128, 3, 112, 112),
            conv(128, 128, 3, 112, 112),
            conv(128, 256, 3, 56, 56),
            conv(256, 256, 3, 56, 56),
            conv(256, 256, 3, 56, 56),
            conv(256, 512, 3, 28, 28),
            conv(512, 512, 3, 28, 28),
            conv(512, 512, 3, 28, 28),
            conv(512, 512, 3, 14, 14),
            conv(512, 512, 3, 14, 14),
            conv(512, 512, 3, 14, 14),
            dense(25088, 4096),
            dense(4096, 4096),
            dense(4096, 1000),
        ],
    }
}

/// The paper's VGG16 workload: intermediate convolutional layers 2–13
/// (§VI-B implements exactly these with FFCL).
pub fn vgg16_layers_2_13() -> ModelShape {
    let all = vgg16();
    ModelShape {
        name: "VGG16[2:13]",
        layers: all.layers[1..13].to_vec(),
    }
}

/// LeNet-5 on 28×28 MNIST.
pub fn lenet5() -> ModelShape {
    ModelShape {
        name: "LENET5",
        layers: vec![
            conv(1, 6, 5, 24, 24),
            conv(6, 16, 5, 8, 8),
            dense(256, 120),
            dense(120, 84),
            dense(84, 10),
        ],
    }
}

/// MLPMixer-S/4 on CIFAR-10 (paper §VI: 32×32 inputs, 4×4 patches → 64
/// tokens, hidden C = 128, DS = 64, DC = 512, 8 mixing layers).
pub fn mlpmixer_s4() -> ModelShape {
    mixer("MLPMixer-S/4", 64, 128, 64, 512, 8)
}

/// MLPMixer-B/4 on CIFAR-10 (C = 192, DS = 96, DC = 768, 12 layers).
pub fn mlpmixer_b4() -> ModelShape {
    mixer("MLPMixer-B/4", 64, 192, 96, 768, 12)
}

fn mixer(
    name: &'static str,
    tokens: usize,
    c: usize,
    ds: usize,
    dc: usize,
    layers: usize,
) -> ModelShape {
    let mut stack = Vec::new();
    // Patch embedding: 4×4×3 = 48 inputs per token.
    stack.push(dense_sites(48, c, tokens));
    for _ in 0..layers {
        // Token mixing: applied per channel.
        stack.push(dense_sites(tokens, ds, c));
        stack.push(dense_sites(ds, tokens, c));
        // Channel mixing: applied per token.
        stack.push(dense_sites(c, dc, tokens));
        stack.push(dense_sites(dc, c, tokens));
    }
    // Head.
    stack.push(dense(c, 10));
    ModelShape {
        name,
        layers: stack,
    }
}

/// The ChewBaccaNN-style VGG-like CIFAR-10 BNN (Andri et al., ISCAS 2021).
pub fn chewbacca_vgg() -> ModelShape {
    ModelShape {
        name: "VGG-like (ChewBaccaNN)",
        layers: vec![
            conv(3, 64, 3, 32, 32),
            conv(64, 64, 3, 32, 32),
            conv(64, 128, 3, 16, 16),
            conv(128, 128, 3, 16, 16),
            conv(128, 256, 3, 8, 8),
            conv(256, 256, 3, 8, 8),
            dense(4096, 1024),
            dense(1024, 10),
        ],
    }
}

/// Jet substructure classification, medium (LogicNets JSC-M topology:
/// 16 features → 64-32-32-32 → 5 classes).
pub fn jsc_m() -> ModelShape {
    ModelShape {
        name: "JSC-M",
        layers: vec![
            dense(16, 64),
            dense(64, 32),
            dense(32, 32),
            dense(32, 32),
            dense(32, 5),
        ],
    }
}

/// Jet substructure classification, large (LogicNets JSC-L topology:
/// 16 → 32-64-192-192-16 → 5).
pub fn jsc_l() -> ModelShape {
    ModelShape {
        name: "JSC-L",
        layers: vec![
            dense(16, 32),
            dense(32, 64),
            dense(64, 192),
            dense(192, 192),
            dense(192, 16),
            dense(16, 5),
        ],
    }
}

/// UNSW-NB15 network intrusion detection (Murovic et al.: 593 binary
/// features, two classes; hidden stack representative of the massively
/// parallel FPGA nets the paper compares against).
pub fn nid() -> ModelShape {
    ModelShape {
        name: "NID",
        layers: vec![dense(593, 128), dense(128, 64), dense(64, 2)],
    }
}

/// Every model of Tables II and III, in table order.
pub fn all_models() -> Vec<ModelShape> {
    vec![
        vgg16_layers_2_13(),
        lenet5(),
        mlpmixer_s4(),
        mlpmixer_b4(),
        chewbacca_vgg(),
        jsc_m(),
        jsc_l(),
        nid(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_parameter_scale() {
        // ~138M parameters; weights = fan_in × neurons per layer.
        let params: u64 = vgg16()
            .layers
            .iter()
            .map(|l| l.fan_in() as u64 * l.neurons() as u64)
            .sum();
        assert!(
            (130_000_000..150_000_000).contains(&params),
            "VGG16 weights = {params}"
        );
    }

    #[test]
    fn paper_subset_is_layers_2_to_13() {
        let sub = vgg16_layers_2_13();
        assert_eq!(sub.layers.len(), 12);
        assert_eq!(sub.layers[0].fan_in(), 64 * 9, "first is conv1_2");
        assert_eq!(sub.layers[11].neurons(), 512, "last is conv5_3");
    }

    #[test]
    fn lenet_dimensions_chain() {
        let m = lenet5();
        // conv2 output 16×4×4 = 256 feeds the first dense layer
        // (post-pooling).
        assert_eq!(m.layers[2].fan_in(), 256);
        assert_eq!(m.layers.last().unwrap().neurons(), 10);
    }

    #[test]
    fn mixer_dims_match_paper() {
        let s = mlpmixer_s4();
        // Token-mixing hidden DS = 64, channel-mixing hidden DC = 512.
        assert!(s
            .layers
            .iter()
            .any(|l| matches!(l, LayerShape::Dense(d) if d.out_dim == 512)));
        let b = mlpmixer_b4();
        assert!(b
            .layers
            .iter()
            .any(|l| matches!(l, LayerShape::Dense(d) if d.out_dim == 768)));
        // 8 vs 12 mixing layers -> 4 dense layers each + stem + head.
        assert_eq!(s.layers.len(), 8 * 4 + 2);
        assert_eq!(b.layers.len(), 12 * 4 + 2);
    }

    #[test]
    fn nid_has_593_binary_features() {
        let m = nid();
        assert_eq!(m.layers[0].fan_in(), 593);
        assert_eq!(m.layers.last().unwrap().neurons(), 2);
    }

    #[test]
    fn macs_ordering_matches_model_sizes() {
        assert!(vgg16().total_macs() > chewbacca_vgg().total_macs());
        assert!(chewbacca_vgg().total_macs() > lenet5().total_macs());
        assert!(lenet5().total_macs() > jsc_l().total_macs());
        assert!(jsc_l().total_macs() > jsc_m().total_macs());
    }
}
