//! # lbnn-models
//!
//! The benchmark workloads of the paper's evaluation (§VI):
//!
//! * [`zoo`] — layer-shape definitions of every evaluated model: VGG16
//!   (convolutional layers 2–13 are the paper's headline workload),
//!   LeNet-5, MLPMixer-S/4 and B/4, the ChewBaccaNN VGG-like CIFAR net,
//!   the jet-substructure classifiers JSC-M/L, and the UNSW-NB15 network
//!   intrusion detector (593 binary features, 2 classes);
//! * [`dataset`] — seeded synthetic datasets with the dimensionality and
//!   class structure of MNIST / CIFAR-10 / JSC / UNSW-NB15 (prototype
//!   patterns + bit-flip noise, so they are genuinely learnable);
//! * [`workload`] — FFCL workload construction: samples representative
//!   neuron blocks per layer (NullaNet-Tiny-style bounded fan-in),
//!   extracts their logic, and provides the pass-counting arithmetic that
//!   converts one compiled block's cycle count into per-image layer cost.

pub mod dataset;
pub mod workload;
pub mod zoo;

pub use dataset::Dataset;
pub use workload::{model_specs, model_workloads, LayerWorkload, WorkloadOptions};
pub use zoo::{LayerShape, ModelShape};
