//! Seeded synthetic datasets matching the evaluated tasks' shapes.
//!
//! The real MNIST / CIFAR-10 / JSC / UNSW-NB15 data is not redistributable
//! here; these generators produce datasets with the same dimensionality
//! and class count, built from random class prototypes plus bit-flip
//! noise — learnable structure that exercises the same training and
//! extraction paths (see DESIGN.md, substitutions table).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A labelled binary dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    /// Feature vectors (binary).
    pub xs: Vec<Vec<bool>>,
    /// Class labels (`0..classes`).
    pub ys: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }

    /// Splits into (train, test) at `train_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `(0, 1)`.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let cut = (self.len() as f64 * train_fraction) as usize;
        (
            Dataset {
                xs: self.xs[..cut].to_vec(),
                ys: self.ys[..cut].to_vec(),
                classes: self.classes,
            },
            Dataset {
                xs: self.xs[cut..].to_vec(),
                ys: self.ys[cut..].to_vec(),
                classes: self.classes,
            },
        )
    }
}

/// Prototype-plus-noise generator: `classes` random prototypes over `dim`
/// bits; each sample copies its class prototype and flips each bit with
/// probability `noise`.
pub fn prototype_dataset(seed: u64, n: usize, dim: usize, classes: usize, noise: f64) -> Dataset {
    assert!(classes >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes: Vec<Vec<bool>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.random_bool(0.5)).collect())
        .collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.random_range(0..classes);
        let x: Vec<bool> = prototypes[c]
            .iter()
            .map(|&b| if rng.random_bool(noise) { !b } else { b })
            .collect();
        xs.push(x);
        ys.push(c);
    }
    Dataset { xs, ys, classes }
}

/// UNSW-NB15-like network intrusion detection: 593 binary features
/// (the preprocessing of Murovic et al. the paper reuses), 2 classes.
pub fn synthetic_nid(seed: u64, n: usize) -> Dataset {
    prototype_dataset(seed, n, 593, 2, 0.15)
}

/// Jet substructure classification: 16 physics features quantized to
/// 4 bits each (64 binary inputs), 5 jet classes.
pub fn synthetic_jsc(seed: u64, n: usize) -> Dataset {
    prototype_dataset(seed, n, 64, 5, 0.12)
}

/// MNIST-like: 28×28 binarized pixels, 10 digit classes.
pub fn synthetic_mnist(seed: u64, n: usize) -> Dataset {
    prototype_dataset(seed, n, 28 * 28, 10, 0.1)
}

/// CIFAR-10-like: 32×32×3 inputs binarized to one bit per channel value,
/// 10 classes.
pub fn synthetic_cifar10(seed: u64, n: usize) -> Dataset {
    prototype_dataset(seed, n, 32 * 32 * 3, 10, 0.18)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_tasks() {
        let nid = synthetic_nid(1, 50);
        assert_eq!(nid.dim(), 593);
        assert_eq!(nid.classes, 2);
        let jsc = synthetic_jsc(1, 50);
        assert_eq!(jsc.dim(), 64);
        assert_eq!(jsc.classes, 5);
        let mnist = synthetic_mnist(1, 20);
        assert_eq!(mnist.dim(), 784);
        assert_eq!(mnist.classes, 10);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(synthetic_nid(7, 30), synthetic_nid(7, 30));
        assert_ne!(synthetic_nid(7, 30), synthetic_nid(8, 30));
    }

    #[test]
    fn nearest_prototype_is_learnable() {
        // A nearest-prototype classifier must beat chance by a wide
        // margin, or the datasets are useless for the examples.
        let ds = synthetic_jsc(3, 400);
        let mut rng = StdRng::seed_from_u64(3);
        let prototypes: Vec<Vec<bool>> = (0..ds.classes)
            .map(|_| (0..ds.dim()).map(|_| rng.random_bool(0.5)).collect())
            .collect();
        let mut correct = 0;
        for (x, &y) in ds.xs.iter().zip(&ds.ys) {
            let best = prototypes
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.iter().zip(x).filter(|&(a, b)| a != b).count())
                .map(|(c, _)| c)
                .unwrap();
            if best == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.len() as f64;
        assert!(acc > 0.9, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn split_partitions() {
        let ds = synthetic_nid(2, 100);
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        assert_eq!(train.classes, 2);
    }
}
