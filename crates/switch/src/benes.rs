//! Beneš rearrangeable permutation network with the looping algorithm.
//!
//! A Beneš network on `n = 2^k` ports has `2k − 1` stages of `n/2` two-by-two
//! elements and can realize *any* permutation. The recursive structure is
//! kept explicit in [`BenesConfig`]: an input column, two half-size
//! sub-networks, and an output column.

/// Configuration of a Beneš network for one routed permutation.
///
/// `n = 2` is a single exchange element (`cross`); larger sizes hold the
/// input/output switch columns plus two recursive halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenesConfig {
    /// A single 2×2 element: `false` = straight, `true` = crossed.
    Leaf {
        /// Exchange setting.
        cross: bool,
    },
    /// A recursive node of width `n >= 4`.
    Node {
        /// Input column: `input[i]` crossed means input `2i` enters the
        /// lower sub-network.
        input: Vec<bool>,
        /// Output column settings, same convention mirrored.
        output: Vec<bool>,
        /// Upper half-size network.
        upper: Box<BenesConfig>,
        /// Lower half-size network.
        lower: Box<BenesConfig>,
    },
}

impl BenesConfig {
    /// Number of elementary 2×2 stages this configuration spans
    /// (`2·log2(n) − 1`).
    pub fn depth(&self) -> usize {
        match self {
            BenesConfig::Leaf { .. } => 1,
            BenesConfig::Node { upper, .. } => 2 + upper.depth(),
        }
    }
}

/// Number of stages of a Beneš network on `n` ports.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `n < 2`.
pub fn depth(n: usize) -> usize {
    assert!(
        n.is_power_of_two() && n >= 2,
        "size must be a power of two >= 2"
    );
    2 * n.trailing_zeros() as usize - 1
}

/// Routes a full permutation through a Beneš network.
///
/// `perm[i] = j` means input `i` must exit on output `j`. Returns the
/// network configuration realizing it.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n` with `n` a power of two.
pub fn route_permutation(perm: &[usize]) -> BenesConfig {
    let n = perm.len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "size must be a power of two >= 2"
    );
    {
        let mut seen = vec![false; n];
        for &d in perm {
            assert!(d < n && !seen[d], "input is not a permutation");
            seen[d] = true;
        }
    }
    route_rec(perm)
}

fn route_rec(perm: &[usize]) -> BenesConfig {
    let n = perm.len();
    if n == 2 {
        return BenesConfig::Leaf {
            cross: perm[0] == 1,
        };
    }
    let half = n / 2;
    // inv[j] = i  such that perm[i] = j
    let mut inv = vec![0usize; n];
    for (i, &d) in perm.iter().enumerate() {
        inv[d] = i;
    }

    // subnet[i] = Some(false) => input i goes through the upper subnetwork.
    let mut in_subnet: Vec<Option<bool>> = vec![None; n];
    let mut out_subnet: Vec<Option<bool>> = vec![None; n];

    // Looping: pick an unconstrained input, send it upper, and propagate
    // the three constraint families until the cycle closes:
    //   (A) input-switch partners use opposite subnetworks,
    //   (B) output-switch partners use opposite subnetworks,
    //   (C) a signal stays in one subnetwork end to end.
    for start in 0..n {
        if in_subnet[start].is_some() {
            continue;
        }
        let mut x = start;
        let via_lower = false; // route the chain anchor through the upper half
        loop {
            debug_assert!(in_subnet[x].is_none() || in_subnet[x] == Some(via_lower));
            in_subnet[x] = Some(via_lower); // anchor of this step
            out_subnet[perm[x]] = Some(via_lower); // (C)
            let y = perm[x] ^ 1;
            out_subnet[y] = Some(!via_lower); // (B)
            let x1 = inv[y];
            debug_assert!(in_subnet[x1].is_none() || in_subnet[x1] == Some(!via_lower));
            in_subnet[x1] = Some(!via_lower); // (C) backwards
            let next = x1 ^ 1; // (A): the partner goes back to the upper half
            if in_subnet[next].is_some() {
                break; // cycle closed
            }
            x = next;
        }
    }

    // Build sub-permutations. Input switch i (inputs 2i, 2i+1) feeds upper
    // port i and lower port i; output switch j similarly.
    let mut upper_perm = vec![usize::MAX; half];
    let mut lower_perm = vec![usize::MAX; half];
    let mut input_col = vec![false; half];
    let mut output_col = vec![false; half];
    for sw in 0..half {
        let a = 2 * sw;
        // Crossed input switch: even input goes to the lower subnetwork.
        let a_lower = in_subnet[a].expect("all inputs assigned");
        input_col[sw] = a_lower;
        for input in [a, a + 1] {
            let lower_net = in_subnet[input].expect("assigned");
            let dest = perm[input];
            let dest_sw = dest / 2;
            if lower_net {
                lower_perm[sw] = dest_sw;
            } else {
                upper_perm[sw] = dest_sw;
            }
        }
    }
    for (sw, col) in output_col.iter_mut().enumerate() {
        // Crossed output switch: the upper-subnetwork value exits on the
        // odd port.
        *col = out_subnet[2 * sw].expect("all outputs assigned");
    }
    debug_assert!(upper_perm.iter().all(|&d| d != usize::MAX));
    debug_assert!(lower_perm.iter().all(|&d| d != usize::MAX));

    BenesConfig::Node {
        input: input_col,
        output: output_col,
        upper: Box::new(route_rec(&upper_perm)),
        lower: Box::new(route_rec(&lower_perm)),
    }
}

/// Applies a configuration to a vector of values.
///
/// # Panics
///
/// Panics if `values.len()` does not match the configuration's width.
pub fn apply<T: Clone>(config: &BenesConfig, values: &[T]) -> Vec<T> {
    match config {
        BenesConfig::Leaf { cross } => {
            assert_eq!(values.len(), 2);
            if *cross {
                vec![values[1].clone(), values[0].clone()]
            } else {
                values.to_vec()
            }
        }
        BenesConfig::Node {
            input,
            output,
            upper,
            lower,
        } => {
            let n = values.len();
            let half = n / 2;
            assert_eq!(input.len(), half, "width mismatch");
            let mut up_in = Vec::with_capacity(half);
            let mut lo_in = Vec::with_capacity(half);
            for sw in 0..half {
                let (a, b) = (values[2 * sw].clone(), values[2 * sw + 1].clone());
                if input[sw] {
                    up_in.push(b);
                    lo_in.push(a);
                } else {
                    up_in.push(a);
                    lo_in.push(b);
                }
            }
            let up_out = apply(upper, &up_in);
            let lo_out = apply(lower, &lo_in);
            let mut out = Vec::with_capacity(n);
            for sw in 0..half {
                if output[sw] {
                    out.push(lo_out[sw].clone());
                    out.push(up_out[sw].clone());
                } else {
                    out.push(up_out[sw].clone());
                    out.push(lo_out[sw].clone());
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(perm: &[usize]) {
        let cfg = route_permutation(perm);
        let values: Vec<usize> = (0..perm.len()).collect();
        let out = apply(&cfg, &values);
        for (i, &d) in perm.iter().enumerate() {
            assert_eq!(
                out[d], i,
                "input {i} must land on output {d} (perm {perm:?})"
            );
        }
        assert_eq!(cfg.depth(), depth(perm.len()));
    }

    #[test]
    fn identity_and_reverse() {
        for k in 1..6 {
            let n = 1 << k;
            let id: Vec<usize> = (0..n).collect();
            check(&id);
            let rev: Vec<usize> = (0..n).rev().collect();
            check(&rev);
        }
    }

    #[test]
    fn all_permutations_of_4_and_8() {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            let mut out = Vec::new();
            let mut items: Vec<usize> = (0..n).collect();
            heap(&mut items, n, &mut out);
            fn heap(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
                if k == 1 {
                    out.push(items.clone());
                    return;
                }
                for i in 0..k {
                    heap(items, k - 1, out);
                    if k.is_multiple_of(2) {
                        items.swap(i, k - 1);
                    } else {
                        items.swap(0, k - 1);
                    }
                }
            }
            out
        }
        for p in permutations(4) {
            check(&p);
        }
        // 8! = 40320 — still fast enough.
        for p in permutations(8) {
            check(&p);
        }
    }

    #[test]
    fn random_large_permutations() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        for k in [16usize, 64, 128, 256] {
            for _ in 0..5 {
                let mut perm: Vec<usize> = (0..k).collect();
                perm.shuffle(&mut rng);
                check(&perm);
            }
        }
    }

    #[test]
    fn depth_formula() {
        assert_eq!(depth(2), 1);
        assert_eq!(depth(4), 3);
        assert_eq!(depth(8), 5);
        assert_eq!(depth(128), 13);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        route_permutation(&[0, 0, 1, 2]);
    }
}
