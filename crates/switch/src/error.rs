//! Error type for switch-network routing.

use std::error::Error;
use std::fmt;

/// Errors produced while routing a request through a switch network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A destination referenced a source index outside the network.
    SourceOutOfRange {
        /// The offending source index.
        source: usize,
        /// Number of source ports.
        num_sources: usize,
    },
    /// The request has more destinations than the network has ports.
    TooManyDestinations {
        /// Destinations requested.
        requested: usize,
        /// Destination ports available.
        available: usize,
    },
    /// Two packets collided inside a banyan stage — cannot happen for the
    /// monotone requests this crate generates; reported rather than panicked
    /// so property tests can surface violations.
    StageConflict {
        /// Stage index where the conflict occurred.
        stage: usize,
        /// Row of the conflicting element.
        row: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SourceOutOfRange {
                source,
                num_sources,
            } => {
                write!(f, "source {source} out of range ({num_sources} sources)")
            }
            RouteError::TooManyDestinations {
                requested,
                available,
            } => {
                write!(
                    f,
                    "{requested} destinations requested, {available} available"
                )
            }
            RouteError::StageConflict { stage, row } => {
                write!(f, "internal routing conflict at stage {stage}, row {row}")
            }
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            RouteError::SourceOutOfRange {
                source: 9,
                num_sources: 4,
            },
            RouteError::TooManyDestinations {
                requested: 10,
                available: 8,
            },
            RouteError::StageConflict { stage: 2, row: 5 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
