//! The composed non-blocking multicast network (concentrate → copy → Beneš).
//!
//! This is the behavioral model of the paper's 5-stage non-blocking
//! multicast switch network [Yang–Masson 91]: the five logical pipeline
//! stages are (1) concentration, (2) copy/fanout, and (3–5) the Beneš
//! input/middle/output columns. Every multicast assignment from `m`
//! sources to `n` destinations is routable — there is no blocking state —
//! and [`MulticastNetwork::route`] constructs the explicit stage
//! configurations, which [`MulticastNetwork::apply`] then simulates.

use crate::benes::{self, BenesConfig};
use crate::copy::{self, CopyConfig};
use crate::error::RouteError;
use crate::omega::{self, OmegaConfig};

/// A non-blocking multicast switch network with fixed port counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticastNetwork {
    num_sources: usize,
    num_dests: usize,
    width: usize,
}

/// A routed configuration: per-component switch settings plus the
/// bookkeeping needed to re-simulate the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastConfig {
    concentrator: OmegaConfig,
    copy: CopyConfig,
    benes: BenesConfig,
    /// Sources in concentration order (ascending source index).
    active_sources: Vec<usize>,
    /// Destinations that receive a value (for output masking).
    active_dests: Vec<bool>,
}

impl MulticastNetwork {
    /// Creates a network with `num_sources` input ports and `num_dests`
    /// output ports. The internal datapath width is the next power of two
    /// covering both.
    ///
    /// # Panics
    ///
    /// Panics if either port count is zero.
    pub fn new(num_sources: usize, num_dests: usize) -> Self {
        assert!(num_sources > 0, "need at least one source port");
        assert!(num_dests > 0, "need at least one destination port");
        let width = num_sources.max(num_dests).max(2).next_power_of_two();
        MulticastNetwork {
            num_sources,
            num_dests,
            width,
        }
    }

    /// Number of source ports.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of destination ports.
    pub fn num_dests(&self) -> usize {
        self.num_dests
    }

    /// Internal datapath width (power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Logical pipeline stages: concentrate, copy, Beneš in/mid/out — the
    /// paper's `tsw = 5`.
    pub fn logical_stages(&self) -> usize {
        crate::SWITCH_STAGES
    }

    /// Total elementary 2×2 stages of the composed fabric (the physical
    /// depth a gate-level implementation would have).
    pub fn elementary_stages(&self) -> usize {
        let k = self.width.trailing_zeros() as usize;
        // concentrator (k) + copy (k) + Beneš (2k − 1)
        k + k + (2 * k - 1)
    }

    /// Routes a multicast assignment: `assignment[d] = Some(s)` means
    /// destination `d` receives source `s`; `None` destinations are idle.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::SourceOutOfRange`] for bad source indices and
    /// [`RouteError::TooManyDestinations`] if the assignment is longer than
    /// the destination port count. Internal stage conflicts cannot occur
    /// (the fabric is non-blocking); they would surface as
    /// [`RouteError::StageConflict`].
    pub fn route(&self, assignment: &[Option<usize>]) -> Result<MulticastConfig, RouteError> {
        if assignment.len() > self.num_dests {
            return Err(RouteError::TooManyDestinations {
                requested: assignment.len(),
                available: self.num_dests,
            });
        }
        for s in assignment.iter().flatten() {
            if *s >= self.num_sources {
                return Err(RouteError::SourceOutOfRange {
                    source: *s,
                    num_sources: self.num_sources,
                });
            }
        }

        // Destinations of each source, ascending.
        let mut dests_of: Vec<Vec<usize>> = vec![Vec::new(); self.num_sources];
        for (d, s) in assignment.iter().enumerate() {
            if let Some(s) = s {
                dests_of[*s].push(d);
            }
        }
        let active_sources: Vec<usize> = (0..self.num_sources)
            .filter(|&s| !dests_of[s].is_empty())
            .collect();

        // 1. Concentrate active sources to ranks 0..a.
        let requests: Vec<(usize, usize)> = active_sources
            .iter()
            .enumerate()
            .map(|(rank, &s)| (s, rank))
            .collect();
        let concentrator = omega::route_monotone(self.width, &requests)?;

        // 2. Copy each source into its contiguous fanout range.
        let fanouts: Vec<usize> = active_sources.iter().map(|&s| dests_of[s].len()).collect();
        let copy = if fanouts.is_empty() {
            // Idle assignment: identity copy of nothing.
            copy::route_copies(self.width, &[1])?
        } else {
            copy::route_copies(self.width, &fanouts)?
        };

        // 3. Permute copies to their destinations. Copy at row
        //    `start(s) + j` must reach `dests_of[s][j]`; idle rows are
        //    filled with the unused destinations to complete a permutation.
        let mut perm = vec![usize::MAX; self.width];
        let mut used_dest = vec![false; self.width];
        let mut row = 0;
        for &s in &active_sources {
            for &d in &dests_of[s] {
                perm[row] = d;
                used_dest[d] = true;
                row += 1;
            }
        }
        let mut free_dests = (0..self.width).filter(|&d| !used_dest[d]);
        for slot in perm.iter_mut() {
            if *slot == usize::MAX {
                *slot = free_dests.next().expect("counts match");
            }
        }
        let benes = benes::route_permutation(&perm);

        let mut active_dests = vec![false; self.num_dests];
        for (d, s) in assignment.iter().enumerate() {
            if s.is_some() {
                active_dests[d] = true;
            }
        }
        Ok(MulticastConfig {
            concentrator,
            copy,
            benes,
            active_sources,
            active_dests,
        })
    }

    /// Simulates the routed fabric: feeds `sources` into the input ports
    /// and returns what each destination port receives.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` differs from the source port count.
    pub fn apply<T: Clone>(&self, config: &MulticastConfig, sources: &[T]) -> Vec<Option<T>> {
        assert_eq!(sources.len(), self.num_sources, "source count mismatch");
        let mut values: Vec<Option<T>> = vec![None; self.width];
        for &s in &config.active_sources {
            values[s] = Some(sources[s].clone());
        }
        let concentrated = omega::apply(&config.concentrator, &values);
        let copied = copy::apply(&config.copy, &concentrated);
        let routed = benes::apply(&config.benes, &copied);
        routed
            .into_iter()
            .take(self.num_dests)
            .enumerate()
            .map(|(d, v)| if config.active_dests[d] { v } else { None })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(num_sources: usize, num_dests: usize, assignment: &[Option<usize>]) {
        let net = MulticastNetwork::new(num_sources, num_dests);
        let cfg = net
            .route(assignment)
            .unwrap_or_else(|e| panic!("route failed: {e} ({assignment:?})"));
        let sources: Vec<usize> = (0..num_sources).collect();
        let out = net.apply(&cfg, &sources);
        for (d, (got, want)) in out.iter().zip(assignment).enumerate() {
            assert_eq!(got, want, "dest {d} of {assignment:?}");
        }
        for got in out.iter().skip(assignment.len()) {
            assert_eq!(*got, None);
        }
    }

    #[test]
    fn unicast_permutations() {
        check(4, 4, &[Some(2), Some(0), Some(3), Some(1)]);
        check(
            8,
            8,
            &[
                Some(7),
                Some(6),
                Some(5),
                Some(4),
                Some(3),
                Some(2),
                Some(1),
                Some(0),
            ],
        );
    }

    #[test]
    fn broadcast_one_to_all() {
        check(4, 8, &[Some(1); 8]);
    }

    #[test]
    fn mixed_multicast_with_idles() {
        check(
            4,
            8,
            &[
                Some(0),
                Some(0),
                None,
                Some(3),
                Some(1),
                Some(0),
                None,
                Some(3),
            ],
        );
    }

    #[test]
    fn all_idle() {
        check(4, 4, &[None, None, None, None]);
    }

    #[test]
    fn exhaustive_small_assignments() {
        // Every assignment of 4 destinations over {None, s0..s2}.
        for code in 0..(4u32.pow(4)) {
            let assignment: Vec<Option<usize>> = (0..4)
                .map(|d| {
                    let v = (code >> (2 * d)) & 3;
                    if v == 3 {
                        None
                    } else {
                        Some(v as usize)
                    }
                })
                .collect();
            check(3, 4, &assignment);
        }
    }

    #[test]
    fn random_wide_assignments() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        // The LPU shape: m sources (LPE results), 2m destinations (operands).
        let (m, n) = (64usize, 128usize);
        let net = MulticastNetwork::new(m, n);
        assert_eq!(net.logical_stages(), 5);
        for _ in 0..30 {
            let assignment: Vec<Option<usize>> = (0..n)
                .map(|_| {
                    if rng.random_bool(0.8) {
                        Some(rng.random_range(0..m))
                    } else {
                        None
                    }
                })
                .collect();
            let cfg = net.route(&assignment).expect("non-blocking");
            let sources: Vec<usize> = (0..m).collect();
            let out = net.apply(&cfg, &sources);
            for (d, want) in assignment.iter().enumerate() {
                assert_eq!(out[d], *want);
            }
        }
    }

    #[test]
    fn rejects_bad_requests() {
        let net = MulticastNetwork::new(4, 4);
        assert!(matches!(
            net.route(&[Some(9)]),
            Err(RouteError::SourceOutOfRange { source: 9, .. })
        ));
        assert!(matches!(
            net.route(&[None, None, None, None, None]),
            Err(RouteError::TooManyDestinations { .. })
        ));
    }

    #[test]
    fn elementary_depth() {
        let net = MulticastNetwork::new(64, 128); // width 128, k = 7
        assert_eq!(net.elementary_stages(), 7 + 7 + 13);
    }
}
