//! Butterfly (banyan) network used as a concentrator.
//!
//! The concentration step packs the active source ports into a contiguous
//! prefix, preserving order — the classic *packing* problem, which a
//! butterfly routes without internal conflicts when destinations are
//! monotone in the source rows (reverse-banyan concentrator).

use crate::error::RouteError;

/// Setting of one 2×2 exchange element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Element {
    /// `true` = crossed (low input → high output, high input → low output).
    pub cross: bool,
}

/// Configuration of the butterfly: `stages[s][e]` is element `e` of stage
/// `s`. Stage `s` exchanges rows differing in bit `s` (LSB first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaConfig {
    width: usize,
    stages: Vec<Vec<Element>>,
}

impl OmegaConfig {
    /// Network width (number of rows).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stages (`log2(width)`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Routes a monotone partial permutation: `requests` is a list of
/// `(row, dest)` pairs with strictly increasing rows **and** strictly
/// increasing destinations.
///
/// The conflict-free guarantee only holds for **packing** requests, where
/// the destinations are the consecutive ranks `0..requests.len()` (the
/// reverse-banyan concentrator property); that is the only pattern the
/// multicast pipeline submits. Other monotone patterns may legitimately
/// return a conflict.
///
/// # Errors
///
/// Returns [`RouteError::StageConflict`] if two packets collide inside a
/// stage (impossible for packing requests; the error path lets property
/// tests check the claim rather than trust it).
///
/// # Panics
///
/// Panics if `width` is not a power of two, or requests are out of range
/// or not strictly monotone.
pub fn route_monotone(
    width: usize,
    requests: &[(usize, usize)],
) -> Result<OmegaConfig, RouteError> {
    assert!(
        width.is_power_of_two() && width >= 2,
        "width must be a power of two >= 2"
    );
    for w in requests.windows(2) {
        assert!(w[0].0 < w[1].0, "rows must be strictly increasing");
        assert!(w[0].1 < w[1].1, "destinations must be strictly increasing");
    }
    for &(r, d) in requests {
        assert!(r < width && d < width, "request out of range");
    }

    let k = width.trailing_zeros() as usize;
    let mut stages = vec![vec![Element::default(); width / 2]; k];
    // positions[i] = current row of packet i.
    let mut rows: Vec<usize> = requests.iter().map(|&(r, _)| r).collect();

    for (s, stage) in stages.iter_mut().enumerate() {
        let bit = 1usize << s;
        // Desired output side at this stage = bit s of destination.
        // Element index for row r at stage s: drop bit s of r.
        let elem_of = |r: usize| -> usize {
            let low = r & (bit - 1);
            let high = (r >> (s + 1)) << s;
            high | low
        };
        // occupancy[e]: which output sides are taken.
        let mut taken = vec![[false; 2]; width / 2];
        for (i, row) in rows.iter_mut().enumerate() {
            let want = (requests[i].1 >> s) & 1;
            let e = elem_of(*row);
            if taken[e][want] {
                return Err(RouteError::StageConflict {
                    stage: s,
                    row: *row,
                });
            }
            taken[e][want] = true;
            let in_side = (*row >> s) & 1;
            if in_side != want {
                stage[e].cross = true;
            }
            *row = (*row & !bit) | (want << s);
        }
        // Consistency: a crossed element with packets on both inputs is
        // fine (they swap); a crossed element set by one packet also drags
        // the partner row, which carries no packet for monotone requests.
    }
    debug_assert!(rows.iter().zip(requests).all(|(&r, &(_, d))| r == d));
    Ok(OmegaConfig { width, stages })
}

/// Applies a configuration to a vector of optional packets.
///
/// # Panics
///
/// Panics if `values.len()` differs from the configuration width.
pub fn apply<T: Clone>(config: &OmegaConfig, values: &[Option<T>]) -> Vec<Option<T>> {
    assert_eq!(values.len(), config.width, "width mismatch");
    let mut cur = values.to_vec();
    for (s, stage) in config.stages.iter().enumerate() {
        let bit = 1usize << s;
        let mut next = cur.clone();
        for (e, elem) in stage.iter().enumerate() {
            let low = ((e >> s) << (s + 1)) | (e & (bit - 1));
            let high = low | bit;
            if elem.cross {
                next[low] = cur[high].clone();
                next[high] = cur[low].clone();
            } else {
                next[low] = cur[low].clone();
                next[high] = cur[high].clone();
            }
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Routes and simulates a concentration of the given active rows.
    fn concentrate(width: usize, active: &[usize]) {
        let requests: Vec<(usize, usize)> = active
            .iter()
            .enumerate()
            .map(|(rank, &r)| (r, rank))
            .collect();
        let cfg = route_monotone(width, &requests).unwrap_or_else(|e| {
            panic!("concentration must be conflict-free: {e} (active {active:?})")
        });
        let mut values: Vec<Option<usize>> = vec![None; width];
        for &r in active {
            values[r] = Some(r);
        }
        let out = apply(&cfg, &values);
        for (rank, &r) in active.iter().enumerate() {
            assert_eq!(out[rank], Some(r), "active {active:?}");
        }
    }

    #[test]
    fn exhaustive_concentrations_width_8_and_16() {
        for width in [8usize, 16] {
            for mask in 0u32..(1 << width) {
                let active: Vec<usize> = (0..width).filter(|&r| mask >> r & 1 != 0).collect();
                concentrate(width, &active);
            }
        }
    }

    #[test]
    fn random_concentrations_width_128() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let active: Vec<usize> = (0..128).filter(|_| rng.random_bool(0.4)).collect();
            concentrate(128, &active);
        }
    }

    #[test]
    fn general_monotone_requests_can_conflict() {
        // The conflict-free guarantee holds for *packing* (destinations are
        // consecutive ranks), not arbitrary monotone requests: 0→1 and 1→3
        // fight over the odd output of stage-0 element 0.
        let result = route_monotone(4, &[(0, 1), (1, 3)]);
        assert!(matches!(result, Err(RouteError::StageConflict { .. })));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone() {
        let _ = route_monotone(8, &[(0, 3), (1, 1)]);
    }

    #[test]
    fn empty_request_is_identity() {
        let cfg = route_monotone(8, &[]).unwrap();
        let values: Vec<Option<u8>> = (0..8).map(Some).collect();
        assert_eq!(apply(&cfg, &values), values);
    }
}
