//! # lbnn-switch
//!
//! The inter-LPV routing fabric of the logic processor: a multi-stage
//! **non-blocking multicast switch network** in the spirit of Yang & Masson
//! ("Nonblocking broadcast switching networks", IEEE ToC 1991), which the
//! paper instantiates as a 5-stage network with `tsw = 5` cycles of routing
//! latency (§V-B).
//!
//! The network is built from three routable components:
//!
//! 1. a **concentrator** ([`omega`]) — packs the active sources into a
//!    contiguous prefix (monotone routing on a butterfly is conflict-free);
//! 2. a **copy network** ([`copy`]) — Boolean-interval-splitting broadcast
//!    banyan that replicates each source into its contiguous fanout range;
//! 3. a **Beneš permutation network** ([`benes`]) — routed with the classic
//!    looping algorithm, placing every copy at its destination port.
//!
//! [`multicast::MulticastNetwork`] composes the three into
//! the paper's logical 5-stage pipeline (concentrate, copy, Beneš
//! input/middle/output) and demonstrates every request routable by
//! construction — the *non-blocking* property the LPU relies on. A plain
//! [`crossbar`] is provided as the baseline for tests and the FPGA resource
//! model.
//!
//! ```
//! use lbnn_switch::multicast::MulticastNetwork;
//!
//! // 4 sources, 8 destinations; dest j wants source assignment[j].
//! let net = MulticastNetwork::new(4, 8);
//! let assignment = [Some(0), Some(0), None, Some(3), Some(1), Some(0), None, Some(3)];
//! let config = net.route(&assignment).expect("non-blocking");
//! let out = net.apply(&config, &["a", "b", "c", "d"]);
//! assert_eq!(out[0], Some("a"));
//! assert_eq!(out[5], Some("a"));
//! assert_eq!(out[3], Some("d"));
//! assert_eq!(out[2], None);
//! ```

pub mod benes;
pub mod copy;
pub mod crossbar;
pub mod error;
pub mod multicast;
pub mod omega;

pub use error::RouteError;
pub use multicast::{MulticastConfig, MulticastNetwork};

/// Routing latency of the deployed switch network in clock cycles
/// (`tsw = 5` in the paper, giving `tc = 6` with one LPE compute cycle).
pub const SWITCH_STAGES: usize = 5;
