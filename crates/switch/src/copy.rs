//! Broadcast banyan copy network (Boolean interval splitting).
//!
//! Replicates each of `a` concentrated inputs (rows `0..a`) into a
//! contiguous range of output rows. Cell `i` carries an address interval
//! `[lo_i, hi_i]`; the intervals of the inputs partition `[0, C)` in order.
//! At the stage examining address bit `b` (MSB first), a cell routes to the
//! side matching bit `b` of its interval — or *splits* into two copies when
//! the interval spans both halves. This is the classic copy network of
//! multicast ATM switches (Lee/Turner), conflict-free for ordered
//! contiguous intervals on concentrated inputs.

use crate::error::RouteError;

/// Where one output port of a broadcast element takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortSource {
    /// No value.
    #[default]
    None,
    /// From the element's low-row input.
    FromLow,
    /// From the element's high-row input.
    FromHigh,
}

/// One 2×2 broadcast element: each output independently selects an input,
/// so a single input can feed both outputs (the *split*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BroadcastElement {
    /// Source of the low-row output.
    pub out_low: PortSource,
    /// Source of the high-row output.
    pub out_high: PortSource,
}

/// Copy-network configuration: `stages[s][e]`, stage `0` examines the MSB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyConfig {
    width: usize,
    stages: Vec<Vec<BroadcastElement>>,
}

impl CopyConfig {
    /// Network width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stages (`log2(width)`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Routes a copy request: `fanouts[i]` is the number of copies of input
/// row `i` (inputs are concentrated: rows `0..fanouts.len()`). Copy `j` of
/// input `i` lands on row `sum(fanouts[..i]) + j`.
///
/// # Errors
///
/// Returns [`RouteError::TooManyDestinations`] if the total fanout exceeds
/// the width, and [`RouteError::StageConflict`] on an internal collision
/// (impossible for ordered contiguous intervals; kept for property tests).
///
/// # Panics
///
/// Panics if `width` is not a power of two or any fanout is zero.
pub fn route_copies(width: usize, fanouts: &[usize]) -> Result<CopyConfig, RouteError> {
    assert!(
        width.is_power_of_two() && width >= 2,
        "width must be a power of two >= 2"
    );
    assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
    let total: usize = fanouts.iter().sum();
    if total > width {
        return Err(RouteError::TooManyDestinations {
            requested: total,
            available: width,
        });
    }
    let k = width.trailing_zeros() as usize;
    let mut stages = vec![vec![BroadcastElement::default(); width / 2]; k];

    // Active cells: (current_row, lo, hi).
    let mut cells: Vec<(usize, usize, usize)> = Vec::with_capacity(fanouts.len());
    let mut start = 0usize;
    for (row, &f) in fanouts.iter().enumerate() {
        cells.push((row, start, start + f - 1));
        start += f;
    }

    for (s, stage) in stages.iter_mut().enumerate() {
        let b = k - 1 - s; // bit examined at this stage (MSB first)
        let bit = 1usize << b;
        let elem_of = |r: usize| -> usize {
            let low = r & (bit - 1);
            let high = (r >> (b + 1)) << b;
            high | low
        };
        let mut next_cells: Vec<(usize, usize, usize)> = Vec::with_capacity(cells.len() * 2);
        let mut claim = vec![[false; 2]; width / 2];

        for &(row, lo, hi) in &cells {
            let e = elem_of(row);
            let in_side = (row >> b) & 1;
            let from = if in_side == 0 {
                PortSource::FromLow
            } else {
                PortSource::FromHigh
            };
            let lo_b = (lo >> b) & 1;
            let hi_b = (hi >> b) & 1;
            let mut emit = |side: usize,
                            lo2: usize,
                            hi2: usize,
                            stage: &mut Vec<BroadcastElement>|
             -> Result<(), RouteError> {
                if claim[e][side] {
                    return Err(RouteError::StageConflict { stage: s, row });
                }
                claim[e][side] = true;
                let out_row = (row & !bit) | (side << b);
                if side == 0 {
                    stage[e].out_low = from;
                } else {
                    stage[e].out_high = from;
                }
                next_cells.push((out_row, lo2, hi2));
                Ok(())
            };
            match (lo_b, hi_b) {
                (0, 0) => emit(0, lo, hi, stage)?,
                (1, 1) => emit(1, lo, hi, stage)?,
                (0, 1) => {
                    // Split: [lo, mid] goes low, [mid+1, hi] goes high,
                    // where mid = common prefix · 0 · 111…1.
                    let mid = (lo & !(2 * bit - 1)) | (bit - 1);
                    emit(0, lo, mid, stage)?;
                    emit(1, mid + 1, hi, stage)?;
                }
                _ => unreachable!("interval endpoints are ordered (lo <= hi)"),
            }
        }
        cells = next_cells;
    }
    debug_assert!(cells.iter().all(|&(row, lo, hi)| row == lo && lo == hi));
    Ok(CopyConfig { width, stages })
}

/// Applies a copy configuration to optional packets.
///
/// # Panics
///
/// Panics if `values.len()` differs from the configuration width.
pub fn apply<T: Clone>(config: &CopyConfig, values: &[Option<T>]) -> Vec<Option<T>> {
    assert_eq!(values.len(), config.width, "width mismatch");
    let k = config.stages.len();
    let mut cur = values.to_vec();
    for (s, stage) in config.stages.iter().enumerate() {
        let b = k - 1 - s;
        let bit = 1usize << b;
        let mut next: Vec<Option<T>> = vec![None; config.width];
        for (e, elem) in stage.iter().enumerate() {
            let low = ((e >> b) << (b + 1)) | (e & (bit - 1));
            let high = low | bit;
            let pick = |src: PortSource| -> Option<T> {
                match src {
                    PortSource::None => None,
                    PortSource::FromLow => cur[low].clone(),
                    PortSource::FromHigh => cur[high].clone(),
                }
            };
            next[low] = pick(elem.out_low);
            next[high] = pick(elem.out_high);
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(width: usize, fanouts: &[usize]) {
        let cfg = route_copies(width, fanouts)
            .unwrap_or_else(|e| panic!("copy routing failed: {e} (fanouts {fanouts:?})"));
        let mut values: Vec<Option<usize>> = vec![None; width];
        for (i, v) in values.iter_mut().take(fanouts.len()).enumerate() {
            *v = Some(i);
        }
        let out = apply(&cfg, &values);
        let mut expect_row = 0;
        for (i, &f) in fanouts.iter().enumerate() {
            for _ in 0..f {
                assert_eq!(
                    out[expect_row],
                    Some(i),
                    "row {expect_row}, fanouts {fanouts:?}"
                );
                expect_row += 1;
            }
        }
        for got in out.iter().skip(expect_row) {
            assert_eq!(*got, None, "rows past total fanout stay empty");
        }
    }

    #[test]
    fn single_input_full_broadcast() {
        for width in [2usize, 4, 8, 16, 64] {
            check(width, &[width]);
        }
    }

    #[test]
    fn exhaustive_fanout_compositions_width_8() {
        // All compositions (ordered positive integer sums) of totals 1..=8
        // over any number of inputs.
        fn compositions(total: usize) -> Vec<Vec<usize>> {
            if total == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for first in 1..=total {
                for rest in compositions(total - first) {
                    let mut v = vec![first];
                    v.extend(rest);
                    out.push(v);
                }
            }
            out
        }
        for total in 1..=8usize {
            for comp in compositions(total) {
                check(8, &comp);
            }
        }
    }

    #[test]
    fn random_fanouts_width_128() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mut fanouts = Vec::new();
            let mut budget = 128usize;
            while budget > 0 && rng.random_bool(0.9) {
                let f = rng.random_range(1..=budget.min(20));
                fanouts.push(f);
                budget -= f;
            }
            if fanouts.is_empty() {
                fanouts.push(1);
            }
            check(128, &fanouts);
        }
    }

    #[test]
    fn overflow_reports_error() {
        assert!(matches!(
            route_copies(8, &[5, 5]),
            Err(RouteError::TooManyDestinations {
                requested: 10,
                available: 8
            })
        ));
    }
}
