//! Full crossbar baseline.
//!
//! An `m × n` crossbar trivially realizes any multicast assignment but
//! costs `m · n` crosspoints, versus `O(n log n)` elements for the
//! multi-stage fabric. Used as the reference implementation in tests and
//! for the area comparison in the FPGA resource model.

/// A full crossbar with `num_sources` inputs and `num_dests` outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crossbar {
    num_sources: usize,
    num_dests: usize,
}

impl Crossbar {
    /// Creates a crossbar.
    ///
    /// # Panics
    ///
    /// Panics if either port count is zero.
    pub fn new(num_sources: usize, num_dests: usize) -> Self {
        assert!(num_sources > 0 && num_dests > 0, "ports must be non-zero");
        Crossbar {
            num_sources,
            num_dests,
        }
    }

    /// Number of crosspoints (the area cost of the crossbar).
    pub fn crosspoints(&self) -> usize {
        self.num_sources * self.num_dests
    }

    /// Applies a multicast assignment directly.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` or `assignment.len()` mismatch the port
    /// counts, or an assignment references an out-of-range source.
    pub fn apply<T: Clone>(&self, assignment: &[Option<usize>], sources: &[T]) -> Vec<Option<T>> {
        assert_eq!(sources.len(), self.num_sources, "source count mismatch");
        assert!(assignment.len() <= self.num_dests, "too many destinations");
        assignment
            .iter()
            .map(|s| {
                s.map(|s| {
                    assert!(s < self.num_sources, "source {s} out of range");
                    sources[s].clone()
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicast::MulticastNetwork;

    #[test]
    fn crossbar_matches_multistage_fabric() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let (m, n) = (16usize, 32usize);
        let xbar = Crossbar::new(m, n);
        let net = MulticastNetwork::new(m, n);
        let sources: Vec<usize> = (100..100 + m).collect();
        for _ in 0..200 {
            let assignment: Vec<Option<usize>> = (0..n)
                .map(|_| rng.random_bool(0.7).then(|| rng.random_range(0..m)))
                .collect();
            let direct = xbar.apply(&assignment, &sources);
            let cfg = net.route(&assignment).expect("non-blocking");
            let routed = net.apply(&cfg, &sources);
            assert_eq!(direct, routed);
        }
    }

    #[test]
    fn crosspoint_cost() {
        assert_eq!(Crossbar::new(64, 128).crosspoints(), 8192);
    }
}
