//! Property-based tests for the multicast switch fabric.

use lbnn_switch::benes;
use lbnn_switch::crossbar::Crossbar;
use lbnn_switch::multicast::MulticastNetwork;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every multicast assignment routes and delivers exactly (the
    /// non-blocking property, checked against the crossbar reference).
    #[test]
    fn multicast_is_nonblocking(
        sources in 1usize..20,
        dests in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let net = MulticastNetwork::new(sources, dests);
        let xbar = Crossbar::new(sources, dests);
        // Deterministic pseudo-random assignment from the seed.
        let assignment: Vec<Option<usize>> = (0..dests)
            .map(|d| {
                let h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(d as u64);
                if h % 5 == 0 { None } else { Some((h >> 8) as usize % sources) }
            })
            .collect();
        let values: Vec<u32> = (0..sources as u32).map(|s| s + 1000).collect();
        let cfg = net.route(&assignment).expect("non-blocking");
        let routed = net.apply(&cfg, &values);
        let direct = xbar.apply(&assignment, &values);
        prop_assert_eq!(routed, direct);
    }

    /// Beneš routes every permutation (rearrangeable non-blocking).
    #[test]
    fn benes_routes_all_permutations(
        k in 1u32..8,
        seed in 0u64..10_000,
    ) {
        let n = 1usize << k;
        // Fisher-Yates from a seeded LCG.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let cfg = benes::route_permutation(&perm);
        let values: Vec<usize> = (0..n).collect();
        let out = benes::apply(&cfg, &values);
        for (i, &d) in perm.iter().enumerate() {
            prop_assert_eq!(out[d], i);
        }
        prop_assert_eq!(cfg.depth(), benes::depth(n.max(2)));
    }
}
