//! The persistent serving runtime: shared compiled state, a resident
//! worker pool, and dynamic micro-batching to the engine's lane width.
//!
//! The paper's LPU earns its throughput from *word-level parallelism*:
//! every operand word carries `2m` independent Boolean samples, so a
//! compiled block is only fully utilized when samples stream through it
//! packed. The host analogue ([`Backend::BitSliced`]) packs `64 × words`
//! samples per kernel pass (64–1024 lanes) — but real traffic arrives one
//! request at a time. This module closes that gap with the shape real
//! inference servers have:
//!
//! ```text
//!  submit(bits) ──▶ bounded pending buffer ──▶ micro-batcher
//!       │                (backpressure)    (lane-width full │ deadline)
//!       ▼                                          │
//!  RequestHandle ◀── per-request outputs ◀── worker pool (N threads,
//!   .wait()            (lane j = request j)   each: own EngineScratch,
//!                                             shared Arc'd EngineCore)
//! ```
//!
//! * The compiled model is **resident and shared**: workers execute
//!   against the immutable [`EngineCore`](crate::engine::EngineCore)
//!   (or a shared [`CompiledModel`]) through `&self`; only
//!   [`EngineScratch`] is per-worker.
//! * [`Runtime::submit`] enqueues one *single-sample* request and
//!   returns a [`RequestHandle`]. The dynamic micro-batcher packs
//!   pending requests into full bit-sliced frames, flushing when a
//!   batch reaches the serving engine's lane width (or an explicit
//!   [`RuntimeOptions::max_batch`] override) or when the oldest pending
//!   request ages past [`RuntimeOptions::flush_after`] — the classic
//!   size-or-deadline trigger.
//! * The submission path is **bounded**: when the job queue is full,
//!   `submit` blocks until a worker drains it (backpressure instead of
//!   unbounded memory growth).
//! * The runtime measures what serving layers must report: submit→
//!   response latency percentiles (p50/p95/p99) and peak queue depth
//!   ([`QueueStats`]), surfaced through [`Runtime::stats`] and attached
//!   to [`ThroughputReport::wall`] by [`Runtime::report`].
//! * The served target is **hot-swappable**: [`Runtime::swap_engine`] /
//!   [`Runtime::swap_model`] atomically replace the compiled core
//!   (version `vN` → `vN+1`) under live traffic. A micro-batch executes
//!   wholly on the target it was dispatched with, so every response is
//!   bit-identical to either the old or the new version — never a torn
//!   mix — and no accepted request is dropped. [`RuntimeStats`] reports
//!   the serving version, the swap count, and completions split per
//!   version.
//!
//! Outputs are bit-identical to running each request alone through the
//! scalar reference engine — pinned by property tests — because packing
//! is pure lane bookkeeping: request `j` of a micro-batch occupies lane
//! `j` of every input and output word.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lbnn_netlist::Lanes;

use crate::engine::{Backend, Engine, EngineScratch};
use crate::error::CoreError;
use crate::model::{CompiledModel, ModelScratch};
use crate::throughput::{block_throughput, QueueStats, ThroughputReport, WallTiming};

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Per-worker mutable state: one engine scratch (block serving and batch
/// sharding) plus per-layer scratches for whole-model serving. Each pool
/// thread owns exactly one and reuses it for every job it executes.
#[derive(Debug, Default)]
pub struct ServeScratch {
    /// Scratch for single-block execution.
    pub(crate) engine: EngineScratch,
    /// Per-layer scratches for whole-model execution.
    pub(crate) model: ModelScratch,
}

/// A job executed on a pool worker with that worker's scratch.
type Job = Box<dyn FnOnce(&mut ServeScratch) + Send + 'static>;

/// A persistent pool of OS worker threads draining a bounded job queue.
///
/// This replaces the old per-call `std::thread::scope` sharding: threads
/// are spawned once and reused, each owning one [`ServeScratch`], so
/// steady-state serving pays no thread spawn or scratch allocation per
/// call. [`WorkerPool::submit`] blocks while the queue is at capacity —
/// the pool is the backpressure point for everything built on it.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("capacity", &self.shared.capacity)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (at least one) draining a
    /// queue bounded at `capacity` jobs.
    pub(crate) fn spawn(workers: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut scratch = ServeScratch::default();
                    loop {
                        let job = {
                            let mut st = shared.state.lock().expect("pool lock");
                            loop {
                                if let Some(job) = st.queue.pop_front() {
                                    shared.not_full.notify_one();
                                    break Some(job);
                                }
                                // Drain the queue fully before honoring
                                // shutdown, so no accepted job is dropped.
                                if st.shutdown {
                                    break None;
                                }
                                st = shared.not_empty.wait(st).expect("pool lock");
                            }
                        };
                        match job {
                            Some(job) => job(&mut scratch),
                            None => break,
                        }
                    }
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Worker threads in the pool.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job, blocking while the bounded queue is at capacity
    /// (backpressure).
    pub(crate) fn submit(&self, job: Job) {
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.queue.len() >= self.shared.capacity && !st.shutdown {
            st = self.shared.not_full.wait(st).expect("pool lock");
        }
        st.queue.push_back(job);
        drop(st);
        self.shared.not_empty.notify_one();
    }
}

impl Drop for WorkerPool {
    /// Signals shutdown, lets the workers drain every queued job, and
    /// joins them.
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Requests and handles
// ---------------------------------------------------------------------------

struct ResponseSlot {
    state: Mutex<Option<Result<Vec<bool>, CoreError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> ResponseSlot {
        ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, result: Result<Vec<bool>, CoreError>) {
        let mut st = self.state.lock().expect("response lock");
        *st = Some(result);
        drop(st);
        self.ready.notify_all();
    }
}

/// The caller's side of one submitted request.
///
/// Resolves to the request's primary-output bits (in netlist output
/// order) once its micro-batch executes; requests resolve in submission
/// order within each micro-batch, and [`RequestHandle::id`] is the
/// global submission index.
#[must_use = "a dropped handle discards the request's response"]
pub struct RequestHandle {
    slot: Arc<ResponseSlot>,
    id: u64,
}

impl fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.id)
            .finish()
    }
}

impl RequestHandle {
    /// The global submission index of this request (0-based, in
    /// [`Runtime::submit`] call order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request's micro-batch has executed and returns
    /// the request's output bits, one per primary output.
    ///
    /// # Errors
    ///
    /// Returns the execution error of the micro-batch that carried this
    /// request (every request of a failed batch receives the error).
    pub fn wait(self) -> Result<Vec<bool>, CoreError> {
        let mut st = self.slot.state.lock().expect("response lock");
        loop {
            if let Some(result) = st.take() {
                return result;
            }
            st = self.slot.ready.wait(st).expect("response lock");
        }
    }

    /// Non-blocking poll: a copy of the response if the request has
    /// resolved. The slot keeps its value, so a later
    /// [`RequestHandle::wait`] still returns.
    pub fn try_wait(&self) -> Option<Result<Vec<bool>, CoreError>> {
        self.slot.state.lock().expect("response lock").clone()
    }
}

/// One pending request inside the micro-batcher.
struct Request {
    bits: Vec<bool>,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
}

// ---------------------------------------------------------------------------
// Serving target
// ---------------------------------------------------------------------------

/// What the runtime serves: one compiled block or a whole model chain.
#[derive(Clone)]
enum Target {
    Block(Arc<Engine>),
    Model(Arc<CompiledModel>),
}

impl Target {
    fn num_inputs(&self) -> usize {
        match self {
            Target::Block(engine) => engine.program().num_inputs,
            Target::Model(model) => model.layers()[0].flow().program.num_inputs,
        }
    }

    fn backend(&self) -> Backend {
        match self {
            Target::Block(engine) => engine.backend(),
            Target::Model(model) => model.layers()[0].backend(),
        }
    }

    /// Lanes one kernel pass of the served target natively packs — the
    /// micro-batcher's default flush width ([`Backend::lanes`]).
    fn lane_width(&self) -> usize {
        match self {
            Target::Block(engine) => engine.lane_width(),
            Target::Model(model) => model.layers()[0].backend().lanes(),
        }
    }

    fn freq_mhz(&self) -> f64 {
        match self {
            Target::Block(engine) => engine.config().freq_mhz,
            Target::Model(model) => model.config().freq_mhz,
        }
    }

    /// Steady-state clock cycles one micro-batch costs in model time.
    fn steady_clock_cycles(&self) -> u64 {
        match self {
            Target::Block(engine) => engine.steady_clock_cycles_per_batch(),
            Target::Model(model) => model
                .layers()
                .iter()
                .map(|l| l.stats().steady_clock_cycles)
                .sum(),
        }
    }

    /// Packs per-request bit rows and executes one micro-batch.
    ///
    /// Block targets take the zero-copy path: the rows are transposed
    /// ([`Lanes::pack_rows_into`], word-level 64×64 blocks) into the
    /// worker's reusable flat buffer and streamed straight into the
    /// kernel frame — no per-batch `Vec<Lanes>` materialization. Model
    /// chains consume per-layer `Lanes`, so they materialize the
    /// columns once (still through the word-level transpose).
    fn execute_rows(
        &self,
        scratch: &mut ServeScratch,
        rows: &[&[bool]],
        num_inputs: usize,
    ) -> Result<Vec<Lanes>, CoreError> {
        match self {
            Target::Block(engine) => {
                // The buffer is both scratch state and kernel input;
                // take it out for the call to keep the borrows disjoint.
                let mut packed = std::mem::take(&mut scratch.engine.packed);
                Lanes::pack_rows_into(rows, num_inputs, &mut packed);
                let result = engine.run_batch_packed_with(
                    &mut scratch.engine,
                    &packed,
                    num_inputs,
                    rows.len(),
                );
                scratch.engine.packed = packed;
                Ok(result?.outputs)
            }
            Target::Model(model) => {
                let inputs = Lanes::pack_rows(rows, num_inputs);
                Ok(model
                    .infer_with(&mut scratch.model, &inputs)?
                    .outputs()
                    .to_vec())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Worker threads in the persistent pool. `0` means one per
    /// available CPU.
    pub workers: usize,
    /// Bound of the micro-batch job queue; a full queue blocks
    /// [`Runtime::submit`] until a worker drains it (backpressure).
    pub queue_capacity: usize,
    /// Lanes per micro-batch — the size flush trigger. The default `0`
    /// means "the serving engine's lane width"
    /// ([`crate::Engine::lane_width`]): one full bit-sliced frame
    /// (64–1024 lanes depending on the backend), the host analogue of
    /// the hardware's `2m`-sample operand. Any positive value overrides
    /// the width explicitly.
    pub max_batch: usize,
    /// Deadline flush trigger: a partial batch is dispatched once its
    /// oldest request has waited this long, bounding tail latency under
    /// light traffic.
    pub flush_after: Duration,
    /// Admission limit for [`Runtime::try_submit`]: the in-flight
    /// request count at which new requests are shed instead of queued.
    /// The default `0` means "auto": `flush_target × (queue_capacity +
    /// workers + 1)` — enough to fill every queued job slot, every
    /// worker, and the currently forming micro-batch. [`Runtime::submit`]
    /// ignores this and blocks (backpressure); `try_submit` is the
    /// load-shedding entry point network servers use.
    pub admission_limit: usize,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            workers: 0,
            queue_capacity: 32,
            max_batch: 0,
            flush_after: Duration::from_micros(200),
            admission_limit: 0,
        }
    }
}

impl RuntimeOptions {
    /// Sets the worker count (builder style). `0` = one per CPU.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the micro-batch size trigger (builder style). `0` = the
    /// serving engine's lane width (the default).
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the bounded job-queue capacity (builder style).
    #[must_use]
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Sets the deadline flush trigger (builder style).
    #[must_use]
    pub fn flush_after(mut self, flush_after: Duration) -> Self {
        self.flush_after = flush_after;
        self
    }

    /// Sets the [`Runtime::try_submit`] admission limit (builder style).
    /// `0` = auto (see [`RuntimeOptions::admission_limit`]).
    #[must_use]
    pub fn admission_limit(mut self, admission_limit: usize) -> Self {
        self.admission_limit = admission_limit;
        self
    }
}

/// Serving statistics of a [`Runtime`] (snapshot; see
/// [`Runtime::stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeStats {
    /// Requests submitted.
    pub requests: u64,
    /// Micro-batches executed.
    pub micro_batches: u64,
    /// Micro-batches dispatched by the size trigger (batch filled).
    pub full_flushes: u64,
    /// Micro-batches dispatched by the deadline trigger or an explicit
    /// [`Runtime::flush`]/shutdown drain.
    pub deadline_flushes: u64,
    /// Mean lanes per executed micro-batch (packing efficiency; 64 means
    /// every bit-sliced word was full).
    pub mean_lanes_per_batch: f64,
    /// Requests rejected at admission by [`Runtime::try_submit`]
    /// because the runtime was saturated (load shedding). Shed requests
    /// are **not** counted in [`RuntimeStats::requests`].
    pub shed: u64,
    /// Requests currently in flight (submitted but not yet resolved).
    pub in_flight: usize,
    /// The serving version new submissions run on: 0 at construction,
    /// incremented by every [`Runtime::swap_engine`] /
    /// [`Runtime::swap_model`].
    pub version: u64,
    /// Hot swaps performed over the runtime's lifetime.
    pub swaps: u64,
    /// Requests completed on the current serving version. Attribution is
    /// approximate for batches racing a concurrent swap (a batch counts
    /// against the version current at its *completion*), but
    /// `completed_current + completed_prior` always equals the total
    /// completion count.
    pub completed_current: u64,
    /// Requests completed on superseded serving versions.
    pub completed_prior: u64,
    /// Queue depth and submit→response latency percentiles.
    pub queue: QueueStats,
    /// Wall-clock span from first submit to last response, in
    /// microseconds.
    pub elapsed_us: f64,
    /// Completed requests per second over that span.
    pub requests_per_sec: f64,
}

struct RuntimeShared {
    batcher: Mutex<BatchState>,
    /// Wakes the deadline flusher when the pending set changes.
    kick: Condvar,
    stats: StatsShared,
    swap: SwapState,
}

/// The hot-swappable serving target plus its version bookkeeping.
///
/// A swap replaces `target` under the write lock; dispatch paths take a
/// read lock only long enough to clone the `Arc`'d target together with
/// its version, so in-flight micro-batches keep executing the core they
/// were dispatched with while new submissions see the replacement.
struct SwapState {
    target: RwLock<Target>,
    /// Serving version: 0 at construction, +1 per swap. Bumped under the
    /// `target` write lock so a `(target, version)` pair read under the
    /// read lock is always consistent.
    version: AtomicU64,
    /// Total hot swaps performed.
    swaps: AtomicU64,
    /// Resolved size flush trigger for the *current* target
    /// (re-resolved on swap when [`RuntimeOptions::max_batch`] is auto).
    flush_target: AtomicUsize,
}

impl RuntimeShared {
    /// The current serving target and its version, read consistently
    /// under the swap read lock (cloning a [`Target`] is two `Arc`
    /// bumps at most).
    fn current(&self) -> (Target, u64) {
        let guard = self.swap.target.read().expect("swap lock");
        let version = self.swap.version.load(Ordering::Acquire);
        (guard.clone(), version)
    }
}

struct BatchState {
    pending: Vec<Request>,
    next_id: u64,
    shutdown: bool,
}

/// Latency samples kept for percentile estimation, bounded so a
/// long-lived runtime's memory (and `stats()` sort cost) cannot grow
/// with total traffic: reservoir sampling (Algorithm R) over all
/// completions, deterministic via an internal xorshift stream.
struct LatencyReservoir {
    samples: Vec<f64>,
    seen: u64,
    rng: u64,
}

/// Reservoir capacity: enough resolution for a stable p99 while keeping
/// `stats()` O(1) in total requests served.
const LATENCY_SAMPLE_CAP: usize = 4096;

impl Default for LatencyReservoir {
    fn default() -> Self {
        LatencyReservoir {
            samples: Vec::new(),
            seen: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl LatencyReservoir {
    fn record(&mut self, value_us: f64) {
        self.seen += 1;
        if self.samples.len() < LATENCY_SAMPLE_CAP {
            self.samples.push(value_us);
            return;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let slot = (self.rng % self.seen) as usize;
        if slot < LATENCY_SAMPLE_CAP {
            self.samples[slot] = value_us;
        }
    }
}

#[derive(Default)]
struct StatsShared {
    latencies_us: Mutex<LatencyReservoir>,
    requests: AtomicU64,
    completed: AtomicU64,
    /// Completions attributed to the current serving version; rolled
    /// into `completed_prior` by a swap. The pair always sums to
    /// `completed` even when batches race a swap.
    completed_current: AtomicU64,
    /// Completions attributed to superseded serving versions.
    completed_prior: AtomicU64,
    micro_batches: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    shed: AtomicU64,
    lanes_served: AtomicU64,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
    span: Mutex<Option<(Instant, Instant)>>,
    /// Pairs with `idle` to wake [`Runtime::drain`] when `in_flight`
    /// reaches zero; completions only touch it on that transition, so
    /// the hot path stays atomic-only.
    idle_lock: Mutex<()>,
    idle: Condvar,
}

impl StatsShared {
    fn note_submit(&self, now: Instant) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let depth = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_in_flight.fetch_max(depth, Ordering::Relaxed);
        let mut span = self.span.lock().expect("span lock");
        match span.as_mut() {
            None => *span = Some((now, now)),
            Some((_, last)) => *last = (*last).max(now),
        }
    }

    /// Retires `count` requests from the in-flight gauge once their
    /// slots are fulfilled, waking any [`Runtime::drain`] on the
    /// busy→idle transition. Separate from [`StatsShared::note_completion`]
    /// so `in_flight == 0` really means "every accepted handle has
    /// resolved", not just "accounted".
    fn note_resolved(&self, count: usize) {
        let prev = self.in_flight.fetch_sub(count, Ordering::Release);
        if prev == count {
            // Taking the lock orders the notification after a concurrent
            // drainer's check-then-wait.
            let _guard = self.idle_lock.lock().expect("idle lock");
            self.idle.notify_all();
        }
    }

    fn note_completion(&self, latencies: &[f64], now: Instant) {
        self.completed
            .fetch_add(latencies.len() as u64, Ordering::Relaxed);
        {
            let mut reservoir = self.latencies_us.lock().expect("latency lock");
            for &latency in latencies {
                reservoir.record(latency);
            }
        }
        let mut span = self.span.lock().expect("span lock");
        if let Some((_, last)) = span.as_mut() {
            *last = (*last).max(now);
        }
    }
}

/// A persistent serving runtime over a resident compiled block
/// ([`Engine`]) or whole model ([`CompiledModel`]).
///
/// Construction spawns the worker pool and the deadline flusher; from
/// then on [`Runtime::submit`] is the only per-request cost. Dropping
/// the runtime flushes every pending request, drains the job queue, and
/// joins all threads — every issued [`RequestHandle`] resolves.
///
/// ```
/// use lbnn_core::runtime::{Runtime, RuntimeOptions};
/// use lbnn_core::{Flow, LpuConfig};
/// use lbnn_netlist::random::RandomDag;
///
/// let netlist = RandomDag::strict(6, 3, 4).outputs(2).generate(1);
/// let flow = Flow::builder(&netlist).config(LpuConfig::new(4, 4)).compile()?;
/// let runtime = Runtime::from_engine(flow.into_engine()?, RuntimeOptions::default())?;
/// let handles: Vec<_> = (0..100)
///     .map(|i| runtime.submit(&[i % 2 == 0; 6]))
///     .collect::<Result<_, _>>()?;
/// runtime.flush(); // don't wait out the deadline in a doctest
/// for handle in handles {
///     assert_eq!(handle.wait()?.len(), 2);
/// }
/// assert_eq!(runtime.stats().requests, 100);
/// # Ok::<(), lbnn_core::CoreError>(())
/// ```
pub struct Runtime {
    options: RuntimeOptions,
    /// Resolved admission limit for [`Runtime::try_submit`]:
    /// `options.admission_limit`, or the auto formula when 0. Fixed at
    /// construction — a hot swap does not renegotiate admission.
    admission_limit: usize,
    pool: Arc<WorkerPool>,
    shared: Arc<RuntimeShared>,
    flusher: Option<JoinHandle<()>>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("backend", &self.backend())
            .field("version", &self.version())
            .field("workers", &self.pool.workers())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Builds a runtime serving one compiled block. The engine's
    /// immutable core is shared across the pool; its own scratch is
    /// unused.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for unusable options or a
    /// zero-input program (single-sample requests need at least one
    /// input bit).
    pub fn from_engine(mut engine: Engine, options: RuntimeOptions) -> Result<Runtime, CoreError> {
        // The engine's own sharding pool (if `run_batches` ever spawned
        // one) is dead weight here — the runtime brings its own workers.
        engine.retire_pool();
        Runtime::build(Target::Block(Arc::new(engine)), options)
    }

    /// Builds a runtime serving a whole compiled model: each request
    /// flows through every layer (with [`crate::model::chain_inputs`]
    /// adaptation between layers), and the response carries the final
    /// layer's outputs.
    ///
    /// # Errors
    ///
    /// See [`Runtime::from_engine`].
    pub fn from_model(model: CompiledModel, options: RuntimeOptions) -> Result<Runtime, CoreError> {
        Runtime::build(Target::Model(Arc::new(model)), options)
    }

    fn build(target: Target, options: RuntimeOptions) -> Result<Runtime, CoreError> {
        // max_batch 0 = auto: fill exactly one bit-sliced frame of the
        // serving backend (64–1024 lanes).
        let flush_target = if options.max_batch == 0 {
            target.lane_width()
        } else {
            options.max_batch
        };
        if options.flush_after.is_zero() {
            return Err(CoreError::BadConfig {
                reason: "runtime flush_after must be positive".to_string(),
            });
        }
        if options.queue_capacity == 0 {
            return Err(CoreError::BadConfig {
                reason: "runtime queue_capacity must be at least 1".to_string(),
            });
        }
        if target.num_inputs() == 0 {
            return Err(CoreError::BadConfig {
                reason: "the serving runtime needs a program with at least one primary input"
                    .to_string(),
            });
        }
        let workers = if options.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            options.workers
        };
        // Auto admission limit: every queued job slot and every worker
        // full of lane-width batches, plus the currently forming batch.
        let admission_limit = if options.admission_limit == 0 {
            flush_target * (options.queue_capacity + workers + 1)
        } else {
            options.admission_limit
        };
        let pool = Arc::new(WorkerPool::spawn(workers, options.queue_capacity));
        let shared = Arc::new(RuntimeShared {
            batcher: Mutex::new(BatchState {
                pending: Vec::new(),
                next_id: 0,
                shutdown: false,
            }),
            kick: Condvar::new(),
            stats: StatsShared::default(),
            swap: SwapState {
                target: RwLock::new(target),
                version: AtomicU64::new(0),
                swaps: AtomicU64::new(0),
                flush_target: AtomicUsize::new(flush_target),
            },
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            let flush_after = options.flush_after;
            std::thread::spawn(move || {
                let mut st = shared.batcher.lock().expect("batcher lock");
                loop {
                    if st.pending.is_empty() {
                        if st.shutdown {
                            return;
                        }
                        st = shared.kick.wait(st).expect("batcher lock");
                        continue;
                    }
                    let deadline = st.pending[0].submitted + flush_after;
                    let now = Instant::now();
                    if st.shutdown || now >= deadline {
                        let reqs = std::mem::take(&mut st.pending);
                        drop(st);
                        shared
                            .stats
                            .deadline_flushes
                            .fetch_add(1, Ordering::Relaxed);
                        // Resolve the target per flush, not once at
                        // spawn: the deadline flusher must dispatch onto
                        // whatever version is current.
                        let (target, version) = shared.current();
                        dispatch(target, version, &pool, &shared, reqs);
                        st = shared.batcher.lock().expect("batcher lock");
                    } else {
                        let (guard, _) = shared
                            .kick
                            .wait_timeout(st, deadline - now)
                            .expect("batcher lock");
                        st = guard;
                    }
                }
            })
        };
        Ok(Runtime {
            options,
            admission_limit,
            pool,
            shared,
            flusher: Some(flusher),
        })
    }

    /// The worker threads serving this runtime.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The execution backend micro-batches run on (the *current*
    /// serving version's backend).
    pub fn backend(&self) -> Backend {
        self.shared.swap.target.read().expect("swap lock").backend()
    }

    /// The resolved size flush trigger: [`RuntimeOptions::max_batch`] if
    /// set, otherwise the current serving engine's lane width (one full
    /// bit-sliced frame; re-resolved when a hot swap changes the
    /// backend).
    pub fn flush_target(&self) -> usize {
        self.shared.swap.flush_target.load(Ordering::Acquire)
    }

    /// Primary-input bits each request must carry. Stable across hot
    /// swaps: [`Runtime::swap_engine`] rejects replacements that change
    /// the input interface.
    pub fn num_inputs(&self) -> usize {
        self.shared
            .swap
            .target
            .read()
            .expect("swap lock")
            .num_inputs()
    }

    /// The serving version new submissions execute: 0 at construction,
    /// incremented by every successful hot swap.
    pub fn version(&self) -> u64 {
        self.shared.swap.version.load(Ordering::Acquire)
    }

    /// Hot-swaps the served block for `engine`, atomically moving the
    /// runtime from version `vN` to `vN+1` **without stopping traffic**:
    ///
    /// * The pending partial micro-batch is flushed to the old core
    ///   first, and micro-batches already dispatched keep executing the
    ///   old `Arc`'d core they were handed — every response is
    ///   bit-identical to *some* single version, never a torn mix.
    /// * Submissions that land after the swap execute the new core.
    /// * No accepted request is dropped; per-version completion counters
    ///   roll so [`RuntimeStats::completed_current`] restarts for the
    ///   new version.
    ///
    /// Returns the new serving version.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when the replacement's
    /// primary-input count differs from the serving target's — a hot
    /// swap must preserve the request interface (that is what
    /// [`crate::EngineCore::patch_cells`] and
    /// [`crate::Flow::apply_delta`] guarantee by construction).
    pub fn swap_engine(&self, mut engine: Engine) -> Result<u64, CoreError> {
        engine.retire_pool();
        self.swap_target(Target::Block(Arc::new(engine)))
    }

    /// Hot-swaps the served model — [`Runtime::swap_engine`] for
    /// whole-model serving, with the same semantics and interface check.
    ///
    /// # Errors
    ///
    /// See [`Runtime::swap_engine`].
    pub fn swap_model(&self, model: CompiledModel) -> Result<u64, CoreError> {
        self.swap_target(Target::Model(Arc::new(model)))
    }

    fn swap_target(&self, target: Target) -> Result<u64, CoreError> {
        let want = self.num_inputs();
        let got = target.num_inputs();
        if got != want {
            return Err(CoreError::BadConfig {
                reason: format!(
                    "hot swap would change the primary-input count from {want} to {got}; \
                     a replacement must preserve the serving interface"
                ),
            });
        }
        // Dispatch the forming partial batch to the outgoing version:
        // requests accepted before the swap must not silently execute a
        // core newer than any that existed when they were accepted
        // *and* older batches must not linger past the swap unflushed.
        self.flush();
        let stats = &self.shared.stats;
        let version = {
            let mut guard = self.shared.swap.target.write().expect("swap lock");
            *guard = target;
            let version = self.shared.swap.version.fetch_add(1, Ordering::AcqRel) + 1;
            self.shared.swap.swaps.fetch_add(1, Ordering::Relaxed);
            let flush_target = if self.options.max_batch == 0 {
                guard.lane_width()
            } else {
                self.options.max_batch
            };
            self.shared
                .swap
                .flush_target
                .store(flush_target, Ordering::Release);
            // Roll the per-version counters: everything completed so far
            // now belongs to a superseded version.
            let rolled = stats.completed_current.swap(0, Ordering::AcqRel);
            stats.completed_prior.fetch_add(rolled, Ordering::AcqRel);
            version
        };
        Ok(version)
    }

    /// Submits one single-sample request (`bits[i]` = the value of
    /// primary input `i`) and returns a handle resolving to its outputs.
    ///
    /// The request joins the current micro-batch; when the batch fills
    /// ([`Runtime::flush_target`]: the engine's lane width, or an
    /// explicit [`RuntimeOptions::max_batch`]) it is dispatched
    /// immediately, otherwise the deadline flusher dispatches it within
    /// [`RuntimeOptions::flush_after`]. A full job queue blocks this
    /// call until a worker catches up (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InputArity`] when `bits` does not match the
    /// program's primary-input count.
    pub fn submit(&self, bits: &[bool]) -> Result<RequestHandle, CoreError> {
        let want = self.num_inputs();
        if bits.len() != want {
            return Err(CoreError::InputArity {
                expected: want,
                got: bits.len(),
            });
        }
        let now = Instant::now();
        self.shared.stats.note_submit(now);
        let slot = Arc::new(ResponseSlot::new());
        // Allocate and copy outside the batcher lock: concurrent
        // submitters only serialize on the push itself.
        let request = Request {
            bits: bits.to_vec(),
            submitted: now,
            slot: Arc::clone(&slot),
        };
        let flush_target = self.flush_target();
        let (id, full, first_pending) = {
            let mut st = self.shared.batcher.lock().expect("batcher lock");
            let id = st.next_id;
            st.next_id += 1;
            st.pending.push(request);
            if st.pending.len() >= flush_target {
                (id, Some(std::mem::take(&mut st.pending)), false)
            } else {
                (id, None, st.pending.len() == 1)
            }
        };
        match full {
            Some(reqs) => {
                self.shared
                    .stats
                    .full_flushes
                    .fetch_add(1, Ordering::Relaxed);
                // Dispatch outside the batcher lock: if the pool queue is
                // full this blocks, but other submitters keep batching.
                let (target, version) = self.shared.current();
                dispatch(target, version, &self.pool, &self.shared, reqs);
            }
            None => {
                // Arm the deadline flusher only on the empty→non-empty
                // transition: its deadline depends solely on the oldest
                // pending request, which later pushes never change.
                if first_pending {
                    self.shared.kick.notify_all();
                }
            }
        }
        Ok(RequestHandle { slot, id })
    }

    /// The in-flight request count at which [`Runtime::try_submit`]
    /// sheds: [`RuntimeOptions::admission_limit`] if set, otherwise
    /// `flush_target × (queue_capacity + workers + 1)`.
    pub fn admission_limit(&self) -> usize {
        self.admission_limit
    }

    /// Requests currently in flight (submitted but not yet resolved).
    pub fn in_flight(&self) -> usize {
        self.shared.stats.in_flight.load(Ordering::Relaxed)
    }

    /// Admission-controlled submit: like [`Runtime::submit`], but when
    /// the runtime is saturated — [`Runtime::in_flight`] at or past
    /// [`Runtime::admission_limit`] — the request is **shed
    /// immediately** ([`CoreError::Overloaded`], counted in
    /// [`RuntimeStats::shed`]) instead of blocking the caller on
    /// backpressure. This is the entry point for network front-ends: an
    /// accept loop must answer "try later" in microseconds, not stall
    /// behind a full queue.
    ///
    /// Admission is checked before the request is accounted, so a shed
    /// request leaves no trace beyond the shed counter. The check is a
    /// single relaxed atomic load; under a concurrent submit storm a few
    /// requests may be admitted slightly past the limit, which only
    /// means they briefly block like plain `submit` — shedding accuracy
    /// is a latency bound, not an exact quota.
    ///
    /// # Errors
    ///
    /// [`CoreError::InputArity`] for a malformed request (checked before
    /// admission, so bad requests are never miscounted as shed) and
    /// [`CoreError::Overloaded`] when saturated.
    pub fn try_submit(&self, bits: &[bool]) -> Result<RequestHandle, CoreError> {
        let want = self.num_inputs();
        if bits.len() != want {
            return Err(CoreError::InputArity {
                expected: want,
                got: bits.len(),
            });
        }
        let in_flight = self.shared.stats.in_flight.load(Ordering::Relaxed);
        if in_flight >= self.admission_limit {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(CoreError::Overloaded {
                in_flight,
                limit: self.admission_limit,
            });
        }
        self.submit(bits)
    }

    /// Blocks until every request accepted so far has resolved — queue
    /// empty, workers idle — without dropping the runtime. The pending
    /// partial batch is flushed first (a drain must not wait out the
    /// deadline), and re-flushed while waiting so requests racing in
    /// from other threads drain too.
    ///
    /// The runtime stays fully usable afterwards: this is the graceful-
    /// drain primitive for servers (stop accepting, `drain()`, report
    /// final stats), not a shutdown.
    pub fn drain(&self) {
        loop {
            self.flush();
            let stats = &self.shared.stats;
            let guard = stats.idle_lock.lock().expect("idle lock");
            if stats.in_flight.load(Ordering::Acquire) == 0 {
                return;
            }
            // Timed wait: the notify races with our flush above only in
            // the direction of a spurious extra loop, never a hang.
            let _ = stats
                .idle
                .wait_timeout(guard, Duration::from_millis(5))
                .expect("idle lock");
        }
    }

    /// Dispatches the current partial micro-batch immediately instead of
    /// waiting for the size or deadline trigger. No-op when nothing is
    /// pending.
    pub fn flush(&self) {
        let reqs = {
            let mut st = self.shared.batcher.lock().expect("batcher lock");
            std::mem::take(&mut st.pending)
        };
        if !reqs.is_empty() {
            self.shared
                .stats
                .deadline_flushes
                .fetch_add(1, Ordering::Relaxed);
            let (target, version) = self.shared.current();
            dispatch(target, version, &self.pool, &self.shared, reqs);
        }
    }

    /// A snapshot of the runtime's serving statistics.
    pub fn stats(&self) -> RuntimeStats {
        let stats = &self.shared.stats;
        let mut latencies = stats
            .latencies_us
            .lock()
            .expect("latency lock")
            .samples
            .clone();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let micro_batches = stats.micro_batches.load(Ordering::Relaxed);
        let lanes = stats.lanes_served.load(Ordering::Relaxed);
        let completed = stats.completed.load(Ordering::Relaxed);
        let elapsed_us = stats
            .span
            .lock()
            .expect("span lock")
            .map_or(0.0, |(first, last)| {
                last.duration_since(first).as_secs_f64() * 1e6
            });
        RuntimeStats {
            requests: stats.requests.load(Ordering::Relaxed),
            micro_batches,
            full_flushes: stats.full_flushes.load(Ordering::Relaxed),
            deadline_flushes: stats.deadline_flushes.load(Ordering::Relaxed),
            mean_lanes_per_batch: if micro_batches > 0 {
                lanes as f64 / micro_batches as f64
            } else {
                0.0
            },
            shed: stats.shed.load(Ordering::Relaxed),
            in_flight: stats.in_flight.load(Ordering::Relaxed),
            version: self.shared.swap.version.load(Ordering::Acquire),
            swaps: self.shared.swap.swaps.load(Ordering::Relaxed),
            completed_current: stats.completed_current.load(Ordering::Relaxed),
            completed_prior: stats.completed_prior.load(Ordering::Relaxed),
            queue: QueueStats {
                peak_depth: stats.peak_in_flight.load(Ordering::Relaxed),
                p50_us: percentile(&latencies, 0.50),
                p95_us: percentile(&latencies, 0.95),
                p99_us: percentile(&latencies, 0.99),
            },
            elapsed_us,
            requests_per_sec: if elapsed_us > 0.0 {
                completed as f64 / (elapsed_us / 1e6)
            } else {
                0.0
            },
        }
    }

    /// The serving run as a [`ThroughputReport`]: model-time fields
    /// cover every executed micro-batch at the steady-state initiation
    /// interval, and [`ThroughputReport::wall`] carries the measured
    /// host throughput plus the runtime's [`QueueStats`].
    pub fn report(&self) -> ThroughputReport {
        let stats = self.stats();
        let (target, _) = self.shared.current();
        let cycles = target
            .steady_clock_cycles()
            .saturating_mul(stats.micro_batches.max(1))
            .max(1);
        block_throughput(cycles, stats.requests as usize, target.freq_mhz()).with_wall(WallTiming {
            backend: target.backend(),
            workers: self.pool.workers(),
            batches: stats.micro_batches as usize,
            elapsed_us: stats.elapsed_us,
            samples_per_sec: stats.requests_per_sec,
            queue: Some(stats.queue),
        })
    }

    /// Shuts the runtime down: flushes pending requests, drains the job
    /// queue, joins every thread. Called automatically on drop; calling
    /// it twice is a no-op.
    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.batcher.lock().expect("batcher lock");
            st.shutdown = true;
        }
        self.shared.kick.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner();
        // `self.pool` (the last strong Arc once the flusher has joined)
        // drops after this body, joining the workers after they drain
        // the queue — so every issued handle resolves.
    }
}

/// Packs `reqs` into one multi-lane batch, executes it on a pool worker,
/// and fulfills every request's slot (lane `j` of every word belongs to
/// request `j`). `version` is the serving version `target` was read
/// under; the batch executes that exact target even if a swap lands
/// while it is queued, and its completions are attributed per version.
fn dispatch(
    target: Target,
    version: u64,
    pool: &WorkerPool,
    shared: &Arc<RuntimeShared>,
    reqs: Vec<Request>,
) {
    if reqs.is_empty() {
        return;
    }
    let shared = Arc::clone(shared);
    pool.submit(Box::new(move |scratch| {
        let rows: Vec<&[bool]> = reqs.iter().map(|r| r.bits.as_slice()).collect();
        let num_inputs = target.num_inputs();
        // A panicking batch must not kill the persistent worker; turn it
        // into an error every carried request observes.
        let outcome = match catch_unwind(AssertUnwindSafe(|| {
            target.execute_rows(scratch, &rows, num_inputs)
        })) {
            Ok(result) => result,
            Err(_) => Err(CoreError::BadConfig {
                reason: "runtime worker panicked executing a micro-batch".to_string(),
            }),
        };
        let now = Instant::now();
        let latencies: Vec<f64> = reqs
            .iter()
            .map(|req| now.duration_since(req.submitted).as_secs_f64() * 1e6)
            .collect();
        // Account the batch BEFORE resolving any slot: a waiter unblocks
        // the instant its slot fulfills, and a thread that has waited
        // every handle must observe complete stats.
        let stats = &shared.stats;
        stats.micro_batches.fetch_add(1, Ordering::Relaxed);
        stats
            .lanes_served
            .fetch_add(reqs.len() as u64, Ordering::Relaxed);
        stats.note_completion(&latencies, now);
        // Attribute the batch to a serving version. A batch finishing
        // after its version was swapped out counts as "prior" — same
        // bucket the swap's counter roll would have moved it to.
        let bucket = if version == shared.swap.version.load(Ordering::Acquire) {
            &stats.completed_current
        } else {
            &stats.completed_prior
        };
        bucket.fetch_add(reqs.len() as u64, Ordering::Relaxed);
        match outcome {
            Ok(outputs) => {
                // One word-level transpose back to per-request rows
                // instead of a bounds-checked `get` per output bit.
                let mut out_rows = Lanes::unpack_rows(&outputs).into_iter();
                for req in &reqs {
                    req.slot.fulfill(Ok(out_rows.next().unwrap_or_default()));
                }
            }
            Err(e) => {
                for req in &reqs {
                    req.slot.fulfill(Err(e.clone()));
                }
            }
        }
        // Only now are the requests truly resolved: retire them from the
        // in-flight gauge (this is what `drain` waits on).
        stats.note_resolved(reqs.len());
    }));
}

/// Nearest-rank percentile of an ascending-sorted sample (0 for empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Engine {
    /// Converts this engine into a [`Runtime`] serving it — the
    /// compiled core becomes the pool's shared state.
    ///
    /// # Errors
    ///
    /// See [`Runtime::from_engine`].
    pub fn into_runtime(self, options: RuntimeOptions) -> Result<Runtime, CoreError> {
        Runtime::from_engine(self, options)
    }
}

impl CompiledModel {
    /// Converts this model into a [`Runtime`] serving whole-model
    /// inference per request.
    ///
    /// # Errors
    ///
    /// See [`Runtime::from_model`].
    pub fn into_runtime(self, options: RuntimeOptions) -> Result<Runtime, CoreError> {
        Runtime::from_model(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::lpu::LpuConfig;
    use lbnn_netlist::random::RandomDag;

    fn request_bits(width: usize, seed: u64) -> Vec<bool> {
        (0..width).map(|i| (seed >> (i % 64)) & 1 != 0).collect()
    }

    fn compiled(backend: Backend, seed: u64) -> Flow {
        let nl = RandomDag::strict(8, 4, 6).outputs(3).generate(seed);
        Flow::builder(&nl)
            .config(LpuConfig::new(4, 4))
            .backend(backend)
            .compile()
            .unwrap()
    }

    #[test]
    fn pool_runs_jobs_and_drains_on_drop() {
        let pool = WorkerPool::spawn(2, 2);
        assert_eq!(pool.workers(), 2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.submit(Box::new(move |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drop(pool); // joins after draining
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn runtime_serves_requests_bit_identically_to_engine() {
        for backend in [Backend::Scalar, Backend::BitSliced64] {
            let flow = compiled(backend, 3);
            let width = flow.program.num_inputs;
            let reference = flow.engine().unwrap();
            let runtime = Runtime::from_engine(
                flow.engine().unwrap(),
                RuntimeOptions::default().workers(2).max_batch(16),
            )
            .unwrap();
            let requests: Vec<Vec<bool>> =
                (0..50).map(|i| request_bits(width, 0x5eed + i)).collect();
            let handles: Vec<RequestHandle> = requests
                .iter()
                .map(|bits| runtime.submit(bits).unwrap())
                .collect();
            runtime.flush();
            // Reference: all requests packed as one wide batch on the
            // sequential engine.
            let mut scratch = EngineScratch::new();
            let packed = Lanes::pack_rows(&requests, width);
            let expect = reference.run_batch_with(&mut scratch, &packed).unwrap();
            for (j, handle) in handles.into_iter().enumerate() {
                assert_eq!(handle.id(), j as u64);
                let got = handle.wait().unwrap();
                let want: Vec<bool> = expect.outputs.iter().map(|o| o.get(j)).collect();
                assert_eq!(got, want, "{backend} request {j}");
            }
            let stats = runtime.stats();
            assert_eq!(stats.requests, 50);
            assert!(stats.micro_batches >= 4, "16-lane batches over 50 requests");
            assert!(stats.queue.peak_depth > 0);
        }
    }

    #[test]
    fn deadline_flush_resolves_partial_batches() {
        let flow = compiled(Backend::BitSliced64, 5);
        let width = flow.program.num_inputs;
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(1)
                .flush_after(Duration::from_millis(2)),
        )
        .unwrap();
        // 3 requests never fill a 64-lane batch: only the deadline can
        // dispatch them.
        let handles: Vec<RequestHandle> = (0..3)
            .map(|i| runtime.submit(&request_bits(width, i)).unwrap())
            .collect();
        for handle in handles {
            assert_eq!(handle.wait().unwrap().len(), 3);
        }
        let stats = runtime.stats();
        assert!(stats.deadline_flushes >= 1, "{stats:?}");
        assert_eq!(stats.full_flushes, 0);
        assert!(stats.mean_lanes_per_batch <= 3.0);
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_losing_requests() {
        let flow = compiled(Backend::Scalar, 7);
        let width = flow.program.num_inputs;
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(1)
                .max_batch(2)
                .queue_capacity(1),
        )
        .unwrap();
        let handles: Vec<RequestHandle> = (0..40)
            .map(|i| runtime.submit(&request_bits(width, i)).unwrap())
            .collect();
        runtime.flush();
        for handle in handles {
            handle.wait().unwrap();
        }
        assert_eq!(runtime.stats().requests, 40);
    }

    #[test]
    fn submit_rejects_wrong_arity() {
        let flow = compiled(Backend::Scalar, 1);
        let runtime =
            Runtime::from_engine(flow.engine().unwrap(), RuntimeOptions::default()).unwrap();
        let err = runtime.submit(&[true]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InputArity {
                expected: 8,
                got: 1
            }
        ));
    }

    #[test]
    fn bad_options_are_rejected() {
        let flow = compiled(Backend::Scalar, 2);
        let engine = flow.engine().unwrap();
        let err = Runtime::from_engine(
            engine.clone(),
            RuntimeOptions::default().flush_after(Duration::ZERO),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadConfig { .. }));
        let err =
            Runtime::from_engine(engine, RuntimeOptions::default().queue_capacity(0)).unwrap_err();
        assert!(matches!(err, CoreError::BadConfig { .. }));
    }

    /// The default (auto) flush target is the serving engine's lane
    /// width: a 4-word backend fills 256-lane frames, an explicit
    /// `max_batch` still overrides.
    #[test]
    fn auto_flush_target_is_the_engine_lane_width() {
        let nl = RandomDag::strict(8, 4, 6).outputs(3).generate(11);
        for (backend, lanes) in [
            (Backend::Scalar, 64usize),
            (Backend::BitSliced { words: 1 }, 64),
            (Backend::BitSliced { words: 4 }, 256),
            (Backend::BitSliced { words: 8 }, 512),
        ] {
            let flow = Flow::builder(&nl)
                .config(LpuConfig::new(4, 4))
                .backend(backend)
                .compile()
                .unwrap();
            let runtime =
                Runtime::from_engine(flow.engine().unwrap(), RuntimeOptions::default()).unwrap();
            assert_eq!(runtime.flush_target(), lanes, "{backend}");
            let explicit = Runtime::from_engine(
                flow.engine().unwrap(),
                RuntimeOptions::default().max_batch(7),
            )
            .unwrap();
            assert_eq!(explicit.flush_target(), 7, "{backend}");
        }
    }

    /// Submitting exactly one lane-width of requests triggers a size
    /// flush on a wide backend; one more stays pending for the deadline.
    #[test]
    fn wide_backend_size_flush_fires_at_lane_width() {
        let flow = {
            let nl = RandomDag::strict(8, 4, 6).outputs(3).generate(17);
            Flow::builder(&nl)
                .config(LpuConfig::new(4, 4))
                .backend(Backend::BitSliced { words: 2 })
                .compile()
                .unwrap()
        };
        let width = flow.program.num_inputs;
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(1)
                .flush_after(Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(runtime.flush_target(), 128);
        let mut handles: Vec<RequestHandle> = (0..128)
            .map(|i| runtime.submit(&request_bits(width, i)).unwrap())
            .collect();
        // The 128th submit filled one full 128-lane frame.
        for handle in handles.drain(..) {
            handle.wait().unwrap();
        }
        let stats = runtime.stats();
        assert_eq!(stats.full_flushes, 1, "{stats:?}");
        assert_eq!(stats.micro_batches, 1);
        assert!((stats.mean_lanes_per_batch - 128.0).abs() < 1e-9);
        // One straggler only resolves on an explicit/deadline flush.
        let straggler = runtime.submit(&request_bits(width, 999)).unwrap();
        runtime.flush();
        straggler.wait().unwrap();
        let stats = runtime.stats();
        assert_eq!(stats.full_flushes, 1);
        assert_eq!(stats.deadline_flushes, 1);
    }

    #[test]
    fn try_wait_does_not_consume_the_response() {
        let flow = compiled(Backend::Scalar, 6);
        let width = flow.program.num_inputs;
        let runtime =
            Runtime::from_engine(flow.engine().unwrap(), RuntimeOptions::default().workers(1))
                .unwrap();
        let handle = runtime.submit(&request_bits(width, 1)).unwrap();
        runtime.flush();
        // Poll until resolved; the poll must leave the slot intact...
        let polled = loop {
            if let Some(result) = handle.try_wait() {
                break result.unwrap();
            }
            std::thread::yield_now();
        };
        // ...so a subsequent blocking wait still returns the same bits.
        assert_eq!(handle.wait().unwrap(), polled);
    }

    #[test]
    fn drop_resolves_outstanding_handles() {
        let flow = compiled(Backend::BitSliced64, 9);
        let width = flow.program.num_inputs;
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(2)
                .flush_after(Duration::from_secs(3600)),
        )
        .unwrap();
        let handles: Vec<RequestHandle> = (0..5)
            .map(|i| runtime.submit(&request_bits(width, i)).unwrap())
            .collect();
        drop(runtime); // shutdown drain must dispatch the partial batch
        for handle in handles {
            assert_eq!(handle.wait().unwrap().len(), 3);
        }
    }

    #[test]
    fn report_carries_queue_stats() {
        let flow = compiled(Backend::BitSliced64, 4);
        let width = flow.program.num_inputs;
        let steady = flow.stats.steady_clock_cycles;
        // Long deadline: the size trigger alone shapes the 4 batches the
        // exact-count assertions below expect.
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(1)
                .max_batch(8)
                .flush_after(Duration::from_secs(3600)),
        )
        .unwrap();
        let handles: Vec<RequestHandle> = (0..32)
            .map(|i| runtime.submit(&request_bits(width, i)).unwrap())
            .collect();
        runtime.flush();
        for handle in handles {
            handle.wait().unwrap();
        }
        let report = runtime.report();
        assert_eq!(report.batch, 32);
        assert_eq!(report.clock_cycles, steady * 4);
        let wall = report.wall.expect("runtime report measures wall time");
        let queue = wall.queue.expect("runtime report carries queue stats");
        assert!(queue.p50_us <= queue.p95_us && queue.p95_us <= queue.p99_us);
        assert!(queue.peak_depth >= 1);
        assert_eq!(wall.batches, 4);
    }

    /// try_submit sheds immediately (typed error + counter) once the
    /// admission limit is reached, and the runtime keeps serving after
    /// the saturation clears.
    #[test]
    fn try_submit_sheds_at_the_admission_limit() {
        let flow = compiled(Backend::BitSliced64, 13);
        let width = flow.program.num_inputs;
        // Long deadline + wide batch: accepted requests sit pending, so
        // in_flight is fully under the test's control.
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(1)
                .admission_limit(4)
                .flush_after(Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(runtime.admission_limit(), 4);
        let accepted: Vec<RequestHandle> = (0..4)
            .map(|i| runtime.try_submit(&request_bits(width, i)).unwrap())
            .collect();
        assert_eq!(runtime.in_flight(), 4);
        // The 5th is shed without blocking; arity errors are not shed.
        let err = runtime.try_submit(&request_bits(width, 99)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Overloaded {
                in_flight: 4,
                limit: 4
            }
        ));
        assert!(matches!(
            runtime.try_submit(&[true]).unwrap_err(),
            CoreError::InputArity { .. }
        ));
        let stats = runtime.stats();
        assert_eq!(stats.shed, 1, "arity errors must not count as shed");
        assert_eq!(stats.requests, 4);
        // Draining clears the saturation; admission reopens.
        runtime.drain();
        for handle in accepted {
            assert_eq!(handle.wait().unwrap().len(), 3);
        }
        assert_eq!(runtime.in_flight(), 0);
        let reopened = runtime.try_submit(&request_bits(width, 5)).unwrap();
        runtime.flush();
        reopened.wait().unwrap();
        assert_eq!(runtime.stats().shed, 1);
    }

    /// The auto admission limit scales with flush target, queue capacity
    /// and workers.
    #[test]
    fn auto_admission_limit_formula() {
        let flow = compiled(Backend::BitSliced64, 15);
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(2)
                .queue_capacity(3)
                .max_batch(10),
        )
        .unwrap();
        // flush_target × (queue_capacity + workers + 1) = 10 × 6.
        assert_eq!(runtime.admission_limit(), 60);
    }

    /// drain() blocks until idle without consuming the runtime, flushing
    /// the pending partial batch instead of waiting out the deadline.
    #[test]
    fn drain_resolves_pending_requests_and_keeps_serving() {
        let flow = compiled(Backend::Scalar, 21);
        let width = flow.program.num_inputs;
        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default()
                .workers(2)
                .flush_after(Duration::from_secs(3600)),
        )
        .unwrap();
        runtime.drain(); // idle drain is an immediate no-op
        for round in 0..3u64 {
            let handles: Vec<RequestHandle> = (0..7)
                .map(|i| runtime.submit(&request_bits(width, round * 7 + i)).unwrap())
                .collect();
            runtime.drain();
            assert_eq!(runtime.in_flight(), 0);
            for handle in handles {
                assert!(handle.try_wait().expect("drained request resolved").is_ok());
            }
        }
        assert_eq!(runtime.stats().requests, 21);
    }

    /// Hot swap under a quiet runtime: the version bumps, submissions
    /// after the swap are bit-identical to the replacement engine,
    /// responses resolved before it still match the original, and the
    /// per-version completion counters sum to the total.
    #[test]
    fn swap_engine_moves_new_submissions_to_the_new_version() {
        use lbnn_netlist::PatchSet;
        let flow = compiled(Backend::BitSliced64, 23);
        let width = flow.program.num_inputs;
        // Replacement: the same structure with a few gates negated.
        let patches: PatchSet = flow
            .netlist
            .iter()
            .filter(|(_, node)| node.op().is_gate2())
            .take(3)
            .map(|(id, node)| (id, node.op().negated().unwrap()))
            .collect();
        assert_eq!(patches.len(), 3);
        let base_engine = flow.engine().unwrap();
        let patched_engine = base_engine.patch_cells(&patches).unwrap();

        let runtime = Runtime::from_engine(
            flow.engine().unwrap(),
            RuntimeOptions::default().workers(2).max_batch(8),
        )
        .unwrap();
        assert_eq!(runtime.version(), 0);
        let requests: Vec<Vec<bool>> = (0..20).map(|i| request_bits(width, 0xabc + i)).collect();
        let packed = Lanes::pack_rows(&requests, width);
        let mut scratch = EngineScratch::new();
        let before = base_engine.run_batch_with(&mut scratch, &packed).unwrap();
        let after = patched_engine
            .run_batch_with(&mut scratch, &packed)
            .unwrap();

        let submit_all = |runtime: &Runtime| -> Vec<Vec<bool>> {
            let handles: Vec<RequestHandle> = requests
                .iter()
                .map(|bits| runtime.submit(bits).unwrap())
                .collect();
            runtime.drain();
            handles.into_iter().map(|h| h.wait().unwrap()).collect()
        };

        let got = submit_all(&runtime);
        for (j, bits) in got.iter().enumerate() {
            let want: Vec<bool> = before.outputs.iter().map(|o| o.get(j)).collect();
            assert_eq!(*bits, want, "pre-swap request {j}");
        }

        let version = runtime.swap_engine(patched_engine).unwrap();
        assert_eq!(version, 1);
        assert_eq!(runtime.version(), 1);

        let got = submit_all(&runtime);
        for (j, bits) in got.iter().enumerate() {
            let want: Vec<bool> = after.outputs.iter().map(|o| o.get(j)).collect();
            assert_eq!(*bits, want, "post-swap request {j}");
        }

        let stats = runtime.stats();
        assert_eq!(stats.requests, 40);
        assert_eq!(stats.version, 1);
        assert_eq!(stats.swaps, 1);
        assert_eq!(stats.completed_prior, 20, "pre-swap completions rolled");
        assert_eq!(stats.completed_current, 20);
        assert_eq!(
            stats.completed_current + stats.completed_prior,
            stats.requests,
            "per-version counters must partition the completions"
        );
    }

    /// A hot swap must preserve the request interface: a replacement
    /// with a different primary-input count is rejected with a typed
    /// error and the runtime keeps serving the old version.
    #[test]
    fn swap_engine_rejects_interface_changes() {
        let flow = compiled(Backend::Scalar, 29);
        let width = flow.program.num_inputs;
        let runtime =
            Runtime::from_engine(flow.engine().unwrap(), RuntimeOptions::default().workers(1))
                .unwrap();
        // A netlist with a different input count is not a legal swap.
        let other = RandomDag::strict(5, 3, 4).outputs(2).generate(31);
        let other_flow = Flow::builder(&other)
            .config(LpuConfig::new(4, 4))
            .compile()
            .unwrap();
        let err = runtime
            .swap_engine(other_flow.engine().unwrap())
            .unwrap_err();
        assert!(matches!(err, CoreError::BadConfig { .. }), "{err}");
        assert_eq!(runtime.version(), 0);
        assert_eq!(runtime.stats().swaps, 0);
        // Still serving.
        let handle = runtime.submit(&request_bits(width, 1)).unwrap();
        runtime.flush();
        handle.wait().unwrap();
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 0.50), 5.0);
        assert_eq!(percentile(&sorted, 0.95), 10.0);
        assert_eq!(percentile(&sorted, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[42.0], 0.99), 42.0);
    }
}
