//! The LPU program: instruction queues, buffer layouts and output taps.
//!
//! One [`VliwInstr`] configures an entire LPV for one compute cycle: the
//! operation of each of its `m` LPEs, the multicast switch assignment
//! feeding the LPV's `2m` operand ports, and which arriving ports are
//! latched into snapshot registers for later consumption. Instructions
//! live at `(LPV, address)` in the instruction queues (Fig 6); the
//! read-address shift register makes LPV `k` execute address `c − k` at
//! compute cycle `c`.

use lbnn_netlist::{NodeId, Op};

use crate::compiler::mfg::MfgId;

/// Where an LPE operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSrc {
    /// Delivered by the switch network to this operand port in this cycle
    /// (flow-through from the previous LPV — the most-recent-child path).
    Route(u16),
    /// Read (and release) the snapshot register of this operand port.
    Snapshot(u16),
    /// Read the input data buffer at this address (sequential counter
    /// layout; only bottom-level-1 MFGs use this).
    Input(u32),
    /// A constant operand (tie cell).
    Const(bool),
}

/// One LPE's work for one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpeInstr {
    /// Boolean operation to perform.
    pub op: Op,
    /// First operand.
    pub a: OperandSrc,
    /// Second operand (two-input operations only).
    pub b: Option<OperandSrc>,
    /// The netlist node computed here (diagnostics / verification).
    pub node: NodeId,
}

/// One LPV's configuration for one compute cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VliwInstr {
    /// Per-LPE operations (`None` = LPE idle this cycle).
    pub lpes: Vec<Option<LpeInstr>>,
    /// Multicast switch assignment feeding this LPV: `route_in[port] =
    /// Some(src)` delivers the previous LPV's LPE `src` output to operand
    /// port `port` (ports `2j`/`2j+1` belong to LPE `j`).
    pub route_in: Vec<Option<u16>>,
    /// Ports whose arriving value is latched into the snapshot register of
    /// the same index (deliveries for a parent MFG executing later).
    pub snapshot_writes: Vec<u16>,
    /// MFG whose level executes here (diagnostics; `None` for pure
    /// delivery/idle slots).
    pub mfg: Option<MfgId>,
}

impl VliwInstr {
    /// An empty (idle) instruction for an LPV with `m` LPEs.
    pub fn empty(m: usize) -> Self {
        VliwInstr {
            lpes: vec![None; m],
            route_in: vec![None; 2 * m],
            snapshot_writes: Vec::new(),
            mfg: None,
        }
    }

    /// `true` if the instruction neither computes nor routes nor latches.
    pub fn is_idle(&self) -> bool {
        self.lpes.iter().all(Option::is_none)
            && self.route_in.iter().all(Option::is_none)
            && self.snapshot_writes.is_empty()
    }

    /// Number of active LPEs.
    pub fn active_lpes(&self) -> usize {
        self.lpes.iter().filter(|l| l.is_some()).count()
    }
}

/// Content of one input-data-buffer address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSlot {
    /// The lanes of primary input `pi` (index into the netlist's input list).
    Pi(u32),
}

/// Where a primary output's lanes appear during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputTap {
    /// Primary-output index.
    pub po: usize,
    /// LPV producing the value.
    pub lpv: usize,
    /// Compute cycle at which the value is produced.
    pub cycle: usize,
    /// LPE holding the value.
    pub lpe: usize,
}

/// A complete compiled program for one LPU configuration.
#[derive(Debug, Clone)]
pub struct LpuProgram {
    /// LPEs per LPV.
    pub m: usize,
    /// LPVs per LPU.
    pub n: usize,
    /// Instruction queue depth (addresses per LPV).
    pub queue_depth: usize,
    /// Total compute cycles of one pass (including output drain).
    pub total_cycles: usize,
    /// `queues[lpv][address]` — the instruction store (Fig 6).
    pub queues: Vec<Vec<Option<VliwInstr>>>,
    /// Input data buffer layout, read sequentially during execution.
    pub input_buffer: Vec<InputSlot>,
    /// Output taps, one per primary output.
    pub outputs: Vec<OutputTap>,
    /// Number of primary inputs the program expects.
    pub num_inputs: usize,
}

impl LpuProgram {
    /// The instruction executing on `lpv` at compute `cycle`, if any.
    pub fn instr_at(&self, lpv: usize, cycle: usize) -> Option<&VliwInstr> {
        if cycle < lpv {
            return None;
        }
        let addr = cycle - lpv;
        self.queues.get(lpv)?.get(addr)?.as_ref()
    }

    /// Total stored (non-empty) instructions.
    pub fn instruction_count(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .filter(|i| i.is_some())
            .count()
    }

    /// Total LPE operations executed in one pass.
    pub fn lpe_op_count(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .flatten()
            .map(VliwInstr::active_lpes)
            .sum()
    }

    /// Instruction-queue occupancy: stored instructions over `n × depth`.
    pub fn queue_occupancy(&self) -> f64 {
        let capacity = self.n * self.queue_depth;
        if capacity == 0 {
            0.0
        } else {
            self.instruction_count() as f64 / capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instruction_is_idle() {
        let i = VliwInstr::empty(4);
        assert!(i.is_idle());
        assert_eq!(i.active_lpes(), 0);
        assert_eq!(i.lpes.len(), 4);
        assert_eq!(i.route_in.len(), 8);
    }

    #[test]
    fn program_indexing_respects_shift_register() {
        let m = 2;
        let mut queues = vec![vec![None, None], vec![None, None]];
        queues[1][0] = Some(VliwInstr::empty(m));
        let prog = LpuProgram {
            m,
            n: 2,
            queue_depth: 2,
            total_cycles: 3,
            queues,
            input_buffer: vec![],
            outputs: vec![],
            num_inputs: 0,
        };
        // LPV 1 executes address 0 at cycle 1 (cycle - lpv = 0).
        assert!(prog.instr_at(1, 0).is_none(), "unreachable before fill");
        assert!(prog.instr_at(1, 1).is_some());
        assert!(prog.instr_at(0, 0).is_none(), "nothing stored");
        assert_eq!(prog.instruction_count(), 1);
    }
}
