//! The compile path as an explicit pass pipeline.
//!
//! `run` drives the paper's Fig 1 flow as a sequence of named passes —
//! `optimize → balance → levelize → partition → merge → schedule →
//! codegen`, plus a `locality` pass for bit-sliced backends that
//! compiles the fused, slot-renumbered kernel tape
//! ([`lbnn_netlist::BitSliceEvaluator`]) and records how far the live
//! frame shrank — threading a `CompileContext` through them. Every pass
//! reports its wall time and a before/after statistic into the
//! [`CompileReport`] attached to the resulting
//! [`crate::flow::Flow`], so per-stage compile cost is visible at
//! every surface (`lbnnc`, `CompiledModel` layers, the
//! `compile_pipeline` bench) instead of being buried in one monolithic
//! compile call.
//!
//! The schedule pass keeps the shared-children-then-duplicate fallback:
//! if snapshot-residency packing fails, the partition/merge/schedule
//! passes re-run with duplicated fan-in cones (the paper's condition (3)
//! overlap) and the report keeps the timings of the successful attempt,
//! with [`CompileReport::schedule_attempts`] recording the retry.

use std::fmt;
use std::time::Instant;

use lbnn_logic_synth::{optimize, OptimizeOptions};
use lbnn_netlist::balance::balance;
use lbnn_netlist::{BitSliceEvaluator, Levels, Netlist, Op, PartitionedEngine, MAX_PARTITIONS};

use crate::compiler::codegen::generate;
use crate::compiler::merge::{merge_mfgs, MergeStats};
use crate::compiler::partition::partition;
use crate::compiler::schedule::schedule_spacetime;
use crate::engine::Backend;
use crate::error::CoreError;
use crate::flow::{CompileArtifacts, Flow, FlowOptions, FlowStats};
use crate::lpu::LpuConfig;

/// One pass's entry in a [`CompileReport`]: what ran, how long it took,
/// and what it did to its headline statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Pass name (`optimize`, `balance`, `levelize`, `partition`,
    /// `merge`, `schedule`, `codegen`).
    pub name: String,
    /// What [`before`](PassReport::before)/[`after`](PassReport::after)
    /// count (`gates`, `depth`, `mfgs`, `cycles`, `instrs`).
    pub stat: String,
    /// Wall time of the pass in microseconds.
    pub wall_us: f64,
    /// Statistic value entering the pass (equals
    /// [`after`](PassReport::after) for passes that only produce).
    pub before: usize,
    /// Statistic value leaving the pass.
    pub after: usize,
}

impl PassReport {
    /// Signed change of the statistic across the pass.
    pub fn delta(&self) -> isize {
        self.after as isize - self.before as isize
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:>10.1} us   {}",
            self.name, self.wall_us, self.stat
        )?;
        if self.before == self.after {
            write!(f, " {}", self.after)
        } else {
            write!(f, " {} -> {}", self.before, self.after)
        }
    }
}

/// Per-pass wall times and stat deltas of one compilation, in pass
/// order. Attached to every [`Flow`] and serialized into artifacts, so
/// a loaded flow still knows what its compile cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompileReport {
    /// One entry per executed pass, in execution order.
    pub passes: Vec<PassReport>,
    /// Partition/merge/schedule attempts: 1 normally, 2 when the
    /// duplicate-children fallback re-partitioned.
    pub schedule_attempts: usize,
}

impl CompileReport {
    /// Total wall time across all recorded passes, in microseconds.
    pub fn total_us(&self) -> f64 {
        self.passes.iter().map(|p| p.wall_us).sum()
    }

    /// The entry for a pass, by name.
    pub fn pass(&self, name: &str) -> Option<&PassReport> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// `true` when no passes were recorded (e.g. a report deserialized
    /// from a pre-report artifact).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for pass in &self.passes {
            writeln!(f, "{pass}")?;
        }
        write!(f, "total     {:>10.1} us", self.total_us())?;
        if self.schedule_attempts > 1 {
            write!(
                f,
                "   ({} schedule attempts; duplicated children)",
                self.schedule_attempts
            )?;
        }
        Ok(())
    }
}

/// The state threaded through the passes: the working netlist and every
/// intermediate artifact produced so far, plus the growing report.
///
/// Passes consume and populate fields in order; [`run`] owns the
/// sequencing (and the schedule-fallback control flow), each pass only
/// its own transformation.
struct CompileContext {
    config: LpuConfig,
    options: FlowOptions,
    source: Netlist,
    report: CompileReport,
}

impl CompileContext {
    /// Times `f`, recording a [`PassReport`] with the given name and
    /// statistic. `before` of `None` means the pass produces its
    /// statistic rather than transforming it.
    fn pass<T>(
        &mut self,
        name: &'static str,
        stat: &'static str,
        before: Option<usize>,
        f: impl FnOnce() -> Result<(T, usize), CoreError>,
    ) -> Result<T, CoreError> {
        let start = Instant::now();
        let (value, after) = f()?;
        self.report.passes.push(PassReport {
            name: name.to_string(),
            stat: stat.to_string(),
            wall_us: start.elapsed().as_secs_f64() * 1e6,
            before: before.unwrap_or(after),
            after,
        });
        Ok(value)
    }
}

/// Runs the full pass pipeline — the engine behind
/// [`FlowBuilder::compile`](crate::flow::FlowBuilder::compile).
///
/// Clone accounting: `source` keeps the caller's netlist as the
/// verification oracle (one clone). With optimization on, the optimizer
/// produces the working copy; with it off, one further clone is the
/// working copy. [`buffer_level0_outputs`] and the balancer then own
/// their input and never copy an already-correct netlist.
///
/// # Errors
///
/// Propagates configuration, netlist, partitioning and scheduling
/// errors; see [`CoreError`].
pub(crate) fn run(
    netlist: &Netlist,
    config: LpuConfig,
    options: FlowOptions,
) -> Result<Flow, CoreError> {
    config.validate()?;
    options.backend.validate()?;
    if options.partitions == 0 || options.partitions > MAX_PARTITIONS {
        return Err(CoreError::BadConfig {
            reason: format!(
                "partitions must be 1..={MAX_PARTITIONS}, got {}",
                options.partitions
            ),
        });
    }
    netlist.validate()?;
    let mut cx = CompileContext {
        config,
        options,
        source: netlist.clone(),
        report: CompileReport::default(),
    };
    // Copies of the Copy-able knobs, so pass closures can read them while
    // `cx` is mutably borrowed for report recording.
    let config = cx.config;
    let options = cx.options;

    // 1. Logic optimization (Fig 1 pre-processing).
    let gates_in = cx.source.gate_count();
    let optimized = cx.pass("optimize", "gates", Some(gates_in), || {
        let out = if options.optimize {
            optimize(netlist, OptimizeOptions::default()).0
        } else {
            netlist.clone()
        };
        let gates = out.gate_count();
        Ok((out, gates))
    })?;

    // 2. Full path balancing (plus the guard buffering POs driven by
    //    level-0 nodes, so every output is computed by a gate).
    let gates_opt = optimized.gate_count();
    let (balanced, balance_buffers) = cx.pass("balance", "gates", Some(gates_opt), || {
        let guarded = buffer_level0_outputs(optimized);
        let (balanced, bal_stats) = balance(&guarded);
        let gates = balanced.gate_count();
        Ok(((balanced, bal_stats.total()), gates))
    })?;

    // 3. Levelize the balanced netlist.
    let levels = cx.pass("levelize", "depth", None, || {
        let levels = Levels::compute(&balanced);
        let depth = levels.depth() as usize;
        Ok((levels, depth))
    })?;
    debug_assert!(levels.is_fully_balanced(&balanced));

    // 4-6. Partition (Algorithms 1-2), merge (Algorithm 3), schedule.
    // Child MFGs are shared between parents first; if snapshot
    // residency cannot be packed that way, fall back to the paper's
    // literal Algorithm 1, which duplicates each parent's fan-in cones
    // (condition (3) overlap) and is always schedulable. On fallback the
    // failed attempt's pass entries are dropped so the report describes
    // the compile that actually produced the program.
    let mut attempt_options = options.partition;
    let mut attempts = 0usize;
    let (part, merge_stats, schedule, mfgs_before) = loop {
        attempts += 1;
        let attempt_mark = cx.report.passes.len();
        let raw = cx.pass("partition", "mfgs", None, || {
            let raw = partition(&balanced, &levels, config.m, attempt_options)?;
            let count = raw.mfg_count();
            Ok((raw, count))
        })?;
        let mfgs_before = raw.mfg_count();
        let (part, merge_stats) = cx.pass("merge", "mfgs", Some(mfgs_before), || {
            let (part, stats) = if options.merge {
                merge_mfgs(&raw, config.m)
            } else {
                (
                    raw,
                    MergeStats {
                        before: mfgs_before,
                        after: mfgs_before,
                        merges: 0,
                    },
                )
            };
            let count = part.mfg_count();
            Ok(((part, stats), count))
        })?;
        let schedule_start = Instant::now();
        match schedule_spacetime(&part, config.n, config.m) {
            Ok(schedule) => {
                cx.report.passes.push(PassReport {
                    name: "schedule".to_string(),
                    stat: "cycles".to_string(),
                    wall_us: schedule_start.elapsed().as_secs_f64() * 1e6,
                    before: schedule.total_cycles,
                    after: schedule.total_cycles,
                });
                break (part, merge_stats, schedule, mfgs_before);
            }
            Err(_) if !attempt_options.duplicate_children => {
                cx.report.passes.truncate(attempt_mark);
                attempt_options.duplicate_children = true;
            }
            Err(e) => return Err(e),
        }
    };
    cx.report.schedule_attempts = attempts;

    // 7. Code generation.
    let program = cx.pass("codegen", "instrs", None, || {
        let program = generate(&balanced, &levels, &part, &schedule, &config)?;
        let count = program.instruction_count();
        Ok((program, count))
    })?;

    // 8. Tape locality (bit-sliced backends only): compile the fused,
    //    slot-renumbered, cache-budgeted kernel tape now, so the report
    //    records what the pass saved (frame slots before → after) and
    //    the engine reuses the tape instead of recompiling it.
    let tape = match options.backend {
        Backend::Scalar => None,
        Backend::BitSliced { .. } => {
            let slots_before = balanced.len();
            Some(cx.pass("locality", "slots", Some(slots_before), || {
                let tape = BitSliceEvaluator::compile(&balanced);
                let live = tape.tape_stats().frame_slots;
                Ok((tape, live))
            })?)
        }
    };

    // 9. Exchange (bit-sliced backends with `partitions > 1` only):
    //    split the tape into per-partition slot spaces and build the
    //    compile-time cross-partition exchange schedule. The report
    //    records the cut: distinct crossing nets in, scheduled word
    //    copies out.
    let partitioned = match options.backend {
        Backend::BitSliced { .. } if options.partitions > 1 => {
            Some(cx.pass("exchange", "cut-nets", None, || {
                let engine = PartitionedEngine::compile(&balanced, options.partitions)
                    .map_err(CoreError::Netlist)?;
                let cut = engine.partition_stats().cut_nets;
                Ok((engine, cut))
            })?)
        }
        _ => None,
    };

    let stats = FlowStats {
        gates: balanced.gate_count(),
        depth: levels.depth(),
        balance_buffers,
        mfgs_before_merge: mfgs_before,
        mfgs: part.mfg_count(),
        executed_nodes: part.executed_nodes(),
        compute_cycles: schedule.total_cycles,
        clock_cycles: schedule.clock_cycles(config.tc()),
        queue_depth: schedule.queue_depth,
        steady_clock_cycles: schedule.queue_depth as u64 * config.tc() as u64,
    };
    let CompileContext {
        config,
        options: _,
        source,
        report,
    } = cx;
    Ok(Flow {
        netlist: balanced,
        source,
        program,
        config,
        backend: options.backend,
        stats,
        report,
        partitions: options.partitions,
        partitioned,
        artifacts: Some(CompileArtifacts {
            levels,
            partition: part,
            merge_stats,
            schedule,
            tape,
        }),
    })
}

/// Inserts a buffer after any primary output driven by a level-0 node
/// (primary input or constant), so the compiler always has a gate to
/// schedule per output. Takes ownership: the common no-fix case returns
/// the input unchanged, without a copy.
fn buffer_level0_outputs(netlist: Netlist) -> Netlist {
    let needs_fix = netlist
        .outputs()
        .iter()
        .any(|o| netlist.node(o.node).op() == Op::Input || netlist.node(o.node).op().arity() == 0);
    if !needs_fix {
        return netlist;
    }
    let out = netlist;
    let fixes: Vec<(usize, lbnn_netlist::NodeId)> = out
        .outputs()
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            let op = out.node(o.node).op();
            op == Op::Input || op.arity() == 0
        })
        .map(|(i, o)| (i, o.node))
        .collect();
    // Rebuild with buffered outputs.
    let mut rebuilt = Netlist::new(out.name().to_string());
    let mut remap = Vec::with_capacity(out.len());
    for (id, node) in out.iter() {
        let new_id = match node.op() {
            Op::Input => rebuilt.add_input(out.node_name(id).unwrap_or("in").to_string()),
            op => {
                let fanins: Vec<_> = node.fanins().iter().map(|f| remap[f.index()]).collect();
                rebuilt.add_node(op, &fanins).expect("topo preserved")
            }
        };
        remap.push(new_id);
    }
    for (i, o) in out.outputs().iter().enumerate() {
        let mut node = remap[o.node.index()];
        if fixes.iter().any(|&(fi, _)| fi == i) {
            node = rebuilt.add_gate1(Op::Buf, node);
        }
        rebuilt.add_output(node, o.name.clone());
    }
    rebuilt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use lbnn_netlist::random::RandomDag;

    /// The canonical pass order every compile records.
    const PASS_ORDER: [&str; 7] = [
        "optimize",
        "balance",
        "levelize",
        "partition",
        "merge",
        "schedule",
        "codegen",
    ];

    #[test]
    fn report_records_every_pass_in_order() {
        let nl = RandomDag::strict(16, 6, 12).outputs(4).generate(3);
        let flow = Flow::builder(&nl)
            .config(LpuConfig::new(8, 4))
            .compile()
            .unwrap();
        let names: Vec<&str> = flow.report.passes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, PASS_ORDER);
        assert!(flow.report.schedule_attempts >= 1);
        assert!(flow.report.total_us() > 0.0);
        for pass in &flow.report.passes {
            assert!(pass.wall_us >= 0.0, "{}", pass.name);
        }
    }

    #[test]
    fn report_stats_are_consistent_with_flow_stats() {
        let nl = RandomDag::strict(24, 7, 16).outputs(6).generate(9);
        let flow = Flow::builder(&nl)
            .config(LpuConfig::new(8, 4))
            .compile()
            .unwrap();
        let r = &flow.report;
        assert_eq!(r.pass("balance").unwrap().after, flow.stats.gates);
        assert_eq!(r.pass("levelize").unwrap().after, flow.stats.depth as usize);
        assert_eq!(
            r.pass("partition").unwrap().after,
            flow.stats.mfgs_before_merge
        );
        assert_eq!(
            r.pass("merge").unwrap().before,
            flow.stats.mfgs_before_merge
        );
        assert_eq!(r.pass("merge").unwrap().after, flow.stats.mfgs);
        assert_eq!(r.pass("schedule").unwrap().after, flow.stats.compute_cycles);
        assert_eq!(
            r.pass("codegen").unwrap().after,
            flow.program.instruction_count()
        );
        let merge = r.pass("merge").unwrap();
        assert!(merge.delta() <= 0, "merging never adds MFGs");
    }

    #[test]
    fn merge_disabled_is_a_recorded_noop() {
        let nl = RandomDag::strict(20, 6, 14).outputs(4).generate(5);
        let flow = Flow::builder(&nl)
            .config(LpuConfig::new(8, 4))
            .merge(false)
            .compile()
            .unwrap();
        let merge = flow.report.pass("merge").unwrap();
        assert_eq!(merge.before, merge.after);
        assert_eq!(flow.stats.mfgs, flow.stats.mfgs_before_merge);
    }

    /// Bit-sliced compiles append the locality pass: the report shows
    /// the frame shrinking from one-slot-per-node to the live footprint,
    /// and the compiled tape rides along in the artifacts.
    #[test]
    fn bitsliced_compiles_record_the_locality_pass() {
        use crate::engine::Backend;
        let nl = RandomDag::strict(16, 6, 12).outputs(4).generate(3);
        let flow = Flow::builder(&nl)
            .config(LpuConfig::new(8, 4))
            .backend(Backend::BitSliced { words: 4 })
            .compile()
            .unwrap();
        let names: Vec<&str> = flow.report.passes.iter().map(|p| p.name.as_str()).collect();
        let mut expected: Vec<&str> = PASS_ORDER.to_vec();
        expected.push("locality");
        assert_eq!(names, expected);
        let locality = flow.report.pass("locality").unwrap();
        assert_eq!(locality.stat, "slots");
        assert_eq!(locality.before, flow.netlist.len());
        assert!(locality.after <= locality.before);
        let tape = flow
            .artifacts
            .as_ref()
            .and_then(|a| a.tape.as_ref())
            .expect("bit-sliced artifacts carry the compiled tape");
        assert_eq!(tape.tape_stats().frame_slots, locality.after);

        // Scalar compiles stay exactly the canonical 7 passes, tape-free.
        let scalar = Flow::builder(&nl)
            .config(LpuConfig::new(8, 4))
            .compile()
            .unwrap();
        assert_eq!(scalar.report.passes.len(), PASS_ORDER.len());
        assert!(scalar.artifacts.as_ref().unwrap().tape.is_none());
    }

    #[test]
    fn display_formats_a_line_per_pass() {
        let nl = RandomDag::strict(12, 5, 8).outputs(3).generate(1);
        let flow = Flow::builder(&nl)
            .config(LpuConfig::new(6, 4))
            .compile()
            .unwrap();
        let text = flow.report.to_string();
        for name in PASS_ORDER {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("total"));
    }
}
