//! MFG merging — Algorithm 3 of the paper.
//!
//! The runtime of an inference task is primarily driven by the total MFG
//! count, so sibling MFGs (children of the same parent) that share a bottom
//! level and whose level-wise union stays within the LPE count `m` are
//! greedily merged into multi-output MFGs. Fig 7/8 of the paper quantify
//! the effect; the benches regenerate those figures.

use std::collections::{HashMap, HashSet, VecDeque};

use lbnn_netlist::NodeId;

use crate::compiler::mfg::{Mfg, MfgId};
use crate::compiler::partition::Partition;

/// Statistics reported by [`merge_mfgs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// MFG count before merging.
    pub before: usize,
    /// MFG count after merging.
    pub after: usize,
    /// Number of pairwise merges performed.
    pub merges: usize,
}

/// The paper's `checkLevel`: `true` when the two MFGs can merge, i.e. they
/// share the same level range and every level's node-set union has at most
/// `m` nodes.
pub fn check_level(a: &Mfg, b: &Mfg, m: usize) -> bool {
    if a.bottom() != b.bottom() || a.top() != b.top() {
        return false;
    }
    for (la, lb) in a.levels().iter().zip(b.levels()) {
        // Both level vectors are sorted: count the union by merge-walk.
        let mut union = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < la.len() || j < lb.len() {
            union += 1;
            if union > m {
                return false;
            }
            if i < la.len() && (j >= lb.len() || la[i] < lb[j]) {
                i += 1;
            } else if j < lb.len() && (i >= la.len() || lb[j] < la[i]) {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
    }
    true
}

/// Merges two compatible MFGs into one multi-output MFG (level-wise union).
fn union_mfgs(a: &Mfg, b: &Mfg) -> Mfg {
    debug_assert_eq!(a.bottom(), b.bottom());
    debug_assert_eq!(a.top(), b.top());
    let levels: Vec<Vec<NodeId>> = a
        .levels()
        .iter()
        .zip(b.levels())
        .map(|(la, lb)| {
            let mut v: Vec<NodeId> = la.iter().chain(lb).copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut inputs: Vec<NodeId> = a.inputs().iter().chain(b.inputs()).copied().collect();
    inputs.sort_unstable();
    inputs.dedup();
    Mfg::new(a.bottom(), levels, inputs)
}

/// Algorithm 3: greedy merging of same-bottom sibling MFGs, walking the MFG
/// DAG breadth-first from the primary-output MFGs.
///
/// Returns the rewritten partition (dead MFGs compacted away, edges and
/// producer maps rebuilt) and merge statistics.
pub fn merge_mfgs(partition: &Partition, m: usize) -> (Partition, MergeStats) {
    let mut mfgs: Vec<Mfg> = partition.mfgs.clone();
    let mut children: Vec<Vec<MfgId>> = partition.children.clone();
    let mut parents: Vec<Vec<MfgId>> = partition.parents.clone();
    let mut alive: Vec<bool> = vec![true; mfgs.len()];
    let mut merged_into: Vec<Option<MfgId>> = vec![None; mfgs.len()];
    let mut merges = 0usize;

    // Virtual super-root: treat the PO MFGs as one sibling group so they
    // can merge with each other too ("rootMFG = the MFG contained PO(s)").
    let mut queue: VecDeque<Option<MfgId>> = VecDeque::new();
    queue.push_back(None); // None = the virtual root
    let mut processed: HashSet<Option<MfgId>> = HashSet::new();

    let mut po_group: Vec<MfgId> = partition.po_mfgs.clone();

    while let Some(slot) = queue.pop_front() {
        if !processed.insert(slot) {
            continue;
        }
        // The sibling group to merge within.
        let mut group: Vec<MfgId> = match slot {
            None => po_group.clone(),
            Some(p) => {
                if !alive[p.index()] {
                    continue;
                }
                children[p.index()].clone()
            }
        };
        group.retain(|c| alive[c.index()]);
        group.sort_unstable();
        group.dedup();

        // Greedy pairwise merging within the group.
        let mut changed = true;
        while changed {
            changed = false;
            'pairs: for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let (a, b) = (group[i], group[j]);
                    if mfgs[a.index()].bottom() != mfgs[b.index()].bottom() {
                        continue;
                    }
                    if !check_level(&mfgs[a.index()], &mfgs[b.index()], m) {
                        continue;
                    }
                    // Merge b into a new MFG.
                    let merged = union_mfgs(&mfgs[a.index()], &mfgs[b.index()]);
                    let new_id = MfgId(mfgs.len() as u32);
                    mfgs.push(merged);
                    alive.push(true);
                    merged_into.push(None);
                    merged_into[a.index()] = Some(new_id);
                    merged_into[b.index()] = Some(new_id);

                    let mut kid_union: Vec<MfgId> = children[a.index()]
                        .iter()
                        .chain(&children[b.index()])
                        .copied()
                        .filter(|k| alive[k.index()])
                        .collect();
                    kid_union.sort_unstable();
                    kid_union.dedup();
                    let mut parent_union: Vec<MfgId> = parents[a.index()]
                        .iter()
                        .chain(&parents[b.index()])
                        .copied()
                        .filter(|p| alive[p.index()])
                        .collect();
                    parent_union.sort_unstable();
                    parent_union.dedup();

                    children.push(kid_union.clone());
                    parents.push(parent_union.clone());

                    // Rewire: parents' child lists and children's parent lists.
                    for &p in &parent_union {
                        let list = &mut children[p.index()];
                        list.retain(|&k| k != a && k != b);
                        list.push(new_id);
                    }
                    for &k in &kid_union {
                        let list = &mut parents[k.index()];
                        list.retain(|&p| p != a && p != b);
                        if !list.contains(&new_id) {
                            list.push(new_id);
                        }
                    }
                    alive[a.index()] = false;
                    alive[b.index()] = false;
                    if slot.is_none() {
                        po_group.retain(|&x| x != a && x != b);
                        po_group.push(new_id);
                    }
                    merges += 1;

                    group.remove(j);
                    group.remove(i);
                    group.push(new_id);
                    changed = true;
                    break 'pairs;
                }
            }
        }
        for &kid in &group {
            queue.push_back(Some(kid));
        }
    }

    // Compact: drop dead MFGs and re-densify ids.
    let mut remap: Vec<Option<MfgId>> = vec![None; mfgs.len()];
    let mut out_mfgs: Vec<Mfg> = Vec::new();
    for (i, mfg) in mfgs.iter().enumerate() {
        if alive[i] {
            remap[i] = Some(MfgId(out_mfgs.len() as u32));
            out_mfgs.push(mfg.clone());
        }
    }
    let map = |id: MfgId| remap[id.index()].expect("alive edges reference alive MFGs");
    let mut out_children: Vec<Vec<MfgId>> = Vec::with_capacity(out_mfgs.len());
    let mut out_parents: Vec<Vec<MfgId>> = Vec::with_capacity(out_mfgs.len());
    for i in 0..mfgs.len() {
        if !alive[i] {
            continue;
        }
        let mut kids: Vec<MfgId> = children[i]
            .iter()
            .filter(|k| alive[k.index()])
            .map(|&k| map(k))
            .collect();
        kids.sort_unstable();
        kids.dedup();
        out_children.push(kids);
        let mut ps: Vec<MfgId> = parents[i]
            .iter()
            .filter(|p| alive[p.index()])
            .map(|&p| map(p))
            .collect();
        ps.sort_unstable();
        ps.dedup();
        out_parents.push(ps);
    }

    // Resolve an original id through the chain of merges to its final
    // (compacted) id.
    let resolve = |mut id: MfgId| -> MfgId {
        while let Some(next) = merged_into[id.index()] {
            id = next;
        }
        map(id)
    };

    // Rebuild the parent-scoped producer map and the PO producer map.
    let mut producer_of: HashMap<(MfgId, NodeId), MfgId> = HashMap::new();
    for (&(parent, node), &child) in &partition.producer_of {
        producer_of.insert((resolve(parent), node), resolve(child));
    }
    let mut po_producer: HashMap<NodeId, MfgId> = HashMap::new();
    for (&node, &id) in &partition.po_producer {
        po_producer.insert(node, resolve(id));
    }
    let mut po_mfgs: Vec<MfgId> = po_group.iter().map(|&id| map(id)).collect();
    po_mfgs.sort_unstable();
    po_mfgs.dedup();

    let stats = MergeStats {
        before: partition.mfgs.len(),
        after: out_mfgs.len(),
        merges,
    };
    (
        Partition {
            mfgs: out_mfgs,
            children: out_children,
            parents: out_parents,
            po_mfgs,
            producer_of,
            po_producer,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::partition::{check_partition, partition, PartitionOptions, StopRule};
    use lbnn_netlist::random::RandomDag;
    use lbnn_netlist::Levels;

    #[test]
    fn check_level_respects_capacity_and_alignment() {
        use lbnn_netlist::{Netlist, Op};
        let mut nl = Netlist::new("t");
        let pis: Vec<_> = (0..8).map(|i| nl.add_input(format!("x{i}"))).collect();
        let g: Vec<_> = (0..4)
            .map(|i| nl.add_gate2(Op::And, pis[2 * i], pis[2 * i + 1]))
            .collect();
        let a = Mfg::new(
            1,
            vec![vec![g[0], g[1]]],
            vec![pis[0], pis[1], pis[2], pis[3]],
        );
        let b = Mfg::new(
            1,
            vec![vec![g[2], g[3]]],
            vec![pis[4], pis[5], pis[6], pis[7]],
        );
        assert!(check_level(&a, &b, 4));
        assert!(!check_level(&a, &b, 3), "union of 4 exceeds m = 3");
        // Shared nodes count once.
        let c = Mfg::new(
            1,
            vec![vec![g[0], g[2]]],
            vec![pis[0], pis[1], pis[4], pis[5]],
        );
        assert!(check_level(&a, &c, 3), "union {{g0,g1,g2}} has 3 nodes");
        let deep = Mfg::new(2, vec![vec![g[0]]], vec![pis[0]]);
        assert!(!check_level(&a, &deep, 8), "different level ranges");
    }

    #[test]
    fn merging_reduces_mfg_count_and_stays_valid() {
        let nl = RandomDag::strict(64, 8, 32).outputs(8).generate(3);
        let lv = Levels::compute(&nl);
        let m = 8;
        let part = partition(&nl, &lv, m, PartitionOptions::default()).unwrap();
        let (merged, stats) = merge_mfgs(&part, m);
        assert_eq!(stats.before, part.mfg_count());
        assert_eq!(stats.after, merged.mfg_count());
        assert!(
            stats.after < stats.before,
            "merging should fire on a wide graph"
        );
        assert_eq!(stats.before - stats.after, stats.merges);
        // Merged MFGs still satisfy conditions (1)-(2); condition (4) is a
        // property of extraction, preserved because merging unions inputs.
        for mfg in &merged.mfgs {
            mfg.validate(&nl, m).unwrap();
        }
        // Edges stay level-aligned.
        for (p, kids) in merged.children.iter().enumerate() {
            for &c in kids {
                assert_eq!(merged.mfgs[c.index()].top() + 1, merged.mfgs[p].bottom());
            }
        }
        // Coverage still holds.
        check_partition(&nl, &lv, &merged, m, StopRule::GtM).unwrap();
    }

    #[test]
    fn merge_is_idempotent() {
        let nl = RandomDag::strict(32, 6, 16).outputs(4).generate(9);
        let lv = Levels::compute(&nl);
        let part = partition(&nl, &lv, 6, PartitionOptions::default()).unwrap();
        let (m1, _) = merge_mfgs(&part, 6);
        let (m2, s2) = merge_mfgs(&m1, 6);
        assert_eq!(m1.mfg_count(), m2.mfg_count());
        assert_eq!(s2.merges, 0);
    }

    #[test]
    fn producers_cover_all_non_pi_inputs() {
        let nl = RandomDag::strict(48, 7, 24).outputs(6).generate(5);
        let lv = Levels::compute(&nl);
        let part = partition(&nl, &lv, 6, PartitionOptions::default()).unwrap();
        let (merged, _) = merge_mfgs(&part, 6);
        for (i, mfg) in merged.mfgs.iter().enumerate() {
            for &input in mfg.inputs() {
                if lv.level(input) >= 1 {
                    let producer = merged
                        .producer_of
                        .get(&(MfgId(i as u32), input))
                        .copied()
                        .expect("produced");
                    assert!(merged.mfgs[producer.index()].roots().contains(&input));
                    assert!(merged.children[i].contains(&producer));
                }
            }
        }
    }

    #[test]
    fn duplicated_children_collapse_under_merged_parents() {
        use crate::compiler::partition::PartitionOptions;
        let nl = RandomDag::strict(32, 6, 16).outputs(4).generate(13);
        let lv = Levels::compute(&nl);
        let dup = partition(
            &nl,
            &lv,
            6,
            PartitionOptions {
                duplicate_children: true,
                ..Default::default()
            },
        )
        .unwrap();
        let shared = partition(&nl, &lv, 6, PartitionOptions::default()).unwrap();
        assert!(dup.mfg_count() >= shared.mfg_count());
        let (merged, _) = merge_mfgs(&dup, 6);
        for mfg in &merged.mfgs {
            mfg.validate(&nl, 6).unwrap();
        }
        check_partition(&nl, &lv, &merged, 6, StopRule::GtM).unwrap();
    }
}
