//! The compiler tailored to the logic processor (§V of the paper).
//!
//! Pipeline: a fully path-balanced netlist is partitioned into MFGs
//! ([`mod@partition`], Algorithms 1–2), sibling MFGs are merged ([`merge`],
//! Algorithm 3), the MFG DAG is scheduled onto LPVs in space-time
//! ([`schedule`], Algorithm 4 + the diagonal-address scheduler), and
//! instruction queues plus buffer layouts are emitted ([`codegen`]) as an
//! [`program::LpuProgram`] the [`crate::lpu`] machine executes. The
//! [`pipeline`] module drives these stages as named, timed passes behind
//! [`crate::Flow::builder`], recording a [`CompileReport`] per compile.

pub mod codegen;
pub mod isa;
pub mod merge;
pub mod mfg;
pub mod partition;
pub mod pipeline;
pub mod program;
pub mod schedule;

pub use isa::{decode_program, encode_program, EncodedProgram, InstrFormat};
pub use merge::merge_mfgs;
pub use mfg::{Mfg, MfgId};
pub use partition::{find_mfg, partition, Partition, PartitionOptions, StopRule};
pub use pipeline::{CompileReport, PassReport};
pub use program::LpuProgram;
pub use schedule::{schedule_spacetime, Schedule};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for compiler/machine unit tests: partition + merge +
    //! schedule with the same shared-children-then-duplicate fallback the
    //! [`crate::flow::Flow`] uses.

    use lbnn_netlist::{Levels, Netlist};

    use super::merge::merge_mfgs;
    use super::partition::{partition, Partition, PartitionOptions};
    use super::schedule::{schedule_spacetime, Schedule};

    pub(crate) fn compile_parts(
        netlist: &Netlist,
        levels: &Levels,
        m: usize,
        n: usize,
        merge: bool,
    ) -> (Partition, Schedule) {
        try_compile_parts(netlist, levels, m, n, merge)
            .unwrap_or_else(|e| panic!("scheduling failed even with duplication: {e}"))
    }

    pub(crate) fn try_compile_parts(
        netlist: &Netlist,
        levels: &Levels,
        m: usize,
        n: usize,
        merge: bool,
    ) -> Result<(Partition, Schedule), crate::error::CoreError> {
        let mut options = PartitionOptions::default();
        loop {
            let raw = partition(netlist, levels, m, options).expect("partition");
            let part = if merge { merge_mfgs(&raw, m).0 } else { raw };
            match schedule_spacetime(&part, n, m) {
                Ok(sched) => return Ok((part, sched)),
                Err(_) if !options.duplicate_children => {
                    options.duplicate_children = true;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
