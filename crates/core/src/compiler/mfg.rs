//! Maximal feasible subgraphs (MFGs).
//!
//! An MFG is a rectangular slice of the fully path-balanced Boolean DAG:
//! gate levels `[bottom, top]` with at most `m` nodes per level, closed
//! under fanin except at the bottom level (condition (1) of the paper).
//! Before merging an MFG has a single root (its top level is one node);
//! merging produces multi-root MFGs.

use lbnn_netlist::{Netlist, NodeId};

use crate::error::CoreError;

/// Identifier of an MFG within one [`crate::compiler::Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MfgId(pub u32);

impl MfgId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One maximal feasible subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mfg {
    bottom: u32,
    levels: Vec<Vec<NodeId>>,
    inputs: Vec<NodeId>,
}

impl Mfg {
    /// Builds an MFG from its per-level node sets.
    ///
    /// `levels[i]` holds the nodes at gate level `bottom + i`; `inputs` are
    /// the distinct nodes (at level `bottom − 1`) feeding the bottom level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, a level is empty, or `bottom == 0`
    /// (gate levels are 1-based; level 0 holds primary inputs).
    pub fn new(bottom: u32, levels: Vec<Vec<NodeId>>, inputs: Vec<NodeId>) -> Self {
        assert!(bottom >= 1, "gate levels are 1-based");
        assert!(!levels.is_empty(), "an MFG has at least one level");
        assert!(
            levels.iter().all(|l| !l.is_empty()),
            "levels must be non-empty"
        );
        Mfg {
            bottom,
            levels,
            inputs,
        }
    }

    /// Bottom gate level (`Lbottom`). An MFG with `bottom == 1` reads
    /// primary inputs (the paper's `Lbottom = 0` case).
    #[inline]
    pub fn bottom(&self) -> u32 {
        self.bottom
    }

    /// Top gate level (`Ltop`).
    #[inline]
    pub fn top(&self) -> u32 {
        self.bottom + self.levels.len() as u32 - 1
    }

    /// Number of levels (`Ltop − Lbottom + 1`) — the LPV span.
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Maximum nodes at any level.
    pub fn width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total node count (with multiplicity across levels — levels are
    /// disjoint, so this is the plain sum).
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Nodes at absolute gate level `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[bottom, top]`.
    pub fn nodes_at(&self, level: u32) -> &[NodeId] {
        assert!(
            level >= self.bottom && level <= self.top(),
            "level {level} outside [{}, {}]",
            self.bottom,
            self.top()
        );
        &self.levels[(level - self.bottom) as usize]
    }

    /// The per-level node sets, bottom first.
    pub fn levels(&self) -> &[Vec<NodeId>] {
        &self.levels
    }

    /// The roots: nodes of the top level (one for pre-merge MFGs).
    pub fn roots(&self) -> &[NodeId] {
        self.levels.last().expect("non-empty")
    }

    /// Distinct nodes feeding the bottom level (at level `bottom − 1`).
    /// These are primary inputs/constants when `bottom == 1`, and other
    /// MFGs' roots otherwise.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// `true` if this MFG reads primary inputs (paper's `Lbottom = 0`).
    pub fn reads_primary_inputs(&self) -> bool {
        self.bottom == 1
    }

    /// Checks the paper's MFG conditions against the netlist:
    ///
    /// * condition (1): fanins of every non-bottom level lie in the
    ///   previous level of this MFG;
    /// * condition (2): every level has at most `m` nodes;
    /// * the input set matches the bottom level's distinct fanins.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LevelTooWide`] for a condition (2) violation
    /// and [`CoreError::BadConfig`] describing any other violation.
    pub fn validate(&self, netlist: &Netlist, m: usize) -> Result<(), CoreError> {
        for (i, level) in self.levels.iter().enumerate() {
            if level.len() > m {
                return Err(CoreError::LevelTooWide {
                    level: self.bottom + i as u32,
                    width: level.len(),
                    m,
                });
            }
        }
        for i in 1..self.levels.len() {
            let prev: std::collections::HashSet<NodeId> =
                self.levels[i - 1].iter().copied().collect();
            for &node in &self.levels[i] {
                for &f in netlist.node(node).fanins() {
                    if !prev.contains(&f) {
                        return Err(CoreError::BadConfig {
                            reason: format!(
                                "condition (1) violated: fanin {f:?} of {node:?} at level {} \
                                 is not in the MFG's previous level",
                                self.bottom + i as u32
                            ),
                        });
                    }
                }
            }
        }
        let mut expect: Vec<NodeId> = self.levels[0]
            .iter()
            .flat_map(|&n| netlist.node(n).fanins().iter().copied())
            .collect();
        expect.sort_unstable();
        expect.dedup();
        let mut got = self.inputs.clone();
        got.sort_unstable();
        if expect != got {
            return Err(CoreError::BadConfig {
                reason: "input set does not match bottom-level fanins".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbnn_netlist::{Netlist, Op};

    fn tiny() -> (Netlist, Mfg) {
        // Level 1: g0 = a&b, g1 = c|d ; level 2: g2 = g0^g1.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let g0 = nl.add_gate2(Op::And, a, b);
        let g1 = nl.add_gate2(Op::Or, c, d);
        let g2 = nl.add_gate2(Op::Xor, g0, g1);
        nl.add_output(g2, "y");
        let mfg = Mfg::new(1, vec![vec![g0, g1], vec![g2]], vec![a, b, c, d]);
        (nl, mfg)
    }

    #[test]
    fn accessors() {
        let (_, mfg) = tiny();
        assert_eq!(mfg.bottom(), 1);
        assert_eq!(mfg.top(), 2);
        assert_eq!(mfg.depth(), 2);
        assert_eq!(mfg.width(), 2);
        assert_eq!(mfg.node_count(), 3);
        assert_eq!(mfg.roots().len(), 1);
        assert!(mfg.reads_primary_inputs());
        assert_eq!(mfg.nodes_at(1).len(), 2);
    }

    #[test]
    fn validate_ok() {
        let (nl, mfg) = tiny();
        assert!(mfg.validate(&nl, 2).is_ok());
        assert!(matches!(
            mfg.validate(&nl, 1),
            Err(CoreError::LevelTooWide { width: 2, m: 1, .. })
        ));
    }

    #[test]
    fn validate_catches_condition_one() {
        let (nl, _) = tiny();
        let ids: Vec<NodeId> = nl.node_ids().collect();
        let (g0, g2) = (ids[4], ids[6]);
        // Claim an MFG [g0] -> [g2] but g2 also needs g1.
        let bad = Mfg::new(1, vec![vec![g0], vec![g2]], vec![ids[0], ids[1]]);
        assert!(matches!(
            bad.validate(&nl, 4),
            Err(CoreError::BadConfig { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rejects_level_zero() {
        let _ = Mfg::new(0, vec![vec![NodeId::new(0)]], vec![]);
    }
}
